"""Bench regression gate: fresh smoke benches vs committed baselines.

Each performance-bearing benchmark writes a repo-root ``BENCH_*.json``
snapshot; those files are committed, so they *are* the performance
baseline the repo claims.  This gate makes the claim enforceable:

1. snapshot the committed ``BENCH_*.json`` baselines,
2. re-run the selected benchmarks in smoke mode (short, env-tuned
   durations — the same knobs the CI smoke jobs use),
3. compare the freshly-emitted snapshots against the baselines,
   metric by metric, with per-metric tolerances,
4. restore the committed baselines (the gate never dirties the tree).

A metric regressing past its tolerance — by default more than
:data:`DEFAULT_REL_TOL` (20%) in the unfavourable direction — fails
the gate.  Tolerances come in two shapes because the metrics do:

* **relative** for ratio-like, strictly-positive metrics (speedups,
  attribution, reduction factors), where "20% worse" is meaningful;
* **absolute** for near-zero, noise-dominated metrics (instrumented
  overhead fractions, histogram quantile errors), where a relative
  comparison against a ~0 (or negative) baseline is ill-conditioned.

Latency/throughput absolutes (qps, p99 ms) are deliberately *not*
gated: they measure the host, not the code, and the benchmarks
already assert the shape claims that matter (e.g. the health bench
asserts shed p99 stays inside the SLO budget — gated here as the
host-normalized ``shed_p99 / budget`` ratio instead).

Usage::

    python tools/bench_gate.py                 # the full gate
    python tools/bench_gate.py --only obs,engine
    python tools/bench_gate.py --list          # show benches + metrics

``make bench-gate`` and the CI ``bench-gate`` job run this; any bench
whose own assertions fail also fails the gate (its output is shown).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A metric may regress by this fraction (in its bad direction) before
#: the gate fails — the ISSUE's ">20% is a regression" line.
DEFAULT_REL_TOL = 0.20


def _path(dotted: str) -> Callable[[dict], float]:
    def get(payload: dict) -> float:
        value: Any = payload
        for part in dotted.split("."):
            value = value[part]
        return float(value)

    return get


@dataclass(frozen=True)
class Metric:
    """One gated number: where it lives, which direction is good, and
    how much unfavourable drift the gate absorbs."""

    name: str
    getter: Callable[[dict], float]
    #: "higher" = bigger is better (speedups); "lower" = smaller is
    #: better (overheads, error fractions).
    kind: str = "higher"
    rel_tol: float | None = DEFAULT_REL_TOL
    abs_tol: float | None = None

    def check(self, baseline: float, fresh: float) -> tuple[bool, str]:
        if self.abs_tol is not None:
            # Anchor lower-is-better tolerances at zero: a negative
            # baseline (an overhead ratio that got lucky on a quiet
            # host) is timing noise, and letting it ratchet the gate
            # below the tolerance band would fail honest runs.
            if self.kind == "higher":
                ok = fresh >= baseline - self.abs_tol
            else:
                ok = fresh <= max(baseline, 0.0) + self.abs_tol
            return ok, f"abs tol {self.abs_tol:g}"
        tol = self.rel_tol if self.rel_tol is not None else DEFAULT_REL_TOL
        if baseline <= 0.0:
            # Relative drift from a non-positive baseline is
            # ill-conditioned; treat any fresh value on the good side
            # of the baseline as a pass and flag the metric spec.
            ok = fresh >= baseline if self.kind == "higher" else fresh <= baseline
            return ok, "non-positive baseline (want abs_tol)"
        if self.kind == "higher":
            ok = fresh >= baseline * (1.0 - tol)
        else:
            ok = fresh <= baseline * (1.0 + tol)
        return ok, f"rel tol {tol:.0%}"


@dataclass(frozen=True)
class GateBench:
    """One benchmark the gate can run: its file, the snapshot it
    emits, the metrics gated on that snapshot, and the smoke-mode
    environment it runs under."""

    key: str
    bench_file: str
    snapshot: str
    metrics: tuple[Metric, ...]
    env: dict[str, str] = field(default_factory=dict)


def _shed_budget_ratio(payload: dict) -> float:
    return float(payload["burst"]["shed_p99_ms"]) / float(payload["burst"]["budget_ms"])


BENCHES: tuple[GateBench, ...] = (
    GateBench(
        key="engine",
        bench_file="benchmarks/bench_engine_vectorized.py",
        snapshot="BENCH_engine.json",
        metrics=(
            Metric("speedup_exec_vectorized_vs_tuple",
                   _path("speedup_exec_vectorized_vs_tuple"), "higher"),
            Metric("speedup_e2e_vectorized_vs_tuple",
                   _path("speedup_e2e_vectorized_vs_tuple"), "higher"),
            # The prepared-query tier's bound: warm prepared e2e over
            # exec-only time.  Ratio of same-host measurements (floor
            # 1.0, asserted <= 1.2 in the bench itself), so an absolute
            # band is the right tolerance shape.
            Metric("prepared.ratio_warm_vs_exec",
                   _path("prepared.ratio_warm_vs_exec"), "lower", abs_tol=0.15),
            Metric("prepared.speedup_vs_unprepared_pipeline",
                   _path("prepared.speedup_vs_unprepared_pipeline"), "higher",
                   rel_tol=0.30),
        ),
    ),
    GateBench(
        key="service",
        bench_file="benchmarks/bench_service_throughput.py",
        snapshot="BENCH_service.json",
        metrics=(
            # Worker scaling is a ratio of same-host runs, so it
            # transfers across hosts; absolute qps does not.
            Metric("scaling_1to4_bundled", _path("scaling_1to4_bundled"),
                   "higher", rel_tol=0.30),
        ),
        env={"SIEVE_BENCH_SERVICE_DURATION": "1.5"},
    ),
    GateBench(
        key="cluster",
        bench_file="benchmarks/bench_cluster.py",
        snapshot="BENCH_cluster.json",
        metrics=(
            Metric("reduction_factor", _path("reduction_factor"), "higher"),
            Metric("rebalance.moved_fraction", _path("rebalance.moved_fraction"),
                   "lower", abs_tol=0.15),
        ),
        env={"SIEVE_BENCH_CLUSTER_DURATION": "1.0"},
    ),
    GateBench(
        key="audit",
        bench_file="benchmarks/bench_audit.py",
        snapshot="BENCH_audit.json",
        metrics=(
            Metric("overhead", _path("overhead"), "lower", abs_tol=0.03),
        ),
    ),
    GateBench(
        key="obs",
        bench_file="benchmarks/bench_obs.py",
        snapshot="BENCH_obs.json",
        metrics=(
            Metric("attribution", _path("attribution"), "higher", rel_tol=0.05),
            Metric("overhead_best", _path("overhead_best"), "lower", abs_tol=0.03),
        ),
    ),
    GateBench(
        key="faults",
        bench_file="benchmarks/bench_faults.py",
        snapshot="BENCH_faults.json",
        metrics=(
            # The resilient path's fault-free cost lives at the noise
            # floor; hold it inside the < 5% target band absolutely.
            Metric("overhead_resilient", _path("overhead_resilient"),
                   "lower", abs_tol=0.05),
            Metric("recovery_s", _path("recovery_s"), "lower", abs_tol=1.0),
            # The fail-closed contract: any divergence fails the gate.
            Metric("chaos_divergences", _path("chaos_divergences"),
                   "lower", abs_tol=0.0),
        ),
        env={
            "SIEVE_BENCH_FAULTS_QUERIES": "200",
            "SIEVE_BENCH_FAULTS_PLANS": "5",
        },
    ),
    GateBench(
        key="health",
        bench_file="benchmarks/bench_health.py",
        snapshot="BENCH_health.json",
        metrics=(
            Metric("histogram.p99.rel_err", _path("histogram.p99.rel_err"),
                   "lower", abs_tol=0.01),
            Metric("overhead_best", _path("overhead_best"), "lower", abs_tol=0.03),
            Metric("burst.shed_p99/budget", _shed_budget_ratio, "lower",
                   abs_tol=0.25),
        ),
        env={"SIEVE_BENCH_HEALTH_DURATION": "2.0"},
    ),
)


@dataclass
class MetricOutcome:
    bench: str
    metric: str
    baseline: float
    fresh: float
    ok: bool
    tolerance: str


def run_bench(bench: GateBench, python: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.update(bench.env)
    env["PYTHONPATH"] = (
        f"{REPO_ROOT / 'src'}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(REPO_ROOT / "src")
    )
    return subprocess.run(
        [python, "-m", "pytest", bench.bench_file, "-q", "--benchmark-only"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def gate(
    benches: "tuple[GateBench, ...]", python: str = sys.executable
) -> tuple[list[MetricOutcome], list[str]]:
    """Run every bench, compare, restore.  Returns (metric outcomes,
    hard errors — missing baselines or failing bench runs)."""
    outcomes: list[MetricOutcome] = []
    errors: list[str] = []
    for bench in benches:
        snapshot_path = REPO_ROOT / bench.snapshot
        if not snapshot_path.exists():
            errors.append(
                f"{bench.key}: no committed baseline {bench.snapshot} — run "
                f"`pytest {bench.bench_file} --benchmark-only` once and commit it"
            )
            continue
        baseline_text = snapshot_path.read_text()
        baseline = json.loads(baseline_text)
        print(f"[bench-gate] running {bench.key} ({bench.bench_file}) ...", flush=True)
        try:
            proc = run_bench(bench, python)
            if proc.returncode != 0:
                errors.append(
                    f"{bench.key}: benchmark run failed "
                    f"(exit {proc.returncode})\n{proc.stdout[-2000:]}"
                )
                continue
            fresh = json.loads(snapshot_path.read_text())
        finally:
            # The committed snapshot is the baseline of record; never
            # leave the fresh run's numbers behind.
            snapshot_path.write_text(baseline_text)
        for metric in bench.metrics:
            base_v = metric.getter(baseline)
            fresh_v = metric.getter(fresh)
            ok, tolerance = metric.check(base_v, fresh_v)
            outcomes.append(
                MetricOutcome(bench.key, metric.name, base_v, fresh_v, ok, tolerance)
            )
    return outcomes, errors


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        help="comma-separated bench keys to gate (default: all)",
        default=None,
    )
    parser.add_argument(
        "--list", action="store_true", help="list benches + gated metrics and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for bench in BENCHES:
            print(f"{bench.key}: {bench.bench_file} -> {bench.snapshot}")
            for metric in bench.metrics:
                tol = (
                    f"abs {metric.abs_tol:g}"
                    if metric.abs_tol is not None
                    else f"rel {metric.rel_tol:.0%}"
                )
                print(f"    {metric.name}  ({metric.kind} is better, {tol})")
        return 0

    selected = BENCHES
    if args.only:
        keys = {k.strip() for k in args.only.split(",") if k.strip()}
        unknown = keys - {b.key for b in BENCHES}
        if unknown:
            parser.error(
                f"unknown bench keys {sorted(unknown)}; "
                f"known: {sorted(b.key for b in BENCHES)}"
            )
        selected = tuple(b for b in BENCHES if b.key in keys)

    outcomes, errors = gate(selected)

    width = max((len(f"{o.bench}.{o.metric}") for o in outcomes), default=10)
    print()
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  verdict")
    print("-" * (width + 44))
    for o in outcomes:
        verdict = "ok" if o.ok else "REGRESSION"
        print(
            f"{o.bench + '.' + o.metric:<{width}}  {o.baseline:>12.4f}  "
            f"{o.fresh:>12.4f}  {verdict} ({o.tolerance})"
        )
    for err in errors:
        print(f"\n[bench-gate] ERROR: {err}")

    failed = [o for o in outcomes if not o.ok]
    if failed or errors:
        print(
            f"\n[bench-gate] FAILED: {len(failed)} metric regression(s), "
            f"{len(errors)} bench error(s)"
        )
        return 1
    print(f"\n[bench-gate] OK: {len(outcomes)} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
