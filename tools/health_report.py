"""Render a text health/SLO dashboard for a Sieve cluster (smoke CLI).

The health tier's human surface: everything a pager-holder wants on
one screen —

* the rolled-up health report (per-component verdicts + evidence),
* a per-shard table: status, active detour, served requests, sheds,
  and histogram-backed p50/p95/p99,
* the cluster-merged latency histogram as a bar chart (buckets merged
  exactly across shards — the :class:`~repro.obs.histogram.
  LatencyHistogram` property the roll-up is built on).

Library use: :func:`render_health`, :func:`render_shards`, and
:func:`render_histogram` each take live objects and return lines, so
any server/cluster embedding can print the same dashboard.

As a script it is self-verifying (the CI smoke shape shared with
``tools/trace_dump.py``): build a small world, run traffic through a
3-shard cluster, then slow one shard until the control loop flags it
**degraded** and detours its queriers — and exit non-zero if the
dashboard fails to show exactly that.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import SieveCluster  # noqa: E402
from repro.db.database import connect  # noqa: E402
from repro.obs.histogram import LatencyHistogram  # noqa: E402
from repro.obs.slo import SLO  # noqa: E402
from repro.policy import ObjectCondition, Policy, PolicyStore  # noqa: E402
from repro.storage.schema import ColumnType, Schema  # noqa: E402

_ICON = {"healthy": "+", "degraded": "!", "unhealthy": "x"}


def render_health(report) -> list[str]:
    """The component table of a :class:`~repro.obs.health.HealthReport`."""
    lines = [f"health: {report.status.value.upper()}"]
    for comp in report.components:
        icon = _ICON.get(comp.status.value, "?")
        detail = f"  {comp.detail}" if comp.detail else ""
        lines.append(f"  [{icon}] {comp.name:<24} {comp.status.value:<10}{detail}")
    return lines


def render_shards(stats) -> list[str]:
    """Per-shard serving/health table from a
    :class:`~repro.cluster.ClusterStats`."""
    header = (
        f"  {'shard':<10} {'status':<10} {'detour':<12} {'requests':>9} "
        f"{'sheds':>6} {'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9}"
    )
    lines = ["shards:", header, "  " + "-" * (len(header) - 2)]
    for name in sorted(stats.per_shard):
        shard = stats.per_shard[name]
        status = stats.health.get(name, "healthy")
        detour = f"-> {stats.reroutes[name]}" if name in stats.reroutes else ""
        lines.append(
            f"  {name:<10} {status:<10} {detour:<12} {shard.requests:>9} "
            f"{shard.sheds:>6} {shard.latency.p50_ms:>9.2f} "
            f"{shard.latency.p95_ms:>9.2f} {shard.latency.p99_ms:>9.2f}"
        )
    return lines


def render_histogram(hist: LatencyHistogram, width: int = 40, max_rows: int = 12) -> list[str]:
    """A latency histogram as an ASCII bar chart (coarsened to at most
    ``max_rows`` rows by merging adjacent buckets)."""
    buckets = hist.buckets()
    if not buckets:
        return ["latency histogram: (empty)"]
    # Coalesce adjacent buckets until the chart fits the row budget.
    while len(buckets) > max_rows:
        merged = []
        for i in range(0, len(buckets), 2):
            chunk = buckets[i : i + 2]
            merged.append((chunk[0][0], chunk[-1][1], sum(c[2] for c in chunk)))
        buckets = merged
    top = max(count for _, _, count in buckets)
    lines = [
        f"latency histogram: {hist.count} samples, mean {hist.mean_ms:.2f} ms, "
        f"p99 {hist.percentile(99):.2f} ms (+/-{hist.relative_error:.1%})"
    ]
    for lower, upper, count in buckets:
        bar = "#" * max(1, round(width * count / top))
        lines.append(f"  {lower:>9.3f}-{upper:>9.3f} ms |{bar:<{width}}| {count}")
    return lines


def render_dashboard(cluster: SieveCluster) -> list[str]:
    """The full dashboard for one cluster, ready to print."""
    stats = cluster.stats()
    hists = [
        s.latency_hist for s in stats.per_shard.values() if s.latency_hist is not None
    ]
    lines = render_health(cluster.health())
    lines.append("")
    lines.extend(render_shards(stats))
    lines.append("")
    lines.extend(render_histogram(LatencyHistogram.merge(hists)))
    return lines


# ----------------------------------------------------------- demo world

TABLE = "WiFi_Dataset"
QUERIERS = [f"Prof.{c}" for c in "ABCDEF"]
PURPOSE = "analytics"


def _world(n_rows: int):
    db = connect("mysql")
    db.create_table(
        TABLE,
        Schema.of(
            ("id", ColumnType.INT),
            ("owner", ColumnType.INT),
            ("ts_time", ColumnType.TIME),
        ),
    )
    db.insert(
        TABLE,
        [(i, i % len(QUERIERS), 7 * 60 + (i * 11) % 720) for i in range(n_rows)],
    )
    db.create_index(TABLE, "owner")
    db.analyze()
    store = PolicyStore(db)
    store.insert_many(
        [
            Policy(
                owner=owner,
                querier=querier,
                purpose=PURPOSE,
                table=TABLE,
                object_conditions=(ObjectCondition("owner", "=", owner),),
            )
            for owner, querier in enumerate(QUERIERS)
        ]
    )
    return db, store


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=int, default=600, help="demo table size (default 600)"
    )
    args = parser.parse_args(argv)

    db, store = _world(args.rows)
    sql = f"SELECT COUNT(*) FROM {TABLE}"
    with SieveCluster.replicated(db, store, n_shards=3, workers_per_shard=1) as cluster:
        cluster.configure_health(
            SLO(latency_ms=10.0, latency_target=0.9,
                short_window_s=0.5, long_window_s=5.0, fast_burn=2.0),
            recovery_hold_s=2.0,
        )
        for querier in QUERIERS:
            cluster.execute(sql, querier, PURPOSE, timeout=60)
        cluster.health_tick()

        print("== all healthy " + "=" * 49)
        print("\n".join(render_dashboard(cluster)))

        victim = cluster.route(QUERIERS[0])
        cluster.slow_shard(victim, 0.05)
        deadline = time.monotonic() + 15.0
        while victim not in cluster.reroutes():
            cluster.execute(sql, QUERIERS[0], PURPOSE, timeout=60)
            cluster.health_tick()
            if time.monotonic() > deadline:
                print(f"FAIL: {victim} never flagged degraded")
                return 1
        # Traffic keeps flowing through the detour while it is up.
        cluster.execute(sql, QUERIERS[0], PURPOSE, timeout=60)

        print(f"\n== {victim} slowed 50ms/request " + "=" * 32)
        lines = render_dashboard(cluster)
        print("\n".join(lines))

        statuses = cluster.shard_health()
        if statuses.get(victim) != "degraded":
            print(f"FAIL: expected {victim} degraded, got {statuses}")
            return 1
        if not any(victim in line and "->" in line for line in lines):
            print("FAIL: dashboard does not show the detour")
            return 1
        print(
            f"\nOK: {victim} degraded and detoured to "
            f"{cluster.reroutes()[victim]}; dashboard rendered"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
