"""Docs gate, run via ``make docs-check``.

Three checks, all AST/text based so nothing is imported or executed:

1. every module under ``src/repro`` (including new packages such as
   ``repro/backend`` or ``repro/audit``) must have a module docstring;
2. every *package* under ``src/repro`` must be mentioned in both
   ``README.md`` and ``docs/ARCHITECTURE.md`` — a new subsystem that
   the architecture walkthrough does not place in the dataflow is a
   doc bug;
3. every script under ``tools/`` must be mentioned in ``README.md`` —
   an operational entry point (like ``tools/replay.py``) nobody can
   discover is a doc bug too.

Exits non-zero listing offenders; prints a one-line summary when clean.
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = ROOT / "src" / "repro"
DOCS = [ROOT / "README.md", ROOT / "docs" / "ARCHITECTURE.md"]


def check_docstrings() -> tuple[int, list[str]]:
    missing: list[str] = []
    checked = 0
    for path in sorted(SRC.rglob("*.py")):
        checked += 1
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            missing.append(str(path.relative_to(SRC.parents[1])))
    return checked, missing


def check_package_mentions() -> tuple[int, list[str]]:
    packages = sorted(
        p.name for p in SRC.iterdir() if p.is_dir() and (p / "__init__.py").exists()
    )
    doc_texts = {doc: doc.read_text() for doc in DOCS}
    unmentioned: list[str] = []
    for package in packages:
        for doc, text in doc_texts.items():
            # Either spelling used across the docs: "repro/backend" in
            # maps/tables, or the bare "backend/" in the walkthrough.
            if f"repro/{package}" not in text and f"{package}/" not in text:
                unmentioned.append(f"{package} (not mentioned in {doc.relative_to(ROOT)})")
    return len(packages), unmentioned


def check_tool_mentions() -> tuple[int, list[str]]:
    tools = sorted(p.name for p in (ROOT / "tools").glob("*.py"))
    readme = (ROOT / "README.md").read_text()
    unmentioned = [
        f"tools/{name} (not mentioned in README.md)"
        for name in tools
        if f"tools/{name}" not in readme
    ]
    return len(tools), unmentioned


def main() -> int:
    checked, missing = check_docstrings()
    n_packages, unmentioned = check_package_mentions()
    n_tools, tools_unmentioned = check_tool_mentions()
    unmentioned += tools_unmentioned
    failed = False
    if missing:
        failed = True
        print(f"{len(missing)} module(s) lack a docstring:")
        for path in missing:
            print(f"  {path}")
    if unmentioned:
        failed = True
        print(f"{len(unmentioned)} package mention(s) missing from the docs:")
        for entry in unmentioned:
            print(f"  {entry}")
    if failed:
        return 1
    print(
        f"docs-check: all {checked} modules under src/repro have docstrings; "
        f"all {n_packages} packages are documented in README + ARCHITECTURE; "
        f"all {n_tools} tools/ scripts are documented in the README"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
