"""Docs gate: every module under src/repro must have a docstring.

Run via ``make docs-check``.  Exits non-zero listing offenders; prints
a one-line summary when clean.  Uses ``ast`` so it never imports (or
executes) the code it checks.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def main() -> int:
    missing: list[pathlib.Path] = []
    checked = 0
    for path in sorted(SRC.rglob("*.py")):
        checked += 1
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            missing.append(path.relative_to(SRC.parents[1]))
    if missing:
        print(f"{len(missing)} module(s) lack a docstring:")
        for path in missing:
            print(f"  {path}")
        return 1
    print(f"docs-check: all {checked} modules under src/repro have docstrings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
