"""Replay a seeded chaos matrix and print the one-screen verdict.

The fault tier's human surface: for each seed, one row — queries
answered vs refused (typed), policy writes committed vs aborted,
faults that actually fired, supervisor rebuilds, and the verdict
(``ok`` or ``DIVERGED``).  Below the matrix: a census of fired fault
kinds across the whole run, and the mixed-epoch *teeth* check — the
deliberately staged fence-gate-off bug the differential must catch
(a chaos suite that cannot catch its own planted bug proves nothing).

As a script it is self-verifying (the CI smoke shape shared with
``tools/health_report.py`` / ``tools/trace_dump.py``): it exits
non-zero on any row-identity divergence, any untyped error, or
missing teeth.  A failing seed replays exactly —
``python tools/chaos_report.py --seeds N --start SEED`` — because
plans, op mixes, and retry jitter are all pure functions of the seed.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.chaos import (  # noqa: E402
    ChaosResult,
    mixed_epoch_divergence,
    run_chaos_plan,
)

HEADERS = [
    "seed", "queries", "answered", "refused",
    "writes", "aborted", "faults", "rebuilds", "verdict",
]


def render_matrix(results: "list[ChaosResult]") -> list[str]:
    widths = [max(len(h), 8) for h in HEADERS]
    lines = ["  " + " ".join(h.rjust(w) for h, w in zip(HEADERS, widths))]
    for result in results:
        cells = [str(c) for c in result.row()]
        lines.append("  " + " ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return lines


def render_census(results: "list[ChaosResult]") -> list[str]:
    fired: dict[str, int] = {}
    for result in results:
        for kind, count in result.faults_fired.items():
            fired[kind] = fired.get(kind, 0) + count
    lines = ["fired fault census:"]
    for kind, count in sorted(fired.items()):
        lines.append(f"  {kind:<16} {count}")
    if not fired:
        lines.append("  (no fault fired — increase --seeds)")
    return lines


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=15, help="number of plans (default 15)"
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed (replay a failure)"
    )
    parser.add_argument(
        "--skip-teeth", action="store_true",
        help="skip the mixed-epoch teeth check (matrix only)",
    )
    args = parser.parse_args(argv)

    results = [
        run_chaos_plan(seed) for seed in range(args.start, args.start + args.seeds)
    ]
    print(f"chaos matrix — {args.seeds} seeded plans "
          f"(seeds {args.start}..{args.start + args.seeds - 1}):")
    for line in render_matrix(results):
        print(line)
    print()
    for line in render_census(results):
        print(line)

    failed = [r for r in results if not r.ok]
    for result in failed:
        print(f"\nseed {result.seed} DIVERGED — {result.plan_summary}")
        for divergence in result.divergences:
            print(f"  {divergence}")

    teeth_ok = True
    if not args.skip_teeth:
        naive_caught, fenced_clean = mixed_epoch_divergence()
        print(f"\nteeth (fence gate off, staged mixed-epoch bug): "
              f"{'caught' if naive_caught else 'MISSED'}")
        print(f"fence gate on, same scenario: "
              f"{'refused at prepare' if fenced_clean else 'NOT PREVENTED'}")
        teeth_ok = naive_caught and fenced_clean

    if failed or not teeth_ok:
        print("\nchaos report: FAIL")
        return 1
    print(f"\nchaos report: OK — {sum(r.answered for r in results)} answers "
          "row-identical to the fault-free oracle, every refusal typed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
