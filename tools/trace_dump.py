"""Render live span trees from a traced Sieve pipeline (smoke CLI).

Builds a small Mall world, turns on tracing (slow-query threshold 0 so
every query is retained with its full tree), runs a few Fig. 6-style
queries, and pretty-prints each trace as an indented tree::

    sieve.query 3.214ms trace=00000001-7f30 engine=vectorized rows_admitted=1
      middleware.prepare 1.102ms
        parse 0.211ms
        guard.resolve 0.388ms table=WiFi_Connectivity hit=False
        strategy 0.102ms table=WiFi_Connectivity strategy=LinearScan
        rewrite 0.201ms enforced=1
      execute 2.001ms engine=vectorized tuples_scanned=4231
        plan 0.310ms
        run 1.622ms
      audit.record 0.050ms

Exit status is non-zero when no trace was captured or a trace is
missing its pipeline phases — CI runs this as the observability smoke
test.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.scenarios import mall_policies_for_shop  # noqa: E402
from repro.core import Sieve  # noqa: E402
from repro.datasets.mall import MallConfig, generate_mall  # noqa: E402
from repro.policy.store import PolicyStore  # noqa: E402

#: Phases every query trace must contain (the satellite contract).
REQUIRED_PHASES = ("middleware.prepare", "execute")

SQLS = [
    "SELECT COUNT(*) FROM WiFi_Connectivity",
    "SELECT owner, COUNT(*) FROM WiFi_Connectivity GROUP BY owner",
    "SELECT COUNT(*) FROM WiFi_Connectivity WHERE ts_time BETWEEN 600 AND 1200",
]


def _short(value, limit: int = 48) -> str:
    """Attr values elided for one-line display: structured attrs (the
    middleware's per-table enforcement dict) show only their shape."""
    if isinstance(value, dict):
        return f"<{len(value)} table(s): {', '.join(sorted(value))}>"
    text = str(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def format_span(span, indent: int = 0) -> list[str]:
    """One line per span: name, duration, then attrs key=value."""
    attrs = " ".join(
        f"{key}={_short(value)}" for key, value in sorted(span.attrs.items())
    )
    prefix = "  " * indent
    line = f"{prefix}{span.name} {span.duration_ms:.3f}ms"
    if indent == 0:
        line += f" trace={span.trace_id}"
    if attrs:
        line += f" {attrs}"
    return [line] + [
        text for child in span.children for text in format_span(child, indent + 1)
    ]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--customers", type=int, default=60,
        help="mall-world size for the demo queries (default 60)",
    )
    args = parser.parse_args(argv)

    mall = generate_mall(
        MallConfig(seed=13, n_customers=args.customers, days=5, personality="postgres")
    )
    store = PolicyStore(mall.db, mall.groups)
    shop = mall.shops[0]
    store.insert_many(mall_policies_for_shop(mall, shop, 50))
    sieve = Sieve(mall.db, store)
    sieve.enable_tracing(slow_query_ms=0.0)

    querier = mall.shop_querier(shop)
    for sql in SQLS:
        sieve.execute(sql, querier, "any")

    roots = sieve.tracer.traces()
    if not roots:
        print("FAIL: no traces captured")
        return 1
    for root in roots:
        print("\n".join(format_span(root)))
        print()
    for root in roots:
        missing = [phase for phase in REQUIRED_PHASES if root.find(phase) is None]
        if missing:
            print(f"FAIL: trace {root.trace_id} is missing span(s): {missing}")
            return 1
    if len(sieve.slow_query_log) != len(roots):
        print("FAIL: slow-query log (threshold 0) did not retain every trace")
        return 1
    print(f"OK: {len(roots)} traces, all pipeline phases present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
