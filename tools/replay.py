"""Replay a logged decision window against its pinned policy epochs.

The audit tier's closing argument: a window of
:class:`~repro.audit.DecisionRecord`\\ s re-executes on a replica of
the data tier, each record against the *exact* corpus view its
``policy_epoch`` names (:meth:`PolicyStore.snapshot_at
<repro.policy.store.PolicyStore.snapshot_at>`, frozen behind a
:class:`~repro.policy.store.PinnedPolicyStore`), and every replayed
decision must be bit-identical — strategies, guards fired, Δ guard
sets, denied relations, row counts, result digest, and (when the
caller holds the engine fixed, the default) the enforcement-counter
deltas.  Later policy churn on the live store is invisible to the
replay, which is exactly what epoch pinning buys.

Library use::

    report = replay_records(log.records(), store)
    assert report.ok, report.describe()

As a script, ``python tools/replay.py [--queries N]`` runs a
self-contained record → tamper-check → replay exercise over a Mall
workload with mid-window policy churn (the CI ``audit-smoke`` job and
``make replay``), exiting non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script use: make the package importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.audit import AuditLog, DecisionRecord  # noqa: E402
from repro.cluster.replicate import replicate_database  # noqa: E402
from repro.common.errors import AuditError  # noqa: E402
from repro.core.middleware import Sieve  # noqa: E402
from repro.policy.store import PinnedPolicyStore  # noqa: E402


@dataclass(frozen=True)
class ReplayMismatch:
    """One record whose replay diverged, field by field."""

    chain: str
    seq: int
    diffs: dict[str, tuple[Any, Any]]  # field -> (recorded, replayed)


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    replayed: int = 0
    matched: int = 0
    epochs: list[int] = field(default_factory=list)
    mismatches: list[ReplayMismatch] = field(default_factory=list)
    counters_compared: bool = True

    @property
    def ok(self) -> bool:
        return self.replayed > 0 and not self.mismatches

    def describe(self) -> str:
        lines = [
            f"replayed {self.replayed} record(s) across {len(self.epochs)} "
            f"pinned epoch(s) {self.epochs}; {self.matched} matched"
            + ("" if self.counters_compared else " (counters not compared)")
        ]
        for mismatch in self.mismatches[:10]:
            lines.append(f"  MISMATCH chain={mismatch.chain!r} seq={mismatch.seq}:")
            for name, (recorded, replayed) in mismatch.diffs.items():
                lines.append(f"    {name}: recorded={recorded!r} replayed={replayed!r}")
        if len(self.mismatches) > 10:
            lines.append(f"  … and {len(self.mismatches) - 10} more")
        return "\n".join(lines)


def replay_records(
    records: Sequence[DecisionRecord],
    store,
    db=None,
    *,
    cost_model=None,
    backend_factory: "Callable[[Any], Any] | None" = None,
    compare_counters: bool = True,
    isolate: bool = True,
) -> ReplayReport:
    """Re-execute ``records`` against their pinned epochs; compare.

    ``store`` is the (live) :class:`~repro.policy.store.PolicyStore`
    or :class:`~repro.policy.store.PolicyPartition` that recorded the
    window — it must have snapshot retention enabled (automatic for
    audited middleware).  ``db`` defaults to ``store.db``; with
    ``isolate`` (default) the replay runs on a fresh replica so it can
    never perturb the live engine's counters or caches.  ``cost_model``
    must be the one the recording Sieve used (strategy choice is part
    of the decision).  Records whose ``engine`` is ``"backend"`` need
    ``backend_factory(replay_db)`` to ship the replica to the same
    kind of backend.

    Counter deltas are compared per record (``compare_counters=False``
    relaxes this for windows recorded under concurrent interleaving,
    where per-request deltas on shared counters are not well defined —
    decisions and digests still must match).
    """
    report = ReplayReport(counters_compared=compare_counters)
    if not records:
        return report
    source_db = db if db is not None else store.db
    replay_db = replicate_database(source_db) if isolate else source_db
    replay_log = AuditLog(chain_id="replay")

    sieves: dict[tuple[int, bool], Sieve] = {}

    def sieve_for(epoch: int, backend_engine: bool) -> Sieve:
        key = (epoch, backend_engine)
        sieve = sieves.get(key)
        if sieve is None:
            pinned = PinnedPolicyStore(
                replay_db, store.snapshot_at(epoch), groups=store.groups
            )
            backend = None
            if backend_engine:
                if backend_factory is None:
                    raise AuditError(
                        "window contains backend-executed records; pass "
                        "backend_factory to replay them on the same engine kind"
                    )
                backend = backend_factory(replay_db)
            sieve = Sieve(
                replay_db, pinned, cost_model=cost_model, backend=backend,
                audit=replay_log,
            )
            sieves[key] = sieve
        return sieve

    epochs_seen: list[int] = []
    for record in records:
        epoch = record.policy_epoch
        if epoch not in epochs_seen:
            epochs_seen.append(epoch)
        sieve = sieve_for(epoch, record.engine == "backend")
        sieve.execute_with_info(record.sql, record.querier, record.purpose)
        replayed = replay_log.records()[-1].payload
        recorded = record.decision_view(include_counters=compare_counters)
        replayed_view = dict(replayed)
        # Trace ids name live executions — the replay's differ (or are
        # empty) by construction, so both sides exclude them.
        replayed_view.pop("trace_id", None)
        if not compare_counters:
            replayed_view.pop("counters", None)
        diffs = {
            name: (recorded.get(name), replayed_view.get(name))
            for name in sorted(set(recorded) | set(replayed_view))
            if recorded.get(name) != replayed_view.get(name)
        }
        report.replayed += 1
        if diffs:
            report.mismatches.append(
                ReplayMismatch(chain=record.chain, seq=record.seq, diffs=diffs)
            )
        else:
            report.matched += 1
    report.epochs = sorted(epochs_seen)
    replay_log.verify()  # the replay's own chain must be intact too
    return report


# --------------------------------------------------------------- self-test


def _selftest(n_queries: int) -> int:
    """Record a Mall window with mid-window policy churn, verify the
    chain, replay against the pinned epochs, and post-churn the corpus
    to prove pinning isolates the replay.  Returns a process exit code."""
    from repro.datasets.mall import CONNECTIVITY_TABLE, MallConfig, generate_mall
    from repro.policy.store import PolicyStore

    print(f"audit replay self-test: recording a {n_queries}-query Mall window")
    mall = generate_mall(MallConfig(seed=21, n_customers=80, days=8, personality="postgres"))
    store = PolicyStore(mall.db, mall.groups)
    store.insert_many(mall.policies)
    log = AuditLog(chain_id="selftest")
    sieve = Sieve(mall.db, store, audit=log)

    queriers = [mall.shop_querier(s) for s in mall.shops[:2]] + ["nobody-without-policies"]
    templates = [
        f"SELECT * FROM {CONNECTIVITY_TABLE} WHERE ts_date BETWEEN {{lo}} AND {{hi}}",
        f"SELECT * FROM {CONNECTIVITY_TABLE} WHERE ts_time BETWEEN 600 AND 1000",
        f"SELECT shop_id, count(*) AS n FROM {CONNECTIVITY_TABLE} "
        f"WHERE ts_date >= {{lo}} GROUP BY shop_id",
    ]
    victim = store.policies_for(queriers[0], "any", CONNECTIVITY_TABLE)[0]
    for i in range(n_queries):
        if i == n_queries // 3:
            store.delete(victim.id)  # mid-window churn: epoch advances
        if i == (2 * n_queries) // 3:
            store.insert(victim)  # …and again
        sql = templates[i % len(templates)].format(lo=i % 5, hi=i % 5 + 3)
        sieve.execute(sql, queriers[i % len(queriers)], "any")

    checked = log.verify()
    print(f"chain verified: {checked} records, head {log.last_hash[:12]}…")

    # Post-window churn the live corpus; pinned replay must not notice.
    store.delete(victim.id)
    store.insert(victim)

    report = replay_records(log.records(), store)
    print(report.describe())
    if not report.ok:
        print("FAIL: replay diverged from the recorded decisions")
        return 1
    if len(report.epochs) < 3:
        print("FAIL: mid-window churn did not produce multiple pinned epochs")
        return 1
    print("OK: replay reproduced every decision bit-identically")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--queries", type=int, default=200,
        help="window size for the self-test (default 200)",
    )
    args = parser.parse_args(argv)
    return _selftest(args.queries)


if __name__ == "__main__":
    sys.exit(main())
