"""Backend bench — Sieve vs the no-guard baseline, both on real SQLite.

Mirrors the paper's Experiments 4-5 methodology on the bundled
reference backend: the campus world is shipped into SQLite once, then
policy-heavy queries (SELECT-ALL and a date range, as in Experiment 4)
run end-to-end two ways —

* **SIEVE(L)** — the middleware rewrite (guards, ``INDEXED BY`` hints,
  Δ where chosen) executed on SQLite via ``Sieve(db, store,
  backend=...)``;
* **BaselineP(L)** — the traditional no-guard rewrite (the querier's
  full policy DNF appended to WHERE) printed in the SQLite dialect and
  executed on the same database.

Both sides are timed end-to-end (rewrite + print + execute): each is
a complete enforcement middleware, and the paper's Experiment 3
comparison includes Sieve's middleware time too.

SQLite is a real engine, so (unlike the bundled-engine benches) wall
time is the honest metric here; the assertion is the paper's shape:
Sieve at least matches the baseline on policy-heavy queries, with the
win coming from indexable guards versus one giant residual DNF.
"""

from __future__ import annotations

import os
import time

from repro.backend import SqliteBackend
from repro.bench.results import format_table, write_result
from repro.bench.scenarios import designated_querier
from repro.core import BaselineP, Sieve
from repro.datasets.tippers import WIFI_TABLE
from repro.sql.printer import to_sql

QUERIES = {
    "select_all": f"SELECT * FROM {WIFI_TABLE}",
    "date_range": f"SELECT * FROM {WIFI_TABLE} WHERE ts_date BETWEEN 5 AND 20",
}
N_QUERIERS = 3
REPEATS = 3


def _wall_ms(fn) -> float:
    """Best-of-REPEATS wall time (the repeatable cost, minus jitter)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


def test_backend_sqlite_vs_baseline(benchmark, campus_mysql):
    world = campus_mysql
    backend = SqliteBackend().ship(world.db)
    sieve = Sieve(world.db, world.store, backend=backend)
    baseline = BaselineP(world.db, world.store)
    queriers = [
        designated_querier(world, profile, 0) for profile in ("faculty", "staff", "grad")
    ][:N_QUERIERS]

    results: dict[str, dict[str, list[float]]] = {
        name: {"sieve_ms": [], "baseline_ms": [], "rows": []} for name in QUERIES
    }

    def run():
        for metrics in results.values():
            for series in metrics.values():
                series.clear()
        for qname, sql in QUERIES.items():
            for querier in queriers:

                def run_baseline():
                    rewritten = baseline.rewrite(sql, querier, "analytics")
                    return backend.execute(to_sql(rewritten, dialect=backend.dialect))

                # Warm the guard cache / policy filter once so both
                # sides measure steady-state execution, not one-time
                # guard generation.
                shipped = sieve.execute(sql, querier, "analytics")
                checked = run_baseline()
                assert sorted(shipped.rows) == sorted(checked.rows), (
                    f"enforcement semantics diverged for {querier!r} on {qname}"
                )
                results[qname]["sieve_ms"].append(
                    _wall_ms(lambda: sieve.execute(sql, querier, "analytics"))
                )
                results[qname]["baseline_ms"].append(_wall_ms(run_baseline))
                results[qname]["rows"].append(float(len(shipped.rows)))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    data = []
    for qname, metrics in results.items():
        sieve_ms = sum(metrics["sieve_ms"]) / len(metrics["sieve_ms"])
        baseline_ms = sum(metrics["baseline_ms"]) / len(metrics["baseline_ms"])
        speedup = baseline_ms / max(1e-9, sieve_ms)
        rows.append([qname, sieve_ms, baseline_ms, speedup, sum(metrics["rows"])])
        data.append(
            {
                "query": qname,
                "sieve_ms": metrics["sieve_ms"],
                "baseline_ms": metrics["baseline_ms"],
                "mean_sieve_ms": sieve_ms,
                "mean_baseline_ms": baseline_ms,
                "speedup": speedup,
                "rows_returned": metrics["rows"],
            }
        )
    table = format_table(
        ["query", "SIEVE(L) ms", "BaselineP(L) ms", "speedup", "rows"], rows
    )
    write_result(
        "backend_sqlite",
        "Backend — SIEVE vs no-guard baseline on real SQLite (wall ms)",
        table,
        data=data,
        notes=(
            "Both engines run on the same shipped SQLite database; rows are "
            "verified identical before timing. Paper shape (Experiments 4-5): "
            "Sieve's indexable guards at least match the baseline's full "
            "policy DNF on policy-heavy queries, and the margin grows with "
            "the policy count."
        ),
    )

    # Parity-or-better on the policy-heavy queries.  These are
    # wall-clock numbers on a real engine (unlike the bundled benches'
    # deterministic counters), so the gate is deliberately loose: the
    # margin absorbs shared-CI scheduling noise on millisecond-scale
    # queries while still catching structural regressions, which are
    # several-fold (the mis-shaped NOT INDEXED rewrite this bench was
    # built against measured 4-8x slower).  Locally Sieve wins ~1.15x+;
    # tighten via SIEVE_BENCH_BACKEND_MARGIN for a quiet machine.
    margin = float(os.environ.get("SIEVE_BENCH_BACKEND_MARGIN", "1.5"))
    for entry in data:
        assert entry["mean_sieve_ms"] <= entry["mean_baseline_ms"] * margin, (
            f"Sieve lost to the no-guard baseline on {entry['query']}: "
            f"{entry['mean_sieve_ms']:.1f}ms vs {entry['mean_baseline_ms']:.1f}ms"
        )
