"""Table 6 — analysis of policies and generated guards.

Paper reports, across users: |p_uk| (policies per querier, avg 187),
|G| (guards per expression, avg 31), |p_Gi| (partition size, avg 7),
ρ(G_i) (guard cardinality as % of the table, avg 3%), and Savings —
the fraction of policy evaluations eliminated by guards (≈0.99).
"""

from __future__ import annotations

import statistics

from repro.bench.results import format_table, write_result
from repro.bench.scenarios import bench_tippers, policies_for_querier
from repro.core.cost_model import SieveCostModel
from repro.core.generation import build_guarded_expression
from repro.datasets.tippers import WIFI_TABLE
from repro.expr.eval import ExprCompiler, RowBinding

N_QUERIERS = 24


def _stats_block(values):
    return [min(values), statistics.mean(values), max(values), statistics.pstdev(values)]


def _savings(world, expression, sample_rows) -> float:
    """Fraction of policy evaluations avoided thanks to guards.

    Without guards every tuple is checked against the full disjunction
    (short-circuit); with guards only tuples passing a guard are
    checked against that guard's partition.
    """
    table = world.db.catalog.table(WIFI_TABLE)
    binding = RowBinding.for_table(WIFI_TABLE, table.schema.names)
    compiler = ExprCompiler(binding)

    all_policies = [p for g in expression.guards for p in g.policies]
    plain_fns = [compiler.compile(p.object_expr()) for p in all_policies]
    guard_fns = []
    for guard in expression.guards:
        cond_fn = compiler.compile(guard.condition.to_expr())
        policy_fns = [compiler.compile(p.object_expr()) for p in guard.policies]
        guard_fns.append((cond_fn, policy_fns))

    without = with_guards = 0
    for row in sample_rows:
        for fn in plain_fns:
            without += 1
            if fn(row):
                break
        for cond_fn, policy_fns in guard_fns:
            if not cond_fn(row):
                continue
            for fn in policy_fns:
                with_guards += 1
                if fn(row):
                    break
    if without == 0:
        return 0.0
    return (without - with_guards) / without


def test_table6_guard_quality(benchmark, campus_mysql):
    world = campus_mysql
    stats = world.db.table_stats(WIFI_TABLE)
    indexed = frozenset(world.db.catalog.indexed_columns(WIFI_TABLE))
    cm = SieveCostModel()
    table_rows = stats.row_count
    sample_rows = [row for _, row in world.db.catalog.table(WIFI_TABLE).scan()][:1500]

    collected: dict[str, list[float]] = {
        "|p_uk|": [], "|G|": [], "|p_Gi|": [], "rho(Gi) %": [], "Savings": [],
    }

    def run():
        for key in collected:
            collected[key].clear()
        for i in range(N_QUERIERS):
            count = 40 + (i * 17) % 320  # spread of corpus sizes
            policies = policies_for_querier(
                world.dataset, f"t6-q{i}", count, seed=200 + i
            )
            ge = build_guarded_expression(
                policies, stats, indexed, cm,
                querier=f"t6-q{i}", purpose="analytics", table=WIFI_TABLE,
            )
            collected["|p_uk|"].append(len(policies))
            collected["|G|"].append(len(ge.guards))
            collected["|p_Gi|"].extend(g.partition_size for g in ge.guards)
            collected["rho(Gi) %"].extend(
                100.0 * g.cardinality / table_rows for g in ge.guards
            )
            collected["Savings"].append(_savings(world, ge, sample_rows))
        return collected

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, *_stats_block(values)]
        for name, values in collected.items()
    ]
    table = format_table(["metric", "min", "avg", "max", "SD"], rows)
    write_result(
        "table6_guard_quality",
        "Table 6 — analysis of policies and generated guards",
        table,
        data={k: _stats_block(v) for k, v in collected.items()},
        notes=(
            "Paper (TIPPERS corpus): |p_uk| avg 187, |G| avg 31, |p_Gi| avg 7, "
            "ρ(G_i) avg 3%, Savings ≈ 0.99. Shapes to check: partitions group "
            "multiple policies, guard cardinalities stay small, and guards "
            "eliminate the vast majority of policy evaluations."
        ),
    )

    assert statistics.mean(collected["Savings"]) > 0.8
    assert statistics.mean(collected["rho(Gi) %"]) < 25.0
    assert statistics.mean(collected["|p_Gi|"]) >= 1.0
