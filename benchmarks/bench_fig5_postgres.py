"""Figure 5 — SIEVE on MySQL and PostgreSQL over growing policy sets.

Paper (Experiment 4): 5 queriers with ≥300 policies; 10 cumulative
policy sets from 75 upward; SELECT-ALL queries.  Four lines:
BaselineI(M) (best MySQL baseline), BaselineP(P) (PostgreSQL
baseline), SIEVE(M), SIEVE(P).  Shapes: SIEVE beats the baseline on
both systems; the PostgreSQL speedup is the largest and grows with the
policy count (bitmap OR of guard index scans).
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.bench.scenarios import bench_tippers, policies_for_querier
from repro.core import BaselineI, BaselineP, Sieve
from repro.datasets.tippers import WIFI_TABLE
from repro.policy.store import PolicyStore

POLICY_SIZES = [75, 150, 225, 300, 450, 600, 750]
N_QUERIERS = 2  # paper uses 5; scaled for bench time
SQL = f"SELECT * FROM {WIFI_TABLE}"


def _measure_for_size(world, engine_label: str, size: int, make_engine, seed: int):
    """Average cost/wall over queriers at one cumulative set size."""
    total_ms = total_cost = 0.0
    for q in range(N_QUERIERS):
        querier = f"f5-{engine_label}-{q}"
        store = PolicyStore(world.db, world.dataset.groups)
        inserted = [
            store.insert(p)
            for p in policies_for_querier(
                world.dataset, querier, size, seed=seed + q
            )
        ]
        engine = make_engine(world.db, store)
        run = measure_engine(
            engine_label, world.db,
            lambda: engine.execute(SQL, querier, "analytics"),
            repeats=1,
        )
        total_ms += run.wall_ms
        total_cost += run.cost_units
        for p in inserted:
            store.delete(p.id)
    return total_ms / N_QUERIERS, total_cost / N_QUERIERS


def test_fig5_mysql_vs_postgres(benchmark, campus_mysql, campus_postgres):
    worlds = {"M": campus_mysql, "P": campus_postgres}
    engines = {
        "BaselineI(M)": ("M", lambda db, store: BaselineI(db, store)),
        "SIEVE(M)": ("M", lambda db, store: Sieve(db, store)),
        "BaselineP(P)": ("P", lambda db, store: BaselineP(db, store)),
        "SIEVE(P)": ("P", lambda db, store: Sieve(db, store)),
    }
    results: dict[str, list[tuple[float, float]]] = {name: [] for name in engines}

    def run():
        for lst in results.values():
            lst.clear()
        for size in POLICY_SIZES:
            for name, (which, factory) in engines.items():
                results[name].append(
                    _measure_for_size(worlds[which], name, size, factory, seed=500)
                )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for i, size in enumerate(POLICY_SIZES):
        row = [size]
        for name in engines:
            ms, cost = results[name][i]
            row.append(f"{ms:,.0f} / {cost:,.0f}")
        rows.append(row)
    table = format_table(["policies", *engines.keys()], rows)

    speedups = [
        results["BaselineP(P)"][i][1] / max(1e-9, results["SIEVE(P)"][i][1])
        for i in range(len(POLICY_SIZES))
    ]
    write_result(
        "fig5_postgres",
        "Figure 5 — engines over growing policy sets (ms / cost units)",
        table,
        data={name: vals for name, vals in results.items()},
        notes=(
            "Paper shape: SIEVE outperforms each system's baseline; the "
            "PostgreSQL speedup is largest and grows with the policy count. "
            f"SIEVE(P) speedup over BaselineP(P) by size: "
            f"{', '.join(f'{s:.1f}x' for s in speedups)}."
        ),
    )

    # Shapes on cost units. At the smallest corpus both engines find
    # near-identical cheap plans (the paper's speedups start near 1x
    # too: 1.6x at 100 Mall policies), so the win is asserted from the
    # second size up.
    for i in range(len(POLICY_SIZES)):
        assert results["SIEVE(M)"][i][1] <= results["BaselineI(M)"][i][1] * 1.2
        if i >= 1:
            assert results["SIEVE(P)"][i][1] <= results["BaselineP(P)"][i][1] * 1.2
    # Postgres speedup grows with policy count (compare ends).
    assert speedups[-1] >= speedups[0]
