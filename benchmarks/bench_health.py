"""Health & SLO tier: histogram accuracy, instrumentation overhead,
SLO-aware shedding under overload, and health-aware cluster routing.

Four acceptance claims for the PR 8 health tier, all on the Fig. 6
(Experiment 5) Mall workload:

* **histogram accuracy** — the log-bucketed
  :class:`~repro.obs.histogram.LatencyHistogram` reproduces the exact
  p50/p95/p99 of the measured per-request latency population within
  its documented relative error bound (``sqrt(growth) - 1`` ≈ 2.47%
  at the default 5% bucket growth).
* **overhead < 3%** — a server with the full health stack armed
  (burn-rate monitor ticking, adaptive shedder consulted on every
  admission) serves the same closed-loop workload within 3% of one
  without.  As in ``bench_obs.py``, the *reported* overhead is the
  median across attempts and the ceiling assertion gates on the best
  one — wall-clock ratios on a shared host are noisy and the claim is
  about the floor.
* **overload burst** — offered load at 2x measured capacity for a few
  seconds.  The naive bounded queue serves everything it admits and
  blows far through the latency budget; the SLO-aware shedder clamps
  admission when the fast burn fires and keeps the *served* p99
  within budget at a bounded, reported reject rate.  Both servers get
  a 1s reaction window before the measured window opens (steady-state
  overload measurement: the detection transient is inherent — the
  burn signal lags by about one latency budget — and identical for
  both configurations).  Like the overhead ratios, the p99s live in
  the wall-clock noise tail, so a marginal attempt is retried (up to
  ``MAX_ATTEMPTS``).
* **degraded-shard reroute** — a 3-shard cluster with one shard
  artificially slowed flips that shard to ``degraded`` on the next
  :meth:`~repro.cluster.coordinator.SieveCluster.health_tick`, routes
  around it, returns row-identical results for every querier, and
  lifts the detour after the recovery hold once the shard is healed.

Results land in ``benchmarks/results/`` and the repo-root
``BENCH_health.json`` snapshot.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time
from functools import lru_cache

from repro.bench.loadgen import ClientScript, run_closed_loop, run_open_loop
from repro.bench.results import format_table, write_result
from repro.bench.scenarios import mall_policies_for_shop
from repro.cluster import SieveCluster
from repro.core import Sieve
from repro.datasets.mall import MallConfig, generate_mall
from repro.obs.histogram import LatencyHistogram
from repro.obs.slo import SLO
from repro.policy.store import PolicyStore
from repro.service import SieveServer
from repro.service.server import percentile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N_SHOPS = 6
POLICIES_PER_SHOP = 150
WORKERS = 2
MAX_ATTEMPTS = 3
OVERHEAD_CEILING = 0.03
#: Steady-state overload window (seconds); the 1s reaction window is
#: extra.  Stretch on a loaded machine for quieter percentiles.
BURST_S = float(os.environ.get("SIEVE_BENCH_HEALTH_DURATION", "3.0"))
REACTION_S = 1.0
OVERLOAD_FACTOR = 2.0

SQLS = [
    "SELECT COUNT(*) FROM WiFi_Connectivity",
    "SELECT owner, COUNT(*) FROM WiFi_Connectivity GROUP BY owner",
    "SELECT COUNT(*) FROM WiFi_Connectivity WHERE ts_time BETWEEN 600 AND 1200",
]


@lru_cache(maxsize=1)
def mall_world():
    """Fig. 6-scale Mall on the bundled engine + per-shop policies."""
    mall = generate_mall(
        MallConfig(seed=13, n_customers=500, days=15, personality="postgres")
    )
    store = PolicyStore(mall.db, mall.groups)
    shops = mall.shops[:N_SHOPS]
    for shop in shops:
        store.insert_many(mall_policies_for_shop(mall, shop, POLICIES_PER_SHOP))
    return mall, store, shops


def _fresh_sieve() -> tuple[Sieve, list]:
    mall, store, shops = mall_world()
    sieve = Sieve(mall.db, store)
    sieve.enable_rewrite_cache()
    workload = [(mall.shop_querier(shop), sql) for shop in shops for sql in SQLS]
    for querier, sql in workload:  # warm guards + plans off the clock
        sieve.execute(sql, querier, "any")
    return sieve, workload


def _scripts() -> list[ClientScript]:
    mall, _, shops = mall_world()
    return [
        ClientScript(querier=mall.shop_querier(shop), purpose="any", sqls=SQLS)
        for shop in shops
    ]


# ------------------------------------------------------------------ checks


def _histogram_accuracy(rounds: int = 40) -> dict:
    """Per-request wall latencies of the warm workload, recorded into
    both an exact sorted list and a LatencyHistogram; the histogram's
    quantiles must stay within its own error bound."""
    sieve, workload = _fresh_sieve()
    exact: list[float] = []
    hist = LatencyHistogram()
    for _ in range(rounds):
        for querier, sql in workload:
            start = time.perf_counter()
            sieve.execute(sql, querier, "any")
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            exact.append(elapsed_ms)
            hist.record_ms(elapsed_ms)
    exact.sort()
    out = {"samples": len(exact), "bound": hist.relative_error, "quantiles": {}}
    for q in (50, 95, 99):
        truth = percentile(exact, q)
        estimate = hist.percentile(q)
        rel = abs(estimate - truth) / truth if truth else 0.0
        out["quantiles"][f"p{q}"] = {
            "exact_ms": truth,
            "hist_ms": estimate,
            "rel_err": rel,
        }
    return out


def _measure_health_overhead(requests_per_client: int = 120) -> dict:
    """One attempt: same closed-loop workload on a bare server vs one
    with the burn-rate monitor + shedder armed (never actually
    shedding — the load is sustainable, so this prices the
    instrumentation, not the clamp)."""
    sieve, _ = _fresh_sieve()
    scripts = _scripts()

    def timed(arm_slo: bool) -> float:
        server = SieveServer(sieve, workers=WORKERS, max_pending=4096)
        if arm_slo:
            server.enable_slo(
                SLO(latency_ms=10_000.0, latency_target=0.99, short_window_s=1.0)
            )
        with server:
            report = run_closed_loop(
                server, scripts, requests_per_client=requests_per_client
            )
        assert report.failed == 0
        return report.duration_s

    # Alternate the configurations so host warm-up drift hits both
    # equally instead of flattering whichever runs second.
    plain_times, slo_times = [], []
    for _ in range(3):
        plain_times.append(timed(arm_slo=False))
        slo_times.append(timed(arm_slo=True))
    plain_s, slo_s = min(plain_times), min(slo_times)
    return {
        "plain_s": plain_s,
        "slo_s": slo_s,
        "overhead": slo_s / plain_s - 1.0,
    }


def _overload_burst() -> dict:
    """2x overload: naive bounded queue vs SLO-aware shedding."""
    sieve, _ = _fresh_sieve()
    scripts = _scripts()

    # Measured capacity: sustainable closed-loop qps at this worker
    # count — the denominator of the 2x.
    capacity_server = SieveServer(sieve, workers=WORKERS, max_pending=4096)
    with capacity_server:
        cap = run_closed_loop(capacity_server, scripts, duration_s=1.5)
    capacity_qps = cap.throughput_qps
    # Budget = 6x the sustainable p99: the shedder clamps the queue to
    # a quarter of the depth the budget could absorb, so the served p99
    # (queue wait plus service/scheduler tail) lands around half the
    # budget — the 6x keeps that comfortably clear of the boundary on a
    # loaded 1-2 cpu host while staying far below where the naive
    # queue ends up (tens of budgets).
    budget_ms = max(50.0, 6.0 * cap.latency.p99_ms)
    rate = OVERLOAD_FACTOR * capacity_qps

    def burst(shed: bool) -> dict:
        server = SieveServer(sieve, workers=WORKERS, max_pending=100_000)
        if shed:
            server.enable_slo(
                SLO(
                    latency_ms=budget_ms,
                    latency_target=0.95,
                    short_window_s=0.5,
                    long_window_s=10.0,
                    fast_burn=2.0,
                )
            )
        with server:
            reaction = run_open_loop(server, scripts, rate_qps=rate,
                                     duration_s=REACTION_S)
            measured = run_open_loop(server, scripts, rate_qps=rate,
                                     duration_s=BURST_S)
            stats = server.stats()
        return {
            "p50_ms": measured.latency.p50_ms,
            "p99_ms": measured.latency.p99_ms,
            "served": measured.completed,
            "rejected": measured.rejected,
            "reject_rate": measured.reject_rate,
            "reaction_rejected": reaction.rejected,
            "failed": measured.failed + reaction.failed,
            "sheds": stats.sheds,
        }

    naive = burst(shed=False)
    shed = burst(shed=True)
    return {
        "capacity_qps": capacity_qps,
        "offered_qps": rate,
        "budget_ms": budget_ms,
        "reaction_s": REACTION_S,
        "measured_s": BURST_S,
        "naive": naive,
        "shed": shed,
    }


def _burst_ok(burst: dict) -> bool:
    """The burst attempt's own acceptance shape (retry filter — the
    p99s sit in the wall-clock noise tail, so a marginal miss on a
    shared host warrants a fresh attempt, as with the overhead
    ratios)."""
    return (
        burst["naive"]["failed"] == 0
        and burst["shed"]["failed"] == 0
        and burst["naive"]["p99_ms"] > burst["budget_ms"]
        and burst["shed"]["p99_ms"] <= burst["budget_ms"]
        and burst["shed"]["sheds"] > 0
        and 0.0 < burst["shed"]["reject_rate"] < 0.8
    )


def _cluster_reroute() -> dict:
    """Slow one shard until its burn rate flags it; the coordinator
    must reroute around it with row-identical answers, then lift the
    detour after the recovery hold once healed."""
    mall, _, shops = mall_world()
    # A private store: the cluster detaches its partitions on stop.
    store = PolicyStore(mall.db, mall.groups)
    for shop in shops:
        store.insert_many(mall_policies_for_shop(mall, shop, POLICIES_PER_SHOP))
    queriers = [mall.shop_querier(shop) for shop in shops]
    cluster = SieveCluster.replicated(
        mall.db, store, n_shards=3, workers_per_shard=2
    )
    slo = SLO(
        latency_ms=20.0,
        latency_target=0.9,
        short_window_s=0.3,
        long_window_s=5.0,
        fast_burn=2.0,
    )
    cluster.configure_health(slo, recovery_hold_s=0.5)
    out: dict = {}
    with cluster:
        cluster.health_tick()
        baseline = {
            q: cluster.execute(SQLS[0], q, "any").rows for q in queriers
        }
        victim = cluster.route(queriers[0])
        victim_queriers = [q for q in queriers if cluster.route(q) == victim]
        cluster.slow_shard(victim, 0.06)
        for _ in range(4):
            for q in victim_queriers:
                cluster.execute(SQLS[0], q, "any")
        statuses = cluster.health_tick()
        out["victim"] = victim
        out["victim_status"] = statuses[victim]
        out["reroutes"] = dict(cluster.reroutes())
        out["cluster_status"] = cluster.health().status.value
        rerouted_rows_identical = all(
            cluster.execute(SQLS[0], q, "any").rows == baseline[q]
            for q in queriers
        )
        out["rerouted_rows_identical"] = rerouted_rows_identical
        # Heal; the detour lifts once the burn windows drain and the
        # shard holds healthy for the recovery window.
        cluster.slow_shard(victim, 0.0)
        deadline = time.monotonic() + 15.0
        while victim in cluster.reroutes() and time.monotonic() < deadline:
            time.sleep(0.2)
            cluster.health_tick()
        out["recovered"] = victim not in cluster.reroutes()
        out["post_recovery_rows_identical"] = all(
            cluster.execute(SQLS[0], q, "any").rows == baseline[q]
            for q in queriers
        )
    return out


# -------------------------------------------------------------------- bench


def test_health_slo_tier(benchmark):
    results: dict = {}

    def run():
        results.clear()
        results["histogram"] = _histogram_accuracy()

        attempts = []
        for _ in range(MAX_ATTEMPTS):
            attempt = _measure_health_overhead()
            attempts.append(attempt)
            if attempt["overhead"] < OVERHEAD_CEILING:
                break
        results["overhead_attempts"] = attempts
        results["overhead"] = statistics.median(a["overhead"] for a in attempts)
        results["overhead_best"] = min(a["overhead"] for a in attempts)

        for attempt_n in range(MAX_ATTEMPTS):
            results["burst"] = _overload_burst()
            results["burst_attempts"] = attempt_n + 1
            if _burst_ok(results["burst"]):
                break
        results["cluster"] = _cluster_reroute()
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    hist = results["histogram"]
    burst = results["burst"]
    clu = results["cluster"]
    rows = [
        *[
            [f"histogram {q}",
             f"{v['rel_err'] * 100:.2f}% err",
             f"exact {v['exact_ms']:.2f} ms vs hist {v['hist_ms']:.2f} ms "
             f"(bound {hist['bound'] * 100:.2f}%)"]
            for q, v in hist["quantiles"].items()
        ],
        ["overhead (median)", f"{results['overhead'] * 100:.2f}%",
         f"best {results['overhead_best'] * 100:.2f}% across "
         f"{len(results['overhead_attempts'])} attempt(s)"],
        ["burst: naive p99", f"{burst['naive']['p99_ms']:,.0f} ms",
         f"budget {burst['budget_ms']:.0f} ms at "
         f"{burst['offered_qps']:,.0f} qps offered "
         f"({OVERLOAD_FACTOR:.0f}x capacity {burst['capacity_qps']:,.0f})"],
        ["burst: shed p99", f"{burst['shed']['p99_ms']:,.0f} ms",
         f"reject rate {burst['shed']['reject_rate']:.0%}, "
         f"{burst['shed']['sheds']} shed "
         f"({results['burst_attempts']} attempt(s))"],
        ["cluster reroute", clu["victim_status"],
         f"{clu['victim']} -> {clu['reroutes'].get(clu['victim'], '-')}, "
         f"rows identical: {clu['rerouted_rows_identical']}, "
         f"recovered: {clu['recovered']}"],
    ]
    write_result(
        "health_slo_tier",
        "Health & SLO tier — histograms, shedding under overload, reroute",
        format_table(["check", "result", "detail"], rows),
        data=results,
        notes=(
            f"Fig. 6 Mall workload, bundled engine, {WORKERS} workers.  "
            f"Histogram quantiles must stay within the documented "
            f"{hist['bound']:.2%} relative error bound.  The health stack "
            f"(monitor + shedder) must cost < {OVERHEAD_CEILING:.0%} on a "
            "sustainable closed loop (median reported, best gated).  Under "
            f"{OVERLOAD_FACTOR:.0f}x open-loop overload the naive queue "
            "blows through the latency budget while SLO-aware shedding "
            "keeps the served p99 inside it (both measured after a 1s "
            "reaction window; the detection transient is inherent and "
            "shared).  A slowed shard must flip to degraded, be routed "
            "around with row-identical answers, and recover after the "
            "hold."
        ),
    )
    payload = {
        "workload": "fig6-mall-health",
        "histogram": {
            "bound": round(hist["bound"], 4),
            "samples": hist["samples"],
            **{
                q: {k: round(v, 4) for k, v in vals.items()}
                for q, vals in hist["quantiles"].items()
            },
        },
        "overhead": round(results["overhead"], 4),
        "overhead_best": round(results["overhead_best"], 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "burst": {
            "capacity_qps": round(burst["capacity_qps"], 1),
            "offered_qps": round(burst["offered_qps"], 1),
            "budget_ms": round(burst["budget_ms"], 1),
            "naive_p99_ms": round(burst["naive"]["p99_ms"], 1),
            "shed_p99_ms": round(burst["shed"]["p99_ms"], 1),
            "shed_reject_rate": round(burst["shed"]["reject_rate"], 3),
            "shed_count": burst["shed"]["sheds"],
            "naive_served": burst["naive"]["served"],
            "shed_served": burst["shed"]["served"],
        },
        "cluster": clu,
    }
    (REPO_ROOT / "BENCH_health.json").write_text(json.dumps(payload, indent=2) + "\n")

    # -- histogram error bound (+ float slack) --------------------------
    for q, vals in hist["quantiles"].items():
        assert vals["rel_err"] <= hist["bound"] + 1e-9, (
            f"histogram {q} off by {vals['rel_err']:.2%}, "
            f"bound {hist['bound']:.2%}"
        )
    # -- instrumentation overhead ---------------------------------------
    assert results["overhead_best"] < OVERHEAD_CEILING, (
        f"health-stack overhead {results['overhead_best']:.1%} exceeds the "
        f"{OVERHEAD_CEILING:.0%} ceiling in every attempt"
    )
    # -- overload burst --------------------------------------------------
    assert burst["naive"]["failed"] == 0 and burst["shed"]["failed"] == 0
    assert burst["naive"]["p99_ms"] > burst["budget_ms"], (
        f"naive queue was expected to blow the {burst['budget_ms']:.0f} ms "
        f"budget at {OVERLOAD_FACTOR:.0f}x overload, served p99 "
        f"{burst['naive']['p99_ms']:.0f} ms"
    )
    assert burst["shed"]["p99_ms"] <= burst["budget_ms"], (
        f"SLO-aware shedding must keep served p99 within the "
        f"{burst['budget_ms']:.0f} ms budget, got {burst['shed']['p99_ms']:.0f} ms"
    )
    assert burst["shed"]["sheds"] > 0, "the adaptive shedder never engaged"
    assert 0.0 < burst["shed"]["reject_rate"] < 0.8, (
        f"shed reject rate {burst['shed']['reject_rate']:.0%} out of the "
        "expected (0%, 80%) band for 2x overload"
    )
    # -- cluster degraded-shard reroute ---------------------------------
    assert clu["victim_status"] == "degraded", clu
    assert clu["victim"] in clu["reroutes"], clu
    assert clu["cluster_status"] == "degraded", clu
    assert clu["rerouted_rows_identical"], "reroute changed query answers"
    assert clu["recovered"], "reroute never lifted after the shard healed"
    assert clu["post_recovery_rows_identical"]
