"""Audit tier: overhead ceiling and replay fidelity (not a paper figure).

Three acceptance claims for ``repro/audit`` on the Fig. 6 (Experiment
5) Mall workload:

* **overhead < 5%** — the audited middleware runs the same warm
  workload within 5% of the unaudited one.  The decision record is
  assembled from bookkeeping the middleware already computed plus one
  digest pass over the result rows, and hashing is amortized per
  flush, so the hot-path cost is O(1) per request.  Timing is
  best-of-``ROUNDS`` with a few retry attempts: wall-clock ratios on a
  shared host are noisy and the claim is about the floor, not the
  scheduler.
* **1k-query replay, bit-identical** — a 1000-query window with
  mid-window policy churn records, chain-verifies, and replays against
  its pinned epochs with 100% identical decisions *including* the
  enforcement-counter deltas.
* **cluster merge verifies** — an audited 3-shard cluster's per-shard
  chains merge into one verifiable log holding exactly one record per
  request.

Results land in ``benchmarks/results/`` and the repo-root
``BENCH_audit.json`` snapshot.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.audit import verify_merged
from repro.bench.results import format_table, write_result
from repro.bench.scenarios import mall_policies_for_shop
from repro.cluster import SieveCluster
from repro.core import Sieve
from repro.datasets.mall import MallConfig, generate_mall
from repro.policy.store import PolicyStore

import replay as replay_tool  # benchmarks/conftest.py puts tools/ on sys.path

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N_SHOPS = 6
POLICIES_PER_SHOP = 150
ROUNDS = 5
MAX_ATTEMPTS = 3
OVERHEAD_CEILING = 0.05
WINDOW = 1000

#: Fig. 6-style workload: enforcement + scan dominated, so the audit
#: tier's per-request work (payload + digest) is measured against real
#: engine time, not row marshalling.
SQLS = [
    "SELECT COUNT(*) FROM WiFi_Connectivity",
    "SELECT owner, COUNT(*) FROM WiFi_Connectivity GROUP BY owner",
    "SELECT COUNT(*) FROM WiFi_Connectivity WHERE ts_time BETWEEN 600 AND 1200",
]


def _mall_world(n_customers: int, days: int, seed: int = 13):
    mall = generate_mall(
        MallConfig(seed=seed, n_customers=n_customers, days=days, personality="postgres")
    )
    store = PolicyStore(mall.db, mall.groups)
    shops = mall.shops[:N_SHOPS]
    for shop in shops:
        store.insert_many(mall_policies_for_shop(mall, shop, POLICIES_PER_SHOP))
    return mall, store, shops


def _workload(mall, shops):
    return [(mall.shop_querier(shop), sql) for shop in shops for sql in SQLS]


def _best_of(sieve: Sieve, workload, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for querier, sql in workload:
            sieve.execute(sql, querier, "any")
        best = min(best, time.perf_counter() - start)
    return best


def _measure_overhead():
    """(plain_s, audited_s, overhead) for one attempt, fresh worlds so
    neither run inherits the other's warm state asymmetrically."""
    mall, store, shops = _mall_world(n_customers=500, days=15)
    workload = _workload(mall, shops)
    plain = Sieve(mall.db, store)
    audited = Sieve(mall.db, store)
    audited.enable_audit()
    for sieve in (plain, audited):  # warm guards + plans off the clock
        for querier, sql in workload:
            sieve.execute(sql, querier, "any")
    plain_s = _best_of(plain, workload, ROUNDS)
    audited_s = _best_of(audited, workload, ROUNDS)
    return plain_s, audited_s, audited_s / plain_s - 1.0


def test_audit_overhead_and_replay_fidelity(benchmark):
    results: dict = {}

    def run():
        results.clear()

        # -- overhead ceiling (retry: the claim is about the floor) --
        attempts = []
        for _ in range(MAX_ATTEMPTS):
            plain_s, audited_s, overhead = _measure_overhead()
            attempts.append(
                {"plain_s": plain_s, "audited_s": audited_s, "overhead": overhead}
            )
            if overhead < OVERHEAD_CEILING:
                break
        results["overhead_attempts"] = attempts
        results["overhead"] = min(a["overhead"] for a in attempts)

        # -- 1k-query window: record -> verify -> replay ------------
        mall, store, shops = _mall_world(n_customers=150, days=8, seed=29)
        sieve = Sieve(mall.db, store)
        log = sieve.enable_audit()
        workload = _workload(mall, shops)
        victim = store.policies_for(
            mall.shop_querier(shops[0]), "any", "WiFi_Connectivity"
        )[0]
        record_start = time.perf_counter()
        for i in range(WINDOW):
            if i == WINDOW // 3:
                store.delete(victim.id)  # mid-window churn
            if i == (2 * WINDOW) // 3:
                store.insert(victim)
            querier, sql = workload[i % len(workload)]
            sieve.execute(sql, querier, "any")
        record_s = time.perf_counter() - record_start
        assert log.verify() == WINDOW
        store.delete(victim.id)  # post-window churn: replay must not see it
        store.insert(victim)
        replay_start = time.perf_counter()
        report = replay_tool.replay_records(log.records(), store)
        replay_s = time.perf_counter() - replay_start
        assert report.ok, report.describe()
        assert report.replayed == WINDOW and report.counters_compared
        results["window"] = {
            "queries": WINDOW,
            "epochs": report.epochs,
            "matched": report.matched,
            "record_s": round(record_s, 3),
            "replay_s": round(replay_s, 3),
        }

        # -- audited cluster: merged chains verify ------------------
        cluster = SieveCluster.replicated(
            mall.db, store, n_shards=3, workers_per_shard=1, audit=True
        )
        n_requests = 0
        with cluster:
            for _ in range(3):
                for querier, sql in workload:
                    cluster.execute(sql, querier, "any", timeout=120)
                    n_requests += 1
        merged = cluster.merged_audit_records()
        assert verify_merged(merged) == n_requests
        results["cluster"] = {
            "shards": 3,
            "requests": n_requests,
            "merged_records": len(merged),
            "chains": sorted({r.chain for r in merged}),
        }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    best = min(results["overhead_attempts"], key=lambda a: a["overhead"])
    rows = [
        ["overhead (best)", f"{results['overhead'] * 100:.2f}%",
         f"plain {best['plain_s'] * 1000:.1f} ms vs audited "
         f"{best['audited_s'] * 1000:.1f} ms, best of {ROUNDS} rounds"],
        ["replay window", f"{results['window']['matched']}/{WINDOW}",
         f"{len(results['window']['epochs'])} pinned epochs, "
         f"record {results['window']['record_s']}s, "
         f"replay {results['window']['replay_s']}s"],
        ["cluster merge", f"{results['cluster']['merged_records']} records",
         f"{results['cluster']['shards']} shard chains, all verified"],
    ]
    write_result(
        "audit_overhead_replay",
        "Audit tier — overhead ceiling and replay fidelity (Fig. 6 workload)",
        format_table(["check", "result", "detail"], rows),
        data=results,
        notes=(
            f"Audited middleware must stay within {OVERHEAD_CEILING:.0%} of the "
            f"unaudited one on the warm Fig. 6 Mall workload (best of {ROUNDS} "
            f"rounds, up to {MAX_ATTEMPTS} attempts); a {WINDOW}-query window "
            "with mid-window policy churn replays 100% bit-identically "
            "(decisions AND enforcement-counter deltas) against its pinned "
            "epochs; an audited 3-shard cluster's per-shard chains merge into "
            "one verifiable log with exactly one record per request."
        ),
    )
    payload = {
        "workload": "fig6-mall-audit",
        "overhead": round(results["overhead"], 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "overhead_attempts": [
            {k: round(v, 4) for k, v in a.items()} for a in results["overhead_attempts"]
        ],
        "replay_window": results["window"],
        "cluster": results["cluster"],
    }
    (REPO_ROOT / "BENCH_audit.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert results["overhead"] < OVERHEAD_CEILING, (
        f"audited overhead {results['overhead']:.1%} exceeds the "
        f"{OVERHEAD_CEILING:.0%} ceiling in every attempt"
    )
    assert results["window"]["matched"] == WINDOW
    assert len(results["window"]["epochs"]) >= 3
