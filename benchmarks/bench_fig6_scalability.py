"""Figure 6 — scalability on the Mall dataset (paper Experiment 5).

Paper: on PostgreSQL with 5 shops as queriers and cumulative policy
sets of 100 → 1,200, SIEVE's speedup over the baseline grows roughly
linearly, from 1.6× (100 policies) to 5.6× (1,200 policies) — thanks
to bitmap-OR-ing the guard index scans while the baseline's per-policy
DNF grows.
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.bench.scenarios import bench_mall, mall_policies_for_shop
from repro.core import BaselineP, Sieve
from repro.policy.store import PolicyStore

POLICY_SIZES = [100, 300, 600, 1200]
N_SHOPS = 2  # paper uses 5; scaled for bench time
SQL = "SELECT * FROM WiFi_Connectivity"


def test_fig6_mall_scalability(benchmark, mall_postgres):
    mall = mall_postgres
    results: list[tuple[int, float, float, float, float, float]] = []

    def run():
        results.clear()
        for size in POLICY_SIZES:
            base_ms = base_cost = sieve_ms = sieve_cost = 0.0
            for shop in mall.shops[:N_SHOPS]:
                querier = mall.shop_querier(shop)
                store = PolicyStore(mall.db, mall.groups)
                inserted = [
                    store.insert(p)
                    for p in mall_policies_for_shop(mall, shop, size, seed=600 + shop)
                ]
                baseline = BaselineP(mall.db, store)
                m = measure_engine(
                    "BaselineP(P)", mall.db,
                    lambda: baseline.execute(SQL, querier, "any"),
                    repeats=1,
                )
                base_ms += m.wall_ms
                base_cost += m.cost_units
                sieve = Sieve(mall.db, store)
                m = measure_engine(
                    "SIEVE(P)", mall.db,
                    lambda: sieve.execute(SQL, querier, "any"),
                    repeats=1,
                )
                sieve_ms += m.wall_ms
                sieve_cost += m.cost_units
                for p in inserted:
                    store.delete(p.id)
            base_ms /= N_SHOPS
            base_cost /= N_SHOPS
            sieve_ms /= N_SHOPS
            sieve_cost /= N_SHOPS
            results.append(
                (size, base_ms, sieve_ms, base_cost, sieve_cost,
                 base_cost / max(1e-9, sieve_cost))
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [size, f"{bm:,.0f}", f"{sm:,.0f}", f"{bc:,.0f}", f"{sc:,.0f}", f"{sp:.1f}x"]
        for size, bm, sm, bc, sc, sp in results
    ]
    table = format_table(
        ["policies", "BaselineP ms", "SIEVE ms", "BaselineP cost", "SIEVE cost", "speedup"],
        rows,
    )
    write_result(
        "fig6_scalability",
        "Figure 6 — Mall scalability on PostgreSQL",
        table,
        data=results,
        notes=(
            "Paper: speedup grows ~linearly from 1.6x @100 policies to "
            "5.6x @1,200. Check that the speedup column grows with the "
            "policy count and exceeds 1x throughout."
        ),
    )

    speedups = [r[5] for r in results]
    assert all(s > 1.0 for s in speedups), "SIEVE must beat the baseline at every size"
    assert speedups[-1] > speedups[0], "speedup must grow with the policy count"
