"""Shared benchmark fixtures: cached campus and mall worlds."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import bench_mall, bench_tippers


@pytest.fixture(scope="session")
def campus_mysql():
    return bench_tippers("mysql")


@pytest.fixture(scope="session")
def campus_postgres():
    return bench_tippers("postgres")


@pytest.fixture(scope="session")
def mall_postgres():
    return bench_mall("postgres")
