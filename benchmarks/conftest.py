"""Shared benchmark fixtures: cached campus and mall worlds."""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.bench.scenarios import bench_mall, bench_tippers

# tools/ holds the replay harness (a script, not an installed package);
# bench_audit.py drives it as a library.
_TOOLS = str(pathlib.Path(__file__).resolve().parents[1] / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)


@pytest.fixture(scope="session")
def campus_mysql():
    return bench_tippers("mysql")


@pytest.fixture(scope="session")
def campus_postgres():
    return bench_tippers("postgres")


@pytest.fixture(scope="session")
def mall_postgres():
    return bench_mall("postgres")
