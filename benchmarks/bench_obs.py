"""Observability tier: tracing overhead ceiling and span attribution.

Two acceptance claims for ``repro/obs`` on the Fig. 6 (Experiment 5)
Mall workload, plus a recorded demonstration of the selectivity
feedback loop:

* **overhead < 3%** — the fully-instrumented middleware (tracing *and*
  the span-fed selectivity profiler) runs the same warm workload
  within 3% of the bare one.  Every span is one ``perf_counter`` pair
  and a list append; disabled sites cost a thread-local read.  Timing
  is best-of-``ROUNDS`` with retry attempts: wall-clock ratios on a
  shared host are noisy and the claim is about the floor.  The
  *reported* overhead is the median across attempts (the minimum
  regularly lands negative on a quiet host, which reads as nonsense);
  the ceiling assertion still gates on the best attempt.
* **attribution >= 95%** — across every captured trace, the named
  phase spans (``middleware.prepare``, ``execute``, ``audit.record``)
  cover at least 95% of each root's wall time, duration-weighted — the
  trace tree explains end-to-end latency rather than leaving it in
  unlabelled gaps.
* **feedback flip** (recorded, asserted) — growing a table 60x under
  stale statistics, the span feed corrects the strategy choice from
  per-guard index unions back to a sequential scan with no ANALYZE and
  no manual ``observe()`` calls.

Results land in ``benchmarks/results/`` and the repo-root
``BENCH_obs.json`` snapshot.
"""

from __future__ import annotations

import json
import pathlib
import random
import statistics
import time

from repro.bench.results import format_table, write_result
from repro.bench.scenarios import mall_policies_for_shop
from repro.core import Sieve
from repro.datasets.mall import MallConfig, generate_mall
from repro.obs.tracing import attributed_fraction
from repro.policy.store import PolicyStore

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N_SHOPS = 6
POLICIES_PER_SHOP = 150
ROUNDS = 5
MAX_ATTEMPTS = 3
OVERHEAD_CEILING = 0.03
ATTRIBUTION_FLOOR = 0.95

#: Fig. 6-style workload: enforcement + scan dominated, so the span
#: overhead is measured against real engine time.
SQLS = [
    "SELECT COUNT(*) FROM WiFi_Connectivity",
    "SELECT owner, COUNT(*) FROM WiFi_Connectivity GROUP BY owner",
    "SELECT COUNT(*) FROM WiFi_Connectivity WHERE ts_time BETWEEN 600 AND 1200",
]


def _mall_world(n_customers: int, days: int, seed: int = 13):
    mall = generate_mall(
        MallConfig(seed=seed, n_customers=n_customers, days=days, personality="postgres")
    )
    store = PolicyStore(mall.db, mall.groups)
    shops = mall.shops[:N_SHOPS]
    for shop in shops:
        store.insert_many(mall_policies_for_shop(mall, shop, POLICIES_PER_SHOP))
    return mall, store, shops


def _workload(mall, shops):
    return [(mall.shop_querier(shop), sql) for shop in shops for sql in SQLS]


def _best_of(sieve: Sieve, workload, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for querier, sql in workload:
            sieve.execute(sql, querier, "any")
        best = min(best, time.perf_counter() - start)
    return best


def _measure_overhead():
    """(plain_s, traced_s, overhead, attribution) for one attempt —
    fresh worlds so neither run inherits the other's warm state."""
    mall, store, shops = _mall_world(n_customers=500, days=15)
    workload = _workload(mall, shops)
    plain = Sieve(mall.db, store)
    traced = Sieve(mall.db, store)
    traced.enable_tracing(slow_query_ms=250.0)
    traced.enable_profiling()
    for sieve in (plain, traced):  # warm guards + plans off the clock
        for querier, sql in workload:
            sieve.execute(sql, querier, "any")
    plain_s = _best_of(plain, workload, ROUNDS)
    traced_s = _best_of(traced, workload, ROUNDS)
    roots = traced.tracer.traces()
    total_ms = sum(root.duration_ms for root in roots)
    covered_ms = sum(
        root.duration_ms * attributed_fraction(root) for root in roots
    )
    attribution = covered_ms / total_ms if total_ms else 1.0
    return {
        "plain_s": plain_s,
        "traced_s": traced_s,
        "overhead": traced_s / plain_s - 1.0,
        "attribution": attribution,
        "traces": len(roots),
    }


def _wifi_world(n_rows: int = 300, n_owners: int = 3, seed: int = 1):
    """A tiny analyzed WiFi table + per-owner policies (the
    tests/test_obs_profile.py shape, rebuilt here so the bench stays
    importable without the tests' conftest)."""
    from repro.db.database import connect
    from repro.policy.model import ObjectCondition, Policy
    from repro.storage.schema import ColumnType, Schema

    rng = random.Random(seed)
    db = connect("mysql", page_size=128)
    db.create_table(
        "wifi",
        Schema.of(
            ("id", ColumnType.INT),
            ("wifiap", ColumnType.INT),
            ("owner", ColumnType.INT),
            ("ts_time", ColumnType.INT),
            ("ts_date", ColumnType.INT),
        ),
    )
    db.insert(
        "wifi",
        [
            (i, rng.randrange(32), rng.randrange(n_owners), rng.randrange(1440), rng.randrange(90))
            for i in range(n_rows)
        ],
    )
    for col in ("owner", "wifiap", "ts_time", "ts_date"):
        db.create_index("wifi", col)
    db.analyze()
    prng = random.Random(2)
    policies = []
    for owner in range(n_owners):
        for _ in range(2):
            conds = [ObjectCondition("owner", "=", owner)]
            kind = prng.randrange(3)
            if kind == 0:
                start = prng.randrange(0, 1200)
                conds.append(
                    ObjectCondition("ts_time", ">=", start, "<=", start + prng.randrange(60, 300))
                )
            elif kind == 1:
                conds.append(ObjectCondition("wifiap", "=", prng.randrange(32)))
            else:
                start = prng.randrange(0, 60)
                conds.append(
                    ObjectCondition("ts_date", ">=", start, "<=", start + prng.randrange(5, 30))
                )
            policies.append(
                Policy(
                    owner=owner, querier="prof", purpose="analytics", table="wifi",
                    object_conditions=tuple(conds),
                )
            )
    return db, policies


def _feedback_flip():
    """The stale-statistics correction, end to end (mirrors
    tests/test_obs_profile.py on a WiFi-shaped table)."""
    db, policies = _wifi_world()
    store = PolicyStore(db)
    store.insert_many(policies)
    sieve = Sieve(db, store)
    sieve.enable_profiling()
    sql = "SELECT * FROM wifi"

    sieve.execute(sql, "prof", "analytics")
    rng = random.Random(9)
    db.insert(
        "wifi",
        [
            (300 + i, rng.randrange(32), rng.randrange(3), rng.randrange(1440), rng.randrange(90))
            for i in range(18000)
        ],
    )  # 60x growth, deliberately not analyzed
    stale = sieve.execute_with_info(sql, "prof", "analytics")
    corrected = sieve.execute_with_info(sql, "prof", "analytics")
    return {
        "rows_grown_to": 18300,
        "stale_strategy": stale.rewrite.decisions["wifi"].strategy.value,
        "corrected_strategy": corrected.rewrite.decisions["wifi"].strategy.value,
        "measured_guards": corrected.rewrite.decisions["wifi"].measured_guards,
    }


def test_obs_overhead_and_attribution(benchmark):
    results: dict = {}

    def run():
        results.clear()

        # -- overhead + attribution (retry: claim is about the floor) --
        attempts = []
        for _ in range(MAX_ATTEMPTS):
            attempt = _measure_overhead()
            attempts.append(attempt)
            if (
                attempt["overhead"] < OVERHEAD_CEILING
                and attempt["attribution"] >= ATTRIBUTION_FLOOR
            ):
                break
        results["attempts"] = attempts
        # Median is the *reported* overhead: min() of noisy wall-clock
        # ratios picks the luckiest attempt and regularly goes
        # negative, which reads as nonsense in the snapshot.  The
        # ceiling assertion still gates on the best attempt — the
        # claim is about the floor.
        results["overhead"] = statistics.median(a["overhead"] for a in attempts)
        results["overhead_best"] = min(a["overhead"] for a in attempts)
        results["attribution"] = max(a["attribution"] for a in attempts)

        # -- selectivity feedback loop ------------------------------
        results["feedback"] = _feedback_flip()
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    best = min(results["attempts"], key=lambda a: a["overhead"])
    flip = results["feedback"]
    rows = [
        ["overhead (median)", f"{results['overhead'] * 100:.2f}%",
         f"median of {len(results['attempts'])} attempt(s); best "
         f"{results['overhead_best'] * 100:.2f}% (plain "
         f"{best['plain_s'] * 1000:.1f} ms vs traced "
         f"{best['traced_s'] * 1000:.1f} ms, best of {ROUNDS} rounds)"],
        ["attribution", f"{results['attribution'] * 100:.2f}%",
         f"duration-weighted over {best['traces']} traces"],
        ["feedback flip", f"{flip['stale_strategy']} -> {flip['corrected_strategy']}",
         f"{flip['rows_grown_to']} rows under 300-row statistics, "
         f"{flip['measured_guards']} guards measured"],
    ]
    write_result(
        "obs_overhead_attribution",
        "Observability tier — tracing overhead and span attribution (Fig. 6 workload)",
        format_table(["check", "result", "detail"], rows),
        data=results,
        notes=(
            f"Fully-instrumented middleware (tracing + selectivity profiling) "
            f"must stay within {OVERHEAD_CEILING:.0%} of the bare one on the "
            f"warm Fig. 6 Mall workload (best of {ROUNDS} rounds, up to "
            f"{MAX_ATTEMPTS} attempts); named phase spans must cover >= "
            f"{ATTRIBUTION_FLOOR:.0%} of root wall time, duration-weighted; "
            "the span feed must correct an index-union strategy chosen under "
            "60x-stale statistics back to a sequential scan without ANALYZE."
        ),
    )
    payload = {
        "workload": "fig6-mall-obs",
        "overhead": round(results["overhead"], 4),
        "overhead_best": round(results["overhead_best"], 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "attribution": round(results["attribution"], 4),
        "attribution_floor": ATTRIBUTION_FLOOR,
        "attempts": [
            {k: round(v, 4) if isinstance(v, float) else v for k, v in a.items()}
            for a in results["attempts"]
        ],
        "feedback": results["feedback"],
    }
    (REPO_ROOT / "BENCH_obs.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert results["overhead_best"] < OVERHEAD_CEILING, (
        f"traced overhead {results['overhead_best']:.1%} exceeds the "
        f"{OVERHEAD_CEILING:.0%} ceiling in every attempt"
    )
    assert results["attribution"] >= ATTRIBUTION_FLOOR, (
        f"span attribution {results['attribution']:.1%} below the "
        f"{ATTRIBUTION_FLOOR:.0%} floor"
    )
    assert flip["stale_strategy"] == "IndexGuards"
    assert flip["corrected_strategy"] == "LinearScan"
