"""Engine bench — tuple-at-a-time vs vectorized batch execution.

The Fig. 6 guarded workload (Mall, PostgreSQL personality, one shop
querier with a cumulative policy set) is the paper's DBMS-side stress
case: the rewritten query's CTE checks hundreds of policy disjuncts
per tuple.  This bench runs that exact rewrite through the bundled
engine under each execution mode and reports per-phase milliseconds
(plan / execute) plus end-to-end queries/sec:

* ``tuple`` — the original closure-tree tuple-at-a-time interpreter
  (the differential oracle; ``vectorized=False, codegen=False``),
* ``tuple-codegen`` — tuple-at-a-time over codegen'd expressions,
* ``vectorized`` — the batch executor with codegen kernels (the
  default engine mode),
* ``prepared-vectorized`` — the same workload through
  ``Sieve.prepare()`` with a warm plan cache: the full middleware
  pipeline, minus the parse → strategy → rewrite → plan work the
  cache memoizes.  ``plan_ms`` is 0 by construction (planning is
  skipped, not merely fast); ``e2e_ms`` is the whole warm pipeline.

``plan_ms`` is measured per mode, inside each mode's measurement
window (planning is engine-mode independent here, but each row
reports what was actually measured for it, never a number copied
from another row).

Asserts (a) the vectorized path executes the guarded scan >= 3x
faster than the tuple-at-a-time oracle, and (b) the warm prepared
end-to-end time lands within ``PREPARED_MAX_RATIO`` (1.2x) of
exec-only time — i.e. the planning tax is actually gone.  Writes the
numbers both to ``benchmarks/results/engine_vectorized.*`` and to a
repo-root ``BENCH_engine.json`` so the performance trajectory is
tracked at the top level (``make bench-engine`` / ``make
bench-prepared`` / CI's engine-smoke and prepared-smoke jobs).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.bench.results import format_table, write_result
from repro.bench.scenarios import mall_policies_for_shop
from repro.core import Sieve
from repro.policy.store import PolicyStore

POLICIES = 600
SQL = "SELECT * FROM WiFi_Connectivity"
EXEC_REPEATS = 5
E2E_REPEATS = 3
MIN_SPEEDUP = 3.0
#: Warm prepared end-to-end must land within this factor of pure
#: execution time — the prepared-query tier's acceptance bound.
PREPARED_MAX_RATIO = 1.2

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MODES = [
    ("tuple", False, False),
    ("tuple-codegen", False, True),
    ("vectorized", True, True),
]


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_vectorized_speedup(benchmark, mall_postgres):
    mall = mall_postgres
    db = mall.db
    store = PolicyStore(db, mall.groups)
    shop = mall.shops[0]
    querier = mall.shop_querier(shop)
    inserted = [
        store.insert(p)
        for p in mall_policies_for_shop(mall, shop, POLICIES, seed=900 + shop)
    ]
    results: list[dict] = []
    extra: dict = {}
    try:
        sieve = Sieve(db, store)
        rewritten = sieve.rewrite(SQL, querier, "any")
        planned = db.plan(rewritten)
        prepared = sieve.prepare(SQL, querier, "any")

        def run():
            results.clear()
            for mode, vectorized, codegen in MODES:
                # Warm once: compiles land in the expression cache, so
                # the measured window is steady-state execution (the
                # paper's warm-performance convention).
                out = db.run_plan(planned, vectorized=vectorized, codegen=codegen)
                # Planning is measured inside each mode's window: every
                # row reports its own measurement, never a number
                # copied from another mode's.
                plan_ms = _best(lambda: db.plan(rewritten), EXEC_REPEATS) * 1000.0
                before = db.counters.snapshot()
                exec_s = _best(
                    lambda v=vectorized, c=codegen: db.run_plan(
                        planned, vectorized=v, codegen=c
                    ),
                    EXEC_REPEATS,
                )
                diff = db.counters.diff(before)
                saved = (db.vectorized, db.codegen)
                db.vectorized, db.codegen = vectorized, codegen
                try:
                    e2e_s = _best(lambda: db.execute(rewritten), E2E_REPEATS)
                finally:
                    db.vectorized, db.codegen = saved
                results.append(
                    {
                        "mode": mode,
                        "plan_ms": plan_ms,
                        "exec_ms": exec_s * 1000.0,
                        "e2e_ms": e2e_s * 1000.0,
                        "qps": 1.0 / e2e_s,
                        "rows": len(out.rows),
                        "policy_evals": diff["policy_evals"] // EXEC_REPEATS,
                        "tuples_scanned": diff["tuples_scanned"] // EXEC_REPEATS,
                    }
                )
            # Unprepared full-pipeline reference: every call pays
            # strategy + rewrite + plan again (guard cache warm — this
            # isolates the per-call planning tax the cache removes).
            extra["unprepared_pipeline_ms"] = (
                _best(lambda: sieve.execute(SQL, querier, "any"), E2E_REPEATS)
                * 1000.0
            )
            # Prepared mode: the full middleware pipeline with a warm
            # plan cache — parse, strategy, rewrite and plan are all
            # memoized, so e2e is admission + cache hit + execution.
            out = prepared.execute()  # warm: populates the plan cache
            before = db.counters.snapshot()
            prep_s = _best(lambda: prepared.execute(), EXEC_REPEATS)
            diff = db.counters.diff(before)
            assert diff["plan_cache_hits"] == EXEC_REPEATS, diff["plan_cache_hits"]
            results.append(
                {
                    "mode": "prepared-vectorized",
                    # Planning is skipped on a warm hit, not re-run fast.
                    "plan_ms": 0.0,
                    "exec_ms": prep_s * 1000.0,
                    "e2e_ms": prep_s * 1000.0,
                    "qps": 1.0 / prep_s,
                    "rows": len(out.rows),
                    "policy_evals": diff["policy_evals"] // EXEC_REPEATS,
                    "tuples_scanned": diff["tuples_scanned"] // EXEC_REPEATS,
                }
            )
            return results

        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        for p in inserted:
            store.delete(p.id)

    by_mode = {r["mode"]: r for r in results}
    speedup_exec = by_mode["tuple"]["exec_ms"] / by_mode["vectorized"]["exec_ms"]
    speedup_e2e = by_mode["tuple"]["e2e_ms"] / by_mode["vectorized"]["e2e_ms"]
    exec_only_ms = by_mode["vectorized"]["exec_ms"]
    warm_prepared_ms = by_mode["prepared-vectorized"]["e2e_ms"]
    prepared_ratio = warm_prepared_ms / exec_only_ms
    unprepared_pipeline_ms = extra["unprepared_pipeline_ms"]

    table = format_table(
        ["mode", "plan ms", "exec ms", "e2e ms", "queries/s", "rows", "policy evals"],
        [
            [
                r["mode"],
                f"{r['plan_ms']:.1f}",
                f"{r['exec_ms']:.1f}",
                f"{r['e2e_ms']:.1f}",
                f"{r['qps']:.1f}",
                r["rows"],
                f"{r['policy_evals']:,}",
            ]
            for r in results
        ],
    )
    write_result(
        "engine_vectorized",
        "Engine — tuple vs vectorized on the Fig. 6 guarded workload",
        table,
        data=results,
        notes=(
            f"Vectorized guarded-scan execution must be >= {MIN_SPEEDUP}x the "
            "tuple-at-a-time oracle (asserted).  policy_evals/tuples_scanned "
            "are identical across modes by construction — the differential "
            "suite proves it; here they document the workload size.  "
            f"Warm prepared e2e must be <= {PREPARED_MAX_RATIO}x exec-only "
            f"(asserted; unprepared pipeline: {unprepared_pipeline_ms:.1f} ms)."
        ),
    )

    payload = {
        "workload": "fig6-mall-guarded-scan",
        "sql": SQL,
        "policies": POLICIES,
        "modes": results,
        "speedup_exec_vectorized_vs_tuple": round(speedup_exec, 2),
        "speedup_e2e_vectorized_vs_tuple": round(speedup_e2e, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
        "prepared": {
            "unprepared_pipeline_ms": round(unprepared_pipeline_ms, 3),
            "warm_e2e_ms": round(warm_prepared_ms, 3),
            "exec_only_ms": round(exec_only_ms, 3),
            "ratio_warm_vs_exec": round(prepared_ratio, 3),
            "speedup_vs_unprepared_pipeline": round(
                unprepared_pipeline_ms / warm_prepared_ms, 2
            ),
            "max_ratio_asserted": PREPARED_MAX_RATIO,
        },
    }
    (REPO_ROOT / "BENCH_engine.json").write_text(json.dumps(payload, indent=2) + "\n")

    same = {"rows", "policy_evals", "tuples_scanned"}
    for r in results[1:]:
        for key in same:
            assert r[key] == results[0][key], f"{key} diverged in {r['mode']}"
    assert speedup_exec >= MIN_SPEEDUP, (
        f"vectorized guarded-scan execution is only {speedup_exec:.2f}x the "
        f"tuple-at-a-time path (need >= {MIN_SPEEDUP}x)"
    )
    assert prepared_ratio <= PREPARED_MAX_RATIO, (
        f"warm prepared e2e is {warm_prepared_ms:.1f} ms, "
        f"{prepared_ratio:.2f}x exec-only ({exec_only_ms:.1f} ms) — the "
        f"plan cache must hold it within {PREPARED_MAX_RATIO}x"
    )
