"""Figure 2 — guard-generation cost vs. number of policies.

Paper: generation time grows roughly linearly with the querier's
policy count; ~150 ms at 160 policies on their hardware.  We sweep
synthetic per-querier policy sets and time ``build_guarded_expression``
end-to-end (candidate generation + Algorithm 1).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.results import format_table, write_result
from repro.bench.scenarios import bench_tippers, policies_for_querier
from repro.core.cost_model import SieveCostModel
from repro.core.generation import build_guarded_expression
from repro.datasets.tippers import WIFI_TABLE

POLICY_COUNTS = [40, 80, 160, 320, 640]


def _generation_ms(world, count: int, samples: int = 2) -> float:
    stats = world.db.table_stats(WIFI_TABLE)
    indexed = frozenset(world.db.catalog.indexed_columns(WIFI_TABLE))
    cm = SieveCostModel()
    total = 0.0
    for s in range(samples):
        policies = policies_for_querier(
            world.dataset, f"bench-querier-{s}", count, seed=100 + s
        )
        start = time.perf_counter()
        ge = build_guarded_expression(
            policies, stats, indexed, cm,
            querier=f"bench-querier-{s}", purpose="analytics", table=WIFI_TABLE,
        )
        total += time.perf_counter() - start
        ge.check_partition_invariants()
    return total / samples * 1000.0


@pytest.mark.parametrize("count", [80, 320])
def test_guard_generation_point(benchmark, campus_mysql, count):
    """pytest-benchmark point measurements at two corpus sizes."""
    stats = campus_mysql.db.table_stats(WIFI_TABLE)
    indexed = frozenset(campus_mysql.db.catalog.indexed_columns(WIFI_TABLE))
    policies = policies_for_querier(campus_mysql.dataset, "bq", count)

    def build():
        return build_guarded_expression(
            policies, stats, indexed, SieveCostModel(),
            querier="bq", purpose="analytics", table=WIFI_TABLE,
        )

    ge = benchmark.pedantic(build, rounds=3, iterations=1)
    assert ge.policy_count == count


def test_fig2_guard_generation_sweep(benchmark, campus_mysql):
    """The full Figure 2 sweep; asserts near-linear growth."""
    results: list[tuple[int, float]] = []

    def sweep():
        results.clear()
        for count in POLICY_COUNTS:
            results.append((count, _generation_ms(campus_mysql, count)))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [(c, ms, ms / c) for c, ms in results]
    table = format_table(["policies", "generation ms", "ms per policy"], rows)
    write_result(
        "fig2_guard_generation",
        "Figure 2 — guarded expression generation cost",
        table,
        data=results,
        notes=(
            "Paper shape: cost grows ~linearly with the number of policies "
            "(~150 ms @ 160 policies on the paper's Xeon + MySQL setup). "
            "Absolute values differ (pure-Python engine)."
        ),
    )

    # Shape assertion: super-quadratic blowup would break linearity.
    (c0, t0), (cn, tn) = results[0], results[-1]
    growth = tn / max(t0, 1e-9)
    assert growth < (cn / c0) ** 2, "generation cost grew super-quadratically"
