"""Cluster bench — scatter-gather serving vs one server.

Not a paper figure: this measures the sharded cluster tier
(``repro/cluster``) layered on the reproduction.  The workload is the
Fig. 6 / Experiment 5 serving shape — Mall shops as queriers, each
holding a few hundred *direct* policies over ``WiFi_Connectivity``
(the querier-partitioned corpus the cluster is designed for; the
group-heavy consumer corpus fans out by design and is covered by the
differential suite).

What is asserted, all deterministic:

* **row identity** — a sample of (querier, query) pairs answers
  identically through the N=4 cluster and a single
  :class:`~repro.service.SieveServer` over the whole corpus (the full
  matrix lives in ``tests/test_cluster_differential.py``);
* **~1/N policy-filter work per shard** — the largest shard partition
  holds at most half the corpus at N=4 (>= 2x per-shard reduction in
  PQM/snapshot work; measured value is ~4x);
* **rebalance locality** — adding a 5th shard moves a bounded
  fraction of the queriers and invalidates *only* the migrated
  queriers' warm guard entries; every unmigrated entry survives.

Closed-loop throughput (cluster vs single server on the bundled
engine) is reported for trajectory tracking but not asserted: shards
here live in one Python process, so the GIL bounds parallel speedup —
the cluster's scaling win is the per-shard *work* reduction above,
plus per-shard engines when deployed across processes.

Results go to ``benchmarks/results/cluster_scatter_gather.*`` and the
repo-root ``BENCH_cluster.json`` (same schema family as
``BENCH_engine.json``), emitted by ``make bench-cluster`` / CI's
cluster-smoke job.  ``SIEVE_BENCH_CLUSTER_DURATION`` (seconds, default
1.5) stretches each closed-loop window.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.bench.loadgen import ClientScript, run_closed_loop
from repro.bench.results import format_table, write_result
from repro.bench.scenarios import mall_policies_for_shop
from repro.cluster import SieveCluster
from repro.core import Sieve
from repro.datasets.mall import MallConfig, generate_mall
from repro.policy.store import PolicyStore
from repro.service import SieveServer

N_SHARDS = 4
#: All 35 shops of the paper's Mall act as queriers — enough routable
#: keys for the ring to spread the corpus (the ~1/N share assertion is
#: a statement about many-querier corpora, not about 4 keys).
N_SHOPS = 35
POLICIES_PER_SHOP = 80
#: Extra virtual nodes tighten the shard spread at this querier count.
VNODES = 256
MIN_REDUCTION = 2.0
DURATION_S = float(os.environ.get("SIEVE_BENCH_CLUSTER_DURATION", "1.5"))
SQLS = [
    "SELECT COUNT(*) FROM WiFi_Connectivity",
    "SELECT owner, COUNT(*) FROM WiFi_Connectivity GROUP BY owner",
    "SELECT COUNT(*) FROM WiFi_Connectivity WHERE ts_time BETWEEN 600 AND 1200",
]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def build_world():
    mall = generate_mall(
        MallConfig(seed=13, n_customers=700, days=20, personality="postgres")
    )
    store = PolicyStore(mall.db, mall.groups)
    shops = mall.shops[:N_SHOPS]
    for shop in shops:
        store.insert_many(
            mall_policies_for_shop(mall, shop, POLICIES_PER_SHOP, seed=900 + shop)
        )
    queriers = [mall.shop_querier(shop) for shop in shops]
    return mall, store, queriers


def _scripts(queriers: list) -> list[ClientScript]:
    return [ClientScript(querier=q, purpose="any", sqls=SQLS) for q in queriers]


def test_cluster_scatter_gather(benchmark):
    mall, store, queriers = build_world()
    total_policies = len(store)
    single_sieve = Sieve(mall.db, store)
    cluster = SieveCluster.replicated(
        mall.db, store, n_shards=N_SHARDS, workers_per_shard=2, vnodes=VNODES
    )
    results: dict = {}

    def run():
        results.clear()
        with SieveServer(single_sieve, workers=2) as single, cluster:
            # --- row identity on the query matrix (deterministic) ----
            checked = 0
            for querier in queriers:
                for sql in SQLS:
                    single_rows = sorted(single.execute(sql, querier, "any", timeout=120).rows)
                    cluster_rows = sorted(cluster.execute(sql, querier, "any", timeout=120).rows)
                    assert cluster_rows == single_rows, (querier, sql)
                    checked += 1
            results["rows_checked"] = checked

            # --- per-shard policy-filter work (deterministic) --------
            sizes = cluster.partition_sizes()
            results["partition_policies"] = sizes
            results["reduction_factor"] = total_policies / max(sizes.values())

            # --- closed-loop throughput (informational) --------------
            single_report = run_closed_loop(
                single, _scripts(queriers), duration_s=DURATION_S
            )
            cluster_report = run_closed_loop(
                cluster, _scripts(queriers), duration_s=DURATION_S
            )
            results["single"] = single_report
            results["cluster"] = cluster_report

            # --- rebalance locality (deterministic) ------------------
            for querier in queriers:  # ensure every querier is warm
                cluster.execute(SQLS[0], querier, "any", timeout=120)
            warm_before = {
                name: set(cluster.shard(name).sieve.guard_cache.keys())
                for name in cluster.shard_names
            }
            report = cluster.add_shard(cluster.replica_spec())
            moved = report.moved_queriers
            preserved = evicted_ok = evicted_bad = 0
            for name, keys in warm_before.items():
                surviving = set(cluster.shard(name).sieve.guard_cache.keys())
                for key in keys:
                    if key in surviving:
                        preserved += 1
                        assert key[0] not in moved, (
                            f"migrated querier {key[0]!r} kept stale guards"
                        )
                    elif key[0] in moved:
                        evicted_ok += 1
                    else:
                        evicted_bad += 1
            assert evicted_bad == 0, f"{evicted_bad} unmigrated entries evicted"
            results["rebalance"] = {
                "drained": report.drained,
                "moved_queriers": len(moved),
                "universe": report.universe,
                "moved_fraction": report.moved_fraction,
                "invalidated_entries": report.invalidated_entries,
                "warm_entries_preserved": preserved,
                "warm_entries_evicted_migrated": evicted_ok,
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    sizes = results["partition_policies"]
    reduction = results["reduction_factor"]
    single_report = results["single"]
    cluster_report = results["cluster"]
    rebalance = results["rebalance"]

    rows = [
        ["single", 1, total_policies, f"{single_report.throughput_qps:,.0f}",
         f"{single_report.latency.p50_ms:,.2f}", f"{single_report.latency.p95_ms:,.2f}",
         single_report.failed],
        ["cluster", N_SHARDS, max(sizes.values()), f"{cluster_report.throughput_qps:,.0f}",
         f"{cluster_report.latency.p50_ms:,.2f}", f"{cluster_report.latency.p95_ms:,.2f}",
         cluster_report.failed],
    ]
    table = format_table(
        ["tier", "shards", "max policies/shard", "qps", "p50 ms", "p95 ms", "failed"],
        rows,
    )
    data = {
        "workload": "fig6-mall-sharded-serving",
        "shards": N_SHARDS,
        "shops": N_SHOPS,
        "policies_total": total_policies,
        "partition_policies": sizes,
        "reduction_factor": round(reduction, 2),
        "min_reduction_asserted": MIN_REDUCTION,
        "rows_checked": results["rows_checked"],
        "single_qps": single_report.throughput_qps,
        "cluster_qps": cluster_report.throughput_qps,
        "single_p95_ms": single_report.latency.p95_ms,
        "cluster_p95_ms": cluster_report.latency.p95_ms,
        "rebalance": rebalance,
    }
    write_result(
        "cluster_scatter_gather",
        "Cluster tier — N=4 scatter-gather vs one server (Fig. 6 workload)",
        table,
        data=data,
        notes=(
            f"Row-set identity checked on {results['rows_checked']} "
            f"(querier, query) pairs; per-shard policy partitions hold "
            f"{min(sizes.values())}-{max(sizes.values())} of {total_policies} "
            f"policies (>= {MIN_REDUCTION}x per-shard policy-filter reduction "
            "asserted).  Rebalance to N=5 must move a bounded querier "
            "fraction and invalidate only migrated queriers' warm guards.  "
            "Throughput is informational: shards share one process/GIL here, "
            "so the cluster's win is per-shard corpus work, not single-host "
            "qps."
        ),
    )
    (REPO_ROOT / "BENCH_cluster.json").write_text(json.dumps(data, indent=2) + "\n")

    assert single_report.failed == 0 and cluster_report.failed == 0
    assert results["rows_checked"] == len(queriers) * len(SQLS)
    assert reduction >= MIN_REDUCTION, (
        f"largest shard partition holds {max(sizes.values())} of "
        f"{total_policies} policies — only {reduction:.2f}x per-shard "
        f"policy-filter reduction (need >= {MIN_REDUCTION}x at N={N_SHARDS})"
    )
    assert rebalance["drained"]
    assert 0 < rebalance["moved_fraction"] <= 0.5
    assert rebalance["warm_entries_preserved"] > 0
