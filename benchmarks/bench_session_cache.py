"""Session guard cache — cold vs warm latency on the Fig. 6 workload.

Not a paper figure: this measures the middleware amortization layer
added on top (``repro/core/cache.py``).  Workload and scale mirror
Experiment 5 (Figure 6): Mall dataset on the PostgreSQL personality,
shops as queriers, cumulative policy sets of 100 → 1,200.

Per policy-set size we report:

* **cold ms** — the first query through a fresh middleware: pays the
  PQM corpus filter plus guard generation and persistence;
* **warm ms** — the per-query average of a repeated-querier batch via
  ``session.execute_many``: parse + strategy + rewrite + execute only,
  guard state served from the epoch-validated LRU;
* **hit %** — guard-cache hit rate over the batch (deterministic,
  from the ``guard_cache_hits``/``guard_cache_misses`` counters).

Expected shape: warm ≥ 2× faster than cold at every size, and the
cold/warm gap *grows* with the policy count (guard generation is the
corpus-sized work the cache amortizes away).
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.bench.scenarios import mall_policies_for_shop
from repro.core import Sieve
from repro.policy.store import PolicyStore

POLICY_SIZES = [100, 300, 600, 1200]
N_SHOPS = 2  # paper uses 5; scaled for bench time (as in bench_fig6)
WARM_BATCH = 8
SQL = "SELECT * FROM WiFi_Connectivity"


def test_session_cache_cold_vs_warm(benchmark, mall_postgres):
    mall = mall_postgres
    results: list[dict] = []

    def run():
        results.clear()
        for size in POLICY_SIZES:
            cold_ms = warm_ms = cold_cost = warm_cost = 0.0
            hits = lookups = 0
            for shop in mall.shops[:N_SHOPS]:
                querier = mall.shop_querier(shop)
                store = PolicyStore(mall.db, mall.groups)
                inserted = [
                    store.insert(p)
                    for p in mall_policies_for_shop(mall, shop, size, seed=900 + shop)
                ]
                sieve = Sieve(mall.db, store)
                m = measure_engine(
                    "cold", mall.db,
                    lambda: sieve.execute(SQL, querier, "any"),
                    repeats=1,
                )
                cold_ms += m.wall_ms
                cold_cost += m.cost_units
                session = sieve.session(querier, "any")
                m = measure_engine(
                    "warm", mall.db,
                    lambda: session.execute_many([SQL] * WARM_BATCH),
                    repeats=1,
                )
                warm_ms += m.wall_ms / WARM_BATCH
                warm_cost += m.cost_units / WARM_BATCH
                hits += m.counters.get("guard_cache_hits", 0)
                lookups += m.counters.get("guard_cache_hits", 0)
                lookups += m.counters.get("guard_cache_misses", 0)
                for p in inserted:
                    store.delete(p.id)
            results.append({
                "policies": size,
                "cold_ms": cold_ms / N_SHOPS,
                "warm_ms": warm_ms / N_SHOPS,
                "cold_cost": cold_cost / N_SHOPS,
                "warm_cost": warm_cost / N_SHOPS,
                "speedup": (cold_ms / N_SHOPS) / max(1e-9, warm_ms / N_SHOPS),
                "hit_rate": hits / max(1, lookups),
            })
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [r["policies"], f"{r['cold_ms']:,.1f}", f"{r['warm_ms']:,.1f}",
         f"{r['speedup']:.1f}x", f"{100 * r['hit_rate']:.0f}%"]
        for r in results
    ]
    table = format_table(
        ["policies", "cold ms", "warm ms (session)", "speedup", "cache hit rate"],
        rows,
    )
    write_result(
        "session_cache",
        "Session guard cache — cold vs warm on the Fig. 6 workload",
        table,
        data=results,
        notes=(
            "cold = first query through a fresh middleware (corpus filter + "
            "guard generation); warm = per-query average of a repeated-"
            f"querier batch of {WARM_BATCH} via session.execute_many. "
            "Check that warm is >= 2x faster at every size and that the "
            "speedup grows with the policy count."
        ),
    )

    # Deterministic gates first: execution work must be identical (the
    # cache amortizes *middleware* CPU — guard generation and the PQM
    # filter — which never touches the engine counters), and the batch
    # must actually be served from the cache.
    assert all(r["warm_cost"] == r["cold_cost"] for r in results), (
        "cached guard state must not change what the engine executes"
    )
    assert all(r["hit_rate"] >= 0.8 for r in results), (
        "repeated-querier batches must be served from the guard cache"
    )
    # The speedup gates are wall-clock by necessity — the saved work is
    # pure CPU outside the engine, so no counter can witness it.  The
    # observed margins (~9x at 100 policies, ~43x at 1,200, vs the 2x
    # bar) leave ample headroom for noisy machines.
    speedups = [r["speedup"] for r in results]
    assert all(s >= 2.0 for s in speedups), (
        f"warm session queries must be >= 2x faster than cold: {speedups}"
    )
    assert speedups[-1] > speedups[0], (
        "amortized work grows with the corpus, so the cold/warm gap must too"
    )
