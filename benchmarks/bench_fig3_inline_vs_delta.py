"""Figure 3 — inlining vs. the Δ operator (paper Section 5.4).

Paper: as the partition of a single guard grows, inlined evaluation
cost grows linearly (α·|P_G|·ce per tuple) while Δ pays a constant UDF
invocation plus a near-constant owner-filtered evaluation; the curves
cross at |P_G| ≈ 120.

We build single-guard expressions of increasing partition size over
one heavily-observed owner and compare per-tuple evaluation cost both
ways, in deterministic cost units (wall-clock shown too); then check
the measured crossover against ``SieveCostModel.delta_crossover``.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.core.cost_model import SieveCostModel
from repro.core.middleware import Sieve
from repro.core.strategy import Strategy, StrategyDecision
from repro.datasets.tippers import WIFI_TABLE
from repro.policy.model import ObjectCondition, Policy
from repro.policy.store import PolicyStore

PARTITION_SIZES = [5, 20, 60, 120, 240, 480]


def _partition_policies(
    shared_ap: int, owners: list[int], size: int, querier: str
) -> list[Policy]:
    """`size` policies sharing one wifiAP condition (the guard) across
    ~size/3 owners — the paper's classroom scenario: one guard, a large
    partition, few policies per owner.  Inlining checks the whole
    disjunction per tuple; Δ retrieves only the tuple owner's few."""
    pool = owners[: max(1, size // 3)]
    out = []
    for i in range(size):
        start = (i * 9) % 1380
        out.append(
            Policy(
                owner=pool[i % len(pool)], querier=querier, purpose="any",
                table=WIFI_TABLE,
                object_conditions=(
                    ObjectCondition("owner", "=", pool[i % len(pool)]),
                    ObjectCondition("wifiAP", "=", shared_ap),
                    ObjectCondition("ts_time", ">=", start, "<=", start + 4),
                ),
            )
        )
    return out


def _forced_linear(delta_on: bool):
    """A strategy stub holding the plan fixed (LinearScan) so the sweep
    isolates inline-vs-Δ evaluation, as the paper's Figure 3 does."""

    def fake(db, table_name, expression, query_conjuncts, cost_model,
             personality=None):
        guards = (
            frozenset(range(len(expression.guards))) if delta_on else frozenset()
        )
        return StrategyDecision(strategy=Strategy.LINEAR_SCAN, delta_guards=guards)

    return fake


def test_fig3_inline_vs_delta(benchmark, campus_mysql, monkeypatch):
    import repro.core.middleware as middleware_module
    from repro.core.candidate_gen import condition_cardinality
    from repro.core.guards import Guard, GuardedExpression

    world = campus_mysql
    ap_counts = Counter(row[1] for _, row in world.db.catalog.table(WIFI_TABLE).scan())
    shared_ap = ap_counts.most_common(1)[0][0]
    owner_counts = Counter(row[2] for _, row in world.db.catalog.table(WIFI_TABLE).scan())
    owners = [o for o, _ in owner_counts.most_common()]
    stats = world.db.table_stats(WIFI_TABLE)
    sql = f"SELECT * FROM {WIFI_TABLE}"
    results: list[tuple[int, float, float, float, float]] = []

    def run():
        results.clear()
        for size in PARTITION_SIZES:
            querier = f"f3-{size}"
            store = PolicyStore(world.db, world.dataset.groups)
            policies = [
                store.insert(p)
                for p in _partition_policies(shared_ap, owners, size, querier)
            ]
            sieve = Sieve(world.db, store)
            # One hand-built guard holding the whole partition, so the
            # sweep varies |P_G| only (the paper's single-guard setup).
            guard_condition = policies[0].object_conditions[1]  # wifiAP = shared
            guard = Guard(
                guard_condition, list(policies),
                condition_cardinality(guard_condition, stats),
            )
            expression = GuardedExpression(
                querier=querier, purpose="x", table=WIFI_TABLE,
                guards=[guard], policy_count=len(policies),
            )
            sieve.guard_store.get_or_build(
                querier, "x", WIFI_TABLE, lambda: expression
            )
            inserted = policies

            monkeypatch.setattr(
                middleware_module, "choose_strategy", _forced_linear(delta_on=False)
            )
            inline = measure_engine(
                "inline", world.db, lambda: sieve.execute(sql, querier, "x"), repeats=2
            )
            monkeypatch.setattr(
                middleware_module, "choose_strategy", _forced_linear(delta_on=True)
            )
            delta = measure_engine(
                "delta", world.db, lambda: sieve.execute(sql, querier, "x"), repeats=2
            )
            results.append(
                (size, inline.wall_ms, inline.cost_units, delta.wall_ms, delta.cost_units)
            )
            for p in inserted:
                store.delete(p.id)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["|P_G|", "inline ms", "inline cost", "Δ ms", "Δ cost"],
        results,
    )
    model_crossover = SieveCostModel().delta_crossover(relevant_policies=2.0)
    write_result(
        "fig3_inline_vs_delta",
        "Figure 3 — inlining vs Δ operator by partition size",
        table,
        data=results,
        notes=(
            f"Paper crossover: |P_G| ≈ 120. Calibrated cost-model crossover "
            f"here: {model_crossover}. Inline cost must grow with partition "
            f"size while Δ stays near-flat."
        ),
    )

    # Shape assertions on deterministic units:
    inline_costs = [r[2] for r in results]
    delta_costs = [r[4] for r in results]
    assert inline_costs[-1] > inline_costs[0] * 2, "inline cost should grow with |P_G|"
    assert max(delta_costs) < min(delta_costs) * 1.3, "Δ cost should stay near-flat"
    assert delta_costs[-1] < inline_costs[-1], "Δ must win at the largest partition"
    assert 40 <= model_crossover <= 320, "calibrated crossover wildly off the paper's 120"
