"""Figure 4 — IndexQuery vs IndexGuards by query cardinality.

Paper: with guard cardinality held in three bands, index scans driven
by the *query* predicate win at low query cardinality; past ≈0.07 of
the table, scanning via the *guards'* indexes wins.

We force each strategy through the rewriter and measure evaluation
cost as the query predicate widens, then locate the crossover.
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.bench.scenarios import policies_for_querier
from repro.core.cost_model import SieveCostModel
from repro.core.middleware import Sieve
from repro.core.strategy import Strategy
from repro.datasets.tippers import WIFI_TABLE
from repro.policy.store import PolicyStore

# Query ts_time windows of growing width -> growing query cardinality.
WINDOWS = [5, 20, 60, 160, 400, 900]


def _force_strategy(sieve: Sieve, strategy: Strategy):
    """Monkey-patch the strategy chooser to a fixed answer."""
    import repro.core.middleware as middleware_module
    from repro.core.strategy import StrategyDecision, decide_delta_guards

    def fake_choose(db, table_name, expression, query_conjuncts, cost_model,
                    personality=None):
        column = "ts_time" if strategy is Strategy.INDEX_QUERY else None
        return StrategyDecision(
            strategy=strategy,
            query_index_column=column,
            delta_guards=decide_delta_guards(expression, cost_model),
        )

    return fake_choose


def test_fig4_index_choice(benchmark, campus_mysql, monkeypatch):
    world = campus_mysql
    querier = "f4-querier"
    store = PolicyStore(world.db, world.dataset.groups)
    inserted = [
        store.insert(p)
        for p in policies_for_querier(world.dataset, querier, 150, seed=400)
    ]
    sieve = Sieve(world.db, store)
    table_rows = world.db.table_stats(WIFI_TABLE).row_count
    results: list[list] = []

    import repro.core.middleware as middleware_module

    def run():
        results.clear()
        for width in WINDOWS:
            sql = (
                f"SELECT * FROM {WIFI_TABLE} "
                f"WHERE ts_time BETWEEN 500 AND {500 + width}"
            )
            per_strategy = {}
            for strategy in (Strategy.INDEX_QUERY, Strategy.INDEX_GUARDS):
                monkeypatch.setattr(
                    middleware_module, "choose_strategy", _force_strategy(sieve, strategy)
                )
                measured = measure_engine(
                    strategy.value, world.db,
                    lambda: sieve.execute(sql, querier, "analytics"),
                    repeats=2,
                )
                per_strategy[strategy] = measured
            count = len(world.db.execute(sql))
            results.append([
                f"{count / table_rows:.3f}",
                per_strategy[Strategy.INDEX_QUERY].cost_units,
                per_strategy[Strategy.INDEX_GUARDS].cost_units,
                per_strategy[Strategy.INDEX_QUERY].wall_ms,
                per_strategy[Strategy.INDEX_GUARDS].wall_ms,
            ])
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    for p in inserted:
        store.delete(p.id)

    table = format_table(
        ["query cardinality", "IndexQuery cost", "IndexGuards cost",
         "IndexQuery ms", "IndexGuards ms"],
        results,
    )
    # Locate crossover: first cardinality where guards beat the query index.
    crossover = next(
        (row[0] for row in results if row[2] < row[1]), "none observed"
    )
    write_result(
        "fig4_index_choice",
        "Figure 4 — IndexQuery vs IndexGuards by query cardinality",
        table,
        data=results,
        notes=(
            f"Paper: IndexQuery wins at low query cardinality; IndexGuards "
            f"past ≈0.07. Observed crossover here: {crossover}."
        ),
    )

    # Shape: IndexQuery best in the narrowest window, IndexGuards best in
    # the widest one.
    assert results[0][1] <= results[0][2], "IndexQuery must win when the query is narrow"
    assert results[-1][2] <= results[-1][1], "IndexGuards must win when the query is wide"
