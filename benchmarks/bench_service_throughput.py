"""Serving-tier throughput: queries/sec vs worker count and querier count.

Not a paper figure: this measures the concurrent serving tier
(``repro/service``) added on top of the reproduction.  Workload
mirrors Experiment 5 (Figure 6): the Mall dataset with shops as
queriers, each holding a few hundred policies over
``WiFi_Connectivity``; a closed-loop load generator
(:mod:`repro.bench.loadgen`) drives a :class:`~repro.service.SieveServer`
and reports aggregate queries/sec plus client-observed p50/p95/p99
latency.

Two engines, same middleware:

* **sqlite backend** — rewrites execute on real SQLite over
  per-thread connections.  SQLite releases the GIL while stepping, so
  with the rewrite cache keeping warm-path Python under ~3% of request
  time, throughput scales with workers as far as the *cores* allow.
* **bundled engine** — the pure-Python engine holds the GIL for the
  whole execution; workers buy concurrency (latency overlap), never
  parallelism.  Expected shape: flat.  This is the control that shows
  the scaling above comes from the engine, not the scheduler.

The scaling assertion is therefore machine-aware: on hosts with >= 4
CPUs (e.g. CI runners) SQLite must reach >= 2x aggregate queries/sec
from 1 -> 4 workers; on smaller hosts the assertion degrades to a
no-collapse bound (>= 0.5x), because thread parallelism cannot beat
the core count.  Failure counts must be zero everywhere, always.

``SIEVE_BENCH_SERVICE_DURATION`` (seconds, default 2.0) stretches the
measured window, e.g. for quieter percentiles on a loaded machine.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from functools import lru_cache

from repro.backend import SqliteBackend
from repro.bench.loadgen import ClientScript, run_closed_loop
from repro.bench.results import format_table, write_result
from repro.bench.scenarios import mall_policies_for_shop
from repro.core import Sieve
from repro.datasets.mall import MallConfig, generate_mall
from repro.policy.store import PolicyStore
from repro.service import SieveServer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

WORKER_SWEEP = [1, 2, 4]
CLIENT_SWEEP = [2, 6, 12]
N_SHOPS = 6
DURATION_S = float(os.environ.get("SIEVE_BENCH_SERVICE_DURATION", "2.0"))
#: Queries cycled by every client: COUNT-style aggregates so the work
#: is enforcement + scan, not Python-side row marshalling.
SQLS = [
    "SELECT COUNT(*) FROM WiFi_Connectivity",
    "SELECT owner, COUNT(*) FROM WiFi_Connectivity GROUP BY owner",
    "SELECT COUNT(*) FROM WiFi_Connectivity WHERE ts_time BETWEEN 600 AND 1200",
]


def _warm(sieve: Sieve, mall, shops) -> None:
    """Pay guard generation + first rewrite offline, as the paper's
    warm-performance methodology does (the bench measures serving, not
    the one-time cold path the session-cache bench already covers)."""
    for shop in shops:
        querier = mall.shop_querier(shop)
        for sql in SQLS:
            sieve.execute(sql, querier, "any")


@lru_cache(maxsize=1)
def sqlite_world():
    """Big Mall (≈150k events) + 400 policies/shop on a file-backed
    SQLite backend — sized so warm per-request time is dominated by
    engine execution (the parallelizable part)."""
    mall = generate_mall(
        MallConfig(seed=13, n_customers=1500, days=60, personality="postgres")
    )
    store = PolicyStore(mall.db, mall.groups)
    shops = mall.shops[:N_SHOPS]
    for shop in shops:
        store.insert_many(mall_policies_for_shop(mall, shop, 400))
    path = os.path.join(tempfile.mkdtemp(prefix="sieve-bench-"), "mall.db")
    backend = SqliteBackend(path).ship(mall.db)
    sieve = Sieve(mall.db, store, backend=backend)
    sieve.enable_rewrite_cache()
    _warm(sieve, mall, shops)
    return mall, sieve, shops


@lru_cache(maxsize=1)
def bundled_world():
    """Fig. 6-scale Mall (≈37k events) + 150 policies/shop on the
    bundled engine — the GIL control."""
    mall = generate_mall(
        MallConfig(seed=13, n_customers=900, days=25, personality="postgres")
    )
    store = PolicyStore(mall.db, mall.groups)
    shops = mall.shops[:N_SHOPS]
    for shop in shops:
        store.insert_many(mall_policies_for_shop(mall, shop, 150))
    sieve = Sieve(mall.db, store)
    sieve.enable_rewrite_cache()
    _warm(sieve, mall, shops)
    return mall, sieve, shops


def _scripts(mall, shops, n_clients: int) -> list[ClientScript]:
    return [
        ClientScript(
            querier=mall.shop_querier(shops[i % len(shops)]),
            purpose="any",
            sqls=SQLS,
        )
        for i in range(n_clients)
    ]


def _run_config(sieve: Sieve, scripts, workers: int):
    server = SieveServer(sieve, workers=workers, max_pending=4096)
    with server:
        report = run_closed_loop(server, scripts, duration_s=DURATION_S)
    return report, server.stats()


def test_service_throughput_scaling(benchmark):
    results: list[dict] = []

    def run():
        results.clear()
        for engine, world in (("sqlite", sqlite_world), ("bundled", bundled_world)):
            mall, sieve, shops = world()
            scripts = _scripts(mall, shops, N_SHOPS)
            for workers in WORKER_SWEEP:
                report, stats = _run_config(sieve, scripts, workers)
                results.append(
                    {
                        "engine": engine,
                        "workers": workers,
                        "clients": report.clients,
                        "qps": report.throughput_qps,
                        "p50_ms": report.latency.p50_ms,
                        "p95_ms": report.latency.p95_ms,
                        "p99_ms": report.latency.p99_ms,
                        "rejected": report.rejected,
                        "failed": report.failed,
                        "completed": report.completed,
                        "batches": stats.batches,
                    }
                )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            r["engine"], r["workers"], r["clients"], f"{r['qps']:,.0f}",
            f"{r['p50_ms']:,.2f}", f"{r['p95_ms']:,.2f}", f"{r['p99_ms']:,.2f}",
            r["rejected"], r["failed"],
        ]
        for r in results
    ]
    table = format_table(
        ["engine", "workers", "clients", "qps", "p50 ms", "p95 ms", "p99 ms",
         "rejected", "failed"],
        rows,
    )
    cpus = os.cpu_count() or 1
    write_result(
        "service_throughput",
        "Serving tier — aggregate throughput vs worker count (Fig. 6 workload)",
        table,
        data=results,
        notes=(
            f"Closed loop, {N_SHOPS} clients (one per shop querier), "
            f"{DURATION_S:.1f}s per configuration, host cpus={cpus}. "
            "Expected shape: on >= 4 cores the sqlite backend scales >= 2x "
            "from 1 -> 4 workers (per-thread connections release the GIL "
            "while stepping); the bundled pure-Python engine stays flat at "
            "any core count — workers overlap latency, the GIL serializes "
            "execution.  Failed requests must be 0 in every row."
        ),
    )

    by = {(r["engine"], r["workers"]): r for r in results}
    sq1, sq4 = by[("sqlite", 1)]["qps"], by[("sqlite", 4)]["qps"]
    b1, b4 = by[("bundled", 1)]["qps"], by[("bundled", 4)]["qps"]
    # Repo-root serving-tier snapshot (same schema family as
    # BENCH_engine.json / BENCH_cluster.json) so the perf trajectory
    # tracks the serving tier at the top level, not just the engine.
    payload = {
        "workload": "fig6-mall-serving",
        "duration_s": DURATION_S,
        "cpus": cpus,
        "configs": results,
        "scaling_1to4_sqlite": round(sq4 / sq1, 2) if sq1 else 0.0,
        "scaling_1to4_bundled": round(b4 / b1, 2) if b1 else 0.0,
        "min_sqlite_scaling_asserted_on_4cpu_hosts": 2.0,
    }
    (REPO_ROOT / "BENCH_service.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert all(r["failed"] == 0 for r in results), f"failed requests: {results}"
    assert all(r["completed"] > 0 for r in results)
    if cpus >= 4:
        assert sq4 >= 2.0 * sq1, (
            f"sqlite backend must scale >= 2x from 1 -> 4 workers on a "
            f"{cpus}-cpu host: {sq1:.0f} -> {sq4:.0f} qps"
        )
    else:
        # Physics bound: threads cannot outrun the cores.  Guard only
        # against the scheduler *collapsing* under more workers.
        assert sq4 >= 0.5 * sq1, (
            f"4-worker sqlite throughput collapsed on a {cpus}-cpu host: "
            f"{sq1:.0f} -> {sq4:.0f} qps"
        )
    assert b4 >= 0.5 * b1, (
        f"bundled-engine throughput collapsed under workers: {b1:.0f} -> {b4:.0f}"
    )


def test_service_latency_vs_queriers(benchmark):
    """Latency under growing client counts at a fixed 4-worker pool.

    Closed-loop queueing: doubling the clients past the service
    capacity must show up as queue-wait (p95 grows), never as failures
    — and when several clients share a querier, the scheduler batches
    them (mean batch size > 1)."""
    results: list[dict] = []

    def run():
        results.clear()
        mall, sieve, shops = sqlite_world()
        for n_clients in CLIENT_SWEEP:
            report, stats = _run_config(sieve, _scripts(mall, shops, n_clients), 4)
            results.append(
                {
                    "clients": n_clients,
                    "qps": report.throughput_qps,
                    "p50_ms": report.latency.p50_ms,
                    "p95_ms": report.latency.p95_ms,
                    "p99_ms": report.latency.p99_ms,
                    "mean_batch": stats.mean_batch_size,
                    "failed": report.failed,
                }
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [r["clients"], f"{r['qps']:,.0f}", f"{r['p50_ms']:,.2f}",
         f"{r['p95_ms']:,.2f}", f"{r['p99_ms']:,.2f}", f"{r['mean_batch']:.2f}",
         r["failed"]]
        for r in results
    ]
    write_result(
        "service_latency_queriers",
        "Serving tier — latency vs concurrent queriers (4 workers)",
        format_table(
            ["clients", "qps", "p50 ms", "p95 ms", "p99 ms", "mean batch", "failed"],
            rows,
        ),
        data=results,
        notes=(
            "Closed loop on the sqlite backend.  More clients than service "
            "slots shows up as queue wait (p95 grows with clients) and, for "
            "clients sharing a querier, as admission batching (mean batch "
            "> 1 at 12 clients over 6 queriers); failures stay 0."
        ),
    )

    assert all(r["failed"] == 0 for r in results)
    assert results[-1]["p95_ms"] >= results[0]["p95_ms"], (
        "queueing must surface as latency when clients exceed capacity"
    )
    assert results[-1]["mean_batch"] > 1.0, (
        "same-querier clients must get batched under load"
    )
