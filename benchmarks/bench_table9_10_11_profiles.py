"""Tables 9-11 — per-profile breakdown of the overall comparison.

The paper repeats Table 8's grid for queriers of each profile:
Faculty (F), Graduate (G), Undergraduate (U), Staff (S).  The shape to
hold: within every profile, SIEVE stays flat across cardinalities and
ahead of the baselines; BaselineP degrades with cardinality.
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.core import BaselineI, BaselineP, BaselineU
from repro.datasets.workload import QueryWorkload, Selectivity

PROFILES = {"F": "faculty", "G": "grad", "U": "undergrad", "S": "staff"}
ENGINES = ("BaselineP", "BaselineI", "BaselineU", "SIEVE")
PURPOSE = "analytics"
TEMPLATE_TABLE = {"Q1": "table9", "Q2": "table10", "Q3": "table11"}


def test_tables_9_10_11_profile_breakdown(benchmark, campus_mysql):
    world = campus_mysql
    wl = QueryWorkload(world.dataset, seed=29)
    baselines = {
        "BaselineP": BaselineP(world.db, world.store),
        "BaselineI": BaselineI(world.db, world.store),
        "BaselineU": BaselineU(world.db, world.store),
    }
    grid: dict[tuple, tuple[float, float]] = {}

    def run():
        grid.clear()
        for template in ("Q1", "Q2", "Q3"):
            for sel in Selectivity:
                query = wl.generate(template, sel, 1)[0]
                for short, profile in PROFILES.items():
                    querier = world.campus.designated_queriers[profile][0]
                    for engine_name in ENGINES:
                        if engine_name == "SIEVE":
                            fn = lambda u=querier: world.sieve.execute(query.sql, u, PURPOSE)
                        else:
                            engine = baselines[engine_name]
                            fn = lambda u=querier, e=engine: e.execute(query.sql, u, PURPOSE)
                        m = measure_engine(engine_name, world.db, fn, repeats=1)
                        grid[(template, short, sel.value, engine_name)] = (
                            m.wall_ms, m.cost_units,
                        )
        return grid

    benchmark.pedantic(run, rounds=1, iterations=1)

    for template in ("Q1", "Q2", "Q3"):
        rows = []
        for short in PROFILES:
            for sel in ("low", "mid", "high"):
                row = [short, sel[0]]
                for engine in ENGINES:
                    ms, cost = grid[(template, short, sel, engine)]
                    row.append(f"{ms:,.1f} / {cost:,.0f}")
                rows.append(row)
        table = format_table(["Pr.", "ρ(Q)", *ENGINES], rows)
        name = TEMPLATE_TABLE[template]
        write_result(
            f"{name}_profiles_{template.lower()}",
            f"Table {name[5:]} — {template} by querier profile (ms / cost units)",
            table,
            data={"|".join(k): v for k, v in grid.items() if k[0] == template},
            notes=(
                "Paper shape: SIEVE leads within every profile; BaselineP "
                "degrades with cardinality for Q1/Q2; BaselineI stays flat."
            ),
        )

    # Shape: SIEVE never loses to the predicate-driven rewrites in any
    # profile cell (cost units). BaselineI comparisons are scale-bound
    # (see Table 8 bench) and not asserted.
    for (template, short, sel, engine), (_ms, cost) in grid.items():
        if engine in ("BaselineP", "BaselineU"):
            sieve_cost = grid[(template, short, sel, "SIEVE")][1]
            assert sieve_cost <= cost * 1.5 + 100, (
                f"{template}/{short}/{sel}: SIEVE {sieve_cost:.0f} vs {engine} {cost:.0f}"
            )
