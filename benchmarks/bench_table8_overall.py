"""Table 8 — overall comparison: BaselineP / BaselineI / BaselineU / SIEVE
across Q1, Q2, Q3 at low/mid/high selectivity (paper Experiment 3).

Paper shapes to reproduce:
* BaselineP and BaselineU degrade sharply with query cardinality
  (they read tuples via the query predicate, then pay per-tuple policy
  work; BaselineU adds a UDF invocation per tuple);
* BaselineI is flat across cardinalities (reads via policy indexes);
* SIEVE is flat *and* the fastest everywhere.

Times are wall-clock ms; shapes are asserted on deterministic cost
units.  The paper's 30 s timeout is represented by the ``+`` suffix
(soft timeout) rather than killed runs.
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.bench.runner import EngineRun, measure_engine
from repro.core import BaselineI, BaselineP, BaselineU
from repro.datasets.workload import QueryWorkload, Selectivity

ENGINES = ("BaselineP", "BaselineI", "BaselineU", "SIEVE")
PURPOSE = "analytics"


def run_grid(world, queriers, per_cell: int = 1, seed: int = 17):
    """The full (template × selectivity × engine) measurement grid."""
    wl = QueryWorkload(world.dataset, seed=seed)
    baselines = {
        "BaselineP": BaselineP(world.db, world.store),
        "BaselineI": BaselineI(world.db, world.store),
        "BaselineU": BaselineU(world.db, world.store),
    }
    grid: dict[tuple[str, str, str], EngineRun] = {}
    for template in ("Q1", "Q2", "Q3"):
        for selectivity in Selectivity:
            queries = wl.generate(template, selectivity, per_cell)
            for engine_name in ENGINES:
                total_ms = total_cost = total_rows = 0.0
                timed_out = False
                for query in queries:
                    for querier in queriers:
                        if engine_name == "SIEVE":
                            fn = lambda q=query, u=querier: world.sieve.execute(
                                q.sql, u, PURPOSE
                            )
                        else:
                            engine = baselines[engine_name]
                            fn = lambda q=query, u=querier, e=engine: e.execute(
                                q.sql, u, PURPOSE
                            )
                        measured = measure_engine(
                            engine_name, world.db, fn, repeats=1,
                            soft_timeout_s=30.0, warmup=True,
                        )
                        total_ms += measured.wall_ms
                        total_cost += measured.cost_units
                        total_rows += measured.rows
                        timed_out |= measured.timed_out
                n = len(queries) * len(queriers)
                grid[(template, selectivity.value, engine_name)] = EngineRun(
                    engine=engine_name,
                    wall_ms=total_ms / n,
                    cost_units=total_cost / n,
                    rows=int(total_rows / n),
                    timed_out=timed_out,
                )
    return grid


def render_grid(grid, metric: str = "wall_ms"):
    rows = []
    for template in ("Q1", "Q2", "Q3"):
        for sel in ("low", "mid", "high"):
            row = [template, sel]
            for engine in ENGINES:
                run = grid[(template, sel, engine)]
                value = getattr(run, metric)
                text = f"{value:,.1f}"
                if run.timed_out:
                    text += "+"
                row.append(text)
            rows.append(row)
    return format_table(["query", "ρ(Q)", *ENGINES], rows)


def test_table8_overall_comparison(benchmark, campus_mysql):
    world = campus_mysql
    queriers = [
        world.campus.designated_queriers["faculty"][0],
        world.campus.designated_queriers["grad"][0],
    ]
    holder = {}

    def run():
        holder["grid"] = run_grid(world, queriers)
        return holder["grid"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    grid = holder["grid"]

    table_ms = render_grid(grid, "wall_ms")
    table_cost = render_grid(grid, "cost_units")
    write_result(
        "table8_overall",
        "Table 8 — overall comparison (Q1/Q2/Q3 × selectivity × engine)",
        table_ms + "\n\n### Deterministic cost units\n\n" + table_cost,
        data={f"{k[0]}-{k[1]}-{k[2]}": vars(v) for k, v in grid.items()},
        notes=(
            "Paper shapes: BaselineP/BaselineU grow with query cardinality "
            "(TO at high), BaselineI flat, SIEVE flat and fastest. The Python "
            "engine's UDF dispatch is much cheaper than a real DBMS's, so "
            "BaselineU's wall-clock penalty shows mainly in cost units "
            "(udf_invocation-weighted), matching the paper's ordering."
        ),
    )

    # --- shape assertions on cost units -----------------------------------
    for template in ("Q1", "Q2", "Q3"):
        p_low = grid[(template, "low", "BaselineP")].cost_units
        p_high = grid[(template, "high", "BaselineP")].cost_units
        assert p_high >= p_low, f"{template}: BaselineP should degrade with cardinality"
        u_low = grid[(template, "low", "BaselineU")].cost_units
        u_high = grid[(template, "high", "BaselineU")].cost_units
        assert u_high >= u_low, f"{template}: BaselineU should degrade with cardinality"
        # BaselineU's per-tuple UDF invocations make it the worst rewrite
        # at high cardinality (paper: TO everywhere at high).
        assert u_high >= p_high, f"{template}: BaselineU should trail BaselineP at high"

    # BaselineI reads via the policy indexes: flat across cardinalities.
    base_i = [
        grid[(t, s, "BaselineI")].cost_units
        for t in ("Q1", "Q2", "Q3")
        for s in ("low", "mid", "high")
    ]
    assert max(base_i) <= min(base_i) * 1.5, "BaselineI should be flat"

    # SIEVE never loses to the predicate-driven rewrites.
    for template in ("Q1", "Q2", "Q3"):
        for sel in ("low", "mid", "high"):
            sieve = grid[(template, sel, "SIEVE")].cost_units
            for other in ("BaselineP", "BaselineU"):
                rival = grid[(template, sel, other)].cost_units
                assert sieve <= rival * 1.25, (
                    f"{template}/{sel}: SIEVE ({sieve:.0f}) should not lose to "
                    f"{other} ({rival:.0f})"
                )
    # At low cardinality SIEVE also beats BaselineI's fixed per-policy
    # scan cost. (At bench scale — a ~100-page table — BaselineI stays
    # competitive at high cardinality, unlike on the paper's 3.9M-row
    # table; see EXPERIMENTS.md.)
    for template in ("Q1", "Q2"):
        sieve = grid[(template, "low", "SIEVE")].cost_units
        rival = grid[(template, "low", "BaselineI")].cost_units
        assert sieve <= rival * 1.25
