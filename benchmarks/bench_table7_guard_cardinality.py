"""Table 7 — evaluation time by number of guards × total cardinality.

Paper's 2×2 grid (ms): low/low 227, low-guards/high-card 537,
high-guards/low-card 469, high/high 1406 — i.e. cost rises with both
the number of guards and the total guard cardinality, with cardinality
hurting more.

We synthesize guarded expressions with controlled (|G|, ρ(G)) by
choosing owner sets of different sizes/frequencies, then evaluate a
SELECT-all query through the rewrite.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.datasets.tippers import WIFI_TABLE
from repro.policy.model import ObjectCondition, Policy
from repro.policy.store import PolicyStore
from repro.core.middleware import Sieve

LOW_GUARDS, HIGH_GUARDS = 8, 48


def _owners_by_frequency(world):
    counts = Counter(
        row[2] for _, row in world.db.catalog.table(WIFI_TABLE).scan()
    )
    ordered = [owner for owner, _ in counts.most_common()]
    return ordered  # most frequent first = high per-guard cardinality


def _policies_for_owners(owners, querier):
    return [
        Policy(
            owner=o, querier=querier, purpose="any", table=WIFI_TABLE,
            object_conditions=(ObjectCondition("owner", "=", o),),
        )
        for o in owners
    ]


def _forced_index_guards(db, table_name, expression, query_conjuncts, cost_model,
                         personality=None):
    """Hold the plan fixed on IndexGuards: Table 7 isolates guard-driven
    evaluation, so the adaptive strategy must not switch plans between
    cells."""
    from repro.core.strategy import Strategy, StrategyDecision

    return StrategyDecision(strategy=Strategy.INDEX_GUARDS)


def test_table7_guards_by_cardinality(benchmark, campus_mysql, monkeypatch):
    import repro.core.middleware as middleware_module

    monkeypatch.setattr(middleware_module, "choose_strategy", _forced_index_guards)
    world = campus_mysql
    ordered = _owners_by_frequency(world)
    heavy = ordered[: HIGH_GUARDS]  # frequent owners -> high cardinality
    light = ordered[-HIGH_GUARDS:]  # rare owners -> low cardinality

    cells = {
        ("low", "low"): light[:LOW_GUARDS],
        ("low", "high"): heavy[:LOW_GUARDS],
        ("high", "low"): light,
        ("high", "high"): heavy,
    }
    sql = f"SELECT * FROM {WIFI_TABLE}"
    measured: dict[tuple[str, str], tuple[float, float]] = {}

    def run():
        measured.clear()
        for (n_guards, card), owners in cells.items():
            querier = f"t7-{n_guards}-{card}"
            store = PolicyStore(world.db, world.dataset.groups)
            inserted = [
                store.insert(p) for p in _policies_for_owners(owners, querier)
            ]
            sieve = Sieve(world.db, store)
            run_result = measure_engine(
                "sieve", world.db,
                lambda: sieve.execute(sql, querier, "x"),
                repeats=2,
            )
            measured[(n_guards, card)] = (run_result.wall_ms, run_result.cost_units)
            for p in inserted:  # leave the shared world clean
                store.delete(p.id)
        return measured

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            "|G| low", measured[("low", "low")][0], measured[("low", "low")][1],
            measured[("low", "high")][0], measured[("low", "high")][1],
        ],
        [
            "|G| high", measured[("high", "low")][0], measured[("high", "low")][1],
            measured[("high", "high")][0], measured[("high", "high")][1],
        ],
    ]
    table = format_table(
        ["", "ρ low (ms)", "ρ low (cost)", "ρ high (ms)", "ρ high (cost)"], rows
    )
    write_result(
        "table7_guard_cardinality",
        "Table 7 — evaluation by #guards × total guard cardinality",
        table,
        data={f"{k[0]}-{k[1]}": v for k, v in measured.items()},
        notes=(
            "Paper (ms): low/low 227, low/high 537, high/low 469, high/high "
            "1406 — cost grows along both axes, fastest along cardinality."
        ),
    )

    # Shape: the high/high cell dominates, low/low is cheapest (cost units).
    cost = {k: v[1] for k, v in measured.items()}
    assert cost[("high", "high")] >= cost[("low", "high")] >= cost[("low", "low")]
    assert cost[("high", "high")] >= cost[("high", "low")] >= cost[("low", "low")]
