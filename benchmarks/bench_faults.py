"""Fault-tolerance bench — what crash safety costs when nothing crashes.

Not a paper figure: this measures the fault tier (``repro/faults``
plus the coordinator's resilient path) layered on the reproduction.
Three claims, the first two about cost and one about correctness:

* **fault-free overhead** — the resilient execute path (deadline
  stamping, retry bookkeeping, a hedge timer that never fires) must
  cost almost nothing when no fault fires: measured as the relative
  latency overhead vs the legacy fail-fast path on an identical query
  stream, target < 5% (asserted loosely in-bench against
  ``MAX_OVERHEAD`` to absorb host noise; the bench gate holds the
  committed baseline to a tight absolute band);
* **recovery time** — after a shard *process* crash, one supervisor
  pass must rebuild it from the authoritative store fast enough that
  the crashed shard's queriers are answering again well under a
  second on any reasonable host (asserted < ``MAX_RECOVERY_S``);
* **zero divergence** — a smoke slice of the chaos differential
  (``SIEVE_BENCH_FAULTS_PLANS`` seeded plans) must answer with zero
  divergences, wiring the fail-closed contract into the bench gate.

Results go to ``benchmarks/results/fault_tolerance.*`` and the
repo-root ``BENCH_faults.json``; ``make bench-faults`` / CI's
chaos-smoke job emit them.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.bench.results import format_table, write_result
from repro.cluster import RetryPolicy, ShardUnavailableError, SieveCluster
from repro.common.errors import DeadlineExceededError
from repro.faults.chaos import (
    MEASURED_QUERIERS,
    N_SHARDS,
    PURPOSE,
    QUERIES,
    build_world,
    run_chaos_plan,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Queries per measurement round (per path, per round).
N_QUERIES = int(os.environ.get("SIEVE_BENCH_FAULTS_QUERIES", "300"))
ROUNDS = 5
#: Chaos plans in the zero-divergence smoke slice.
N_PLANS = int(os.environ.get("SIEVE_BENCH_FAULTS_PLANS", "10"))
#: In-bench noise guard for the < 5% overhead target.
MAX_OVERHEAD = float(os.environ.get("SIEVE_BENCH_FAULTS_MAX_OVERHEAD", "0.10"))
MAX_RECOVERY_S = 2.0
#: Far above fault-free latency, so the hedge timer never fires.
HEDGE_DELAY_S = 0.25


def _stream(cluster, *, deadline_s=None) -> float:
    """Serve the same deterministic query stream; return wall seconds."""
    started = time.perf_counter()
    for i in range(N_QUERIES):
        querier = MEASURED_QUERIERS[i % len(MEASURED_QUERIERS)]
        sql = QUERIES[i % len(QUERIES)]
        cluster.execute(sql, querier, PURPOSE, deadline_s=deadline_s)
    return time.perf_counter() - started


def _make_cluster(db, store, **kwargs):
    return SieveCluster.replicated(
        db, store, n_shards=N_SHARDS, workers_per_shard=2, **kwargs
    )


def test_fault_tolerance(benchmark):
    results: dict = {}

    def run():
        results.clear()
        # --- fault-free overhead: legacy vs resilient path ----------
        db, store, _ = build_world()
        retry = RetryPolicy(
            max_attempts=3, base_backoff_s=0.005, hedge_delay_s=HEDGE_DELAY_S
        )
        legacy_s = []
        resilient_s = []
        with _make_cluster(db, store) as legacy:
            _stream(legacy)  # warm caches once
            with _make_cluster(db, store, retry_policy=retry) as resilient:
                _stream(resilient, deadline_s=30.0)
                # Interleave rounds so drift hits both paths equally.
                for _ in range(ROUNDS):
                    legacy_s.append(_stream(legacy))
                    resilient_s.append(_stream(resilient, deadline_s=30.0))
        overhead = min(resilient_s) / min(legacy_s) - 1.0
        results["overhead_resilient"] = overhead
        results["legacy_qps"] = N_QUERIES / min(legacy_s)
        results["resilient_qps"] = N_QUERIES / min(resilient_s)

        # --- recovery time after a shard process crash --------------
        db, store, _ = build_world()
        with _make_cluster(db, store) as cluster:
            querier = MEASURED_QUERIERS[0]
            expected = cluster.execute(QUERIES[0], querier, PURPOSE).rows
            crashed_at = time.perf_counter()
            cluster.crash_shard(cluster.route(querier))
            recovered_at = None
            while time.perf_counter() - crashed_at < 30.0:
                cluster.supervise()
                try:
                    rows = cluster.execute(
                        QUERIES[0], querier, PURPOSE, deadline_s=1.0
                    ).rows
                except (ShardUnavailableError, DeadlineExceededError):
                    continue
                assert sorted(rows) == sorted(expected)
                recovered_at = time.perf_counter()
                break
            assert recovered_at is not None, "shard never recovered"
            results["recovery_s"] = recovered_at - crashed_at

        # --- chaos smoke: zero divergence across seeded plans -------
        divergences = []
        for seed in range(N_PLANS):
            outcome = run_chaos_plan(seed)
            divergences.extend(outcome.divergences)
        results["chaos_plans"] = N_PLANS
        results["chaos_divergences"] = len(divergences)
        assert not divergences, divergences[:3]
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    overhead = results["overhead_resilient"]
    recovery_s = results["recovery_s"]
    table = format_table(
        ["metric", "value", "bound"],
        [
            ["resilient-path overhead", f"{overhead:+.2%}", f"< {MAX_OVERHEAD:.0%}"],
            ["legacy qps", f"{results['legacy_qps']:,.0f}", "-"],
            ["resilient qps", f"{results['resilient_qps']:,.0f}", "-"],
            ["crash recovery", f"{recovery_s * 1000:,.1f} ms",
             f"< {MAX_RECOVERY_S:.0f} s"],
            ["chaos divergences", results["chaos_divergences"],
             f"0 across {N_PLANS} plans"],
        ],
    )
    data = {
        "workload": "fault-tolerance-tier",
        "overhead_resilient": round(overhead, 4),
        "overhead_target": 0.05,
        "legacy_qps": results["legacy_qps"],
        "resilient_qps": results["resilient_qps"],
        "recovery_s": round(recovery_s, 4),
        "chaos_plans": N_PLANS,
        "chaos_divergences": results["chaos_divergences"],
    }
    write_result(
        "fault_tolerance",
        "Fault tier — resilient-path overhead, crash recovery, chaos smoke",
        table,
        data=data,
        notes=(
            "Overhead compares the same query stream through the legacy "
            "fail-fast execute and the resilient path (deadline + retry "
            "policy + an unfired hedge timer) on a fault-free cluster; "
            "min-of-rounds, interleaved.  Recovery is crash_shard() to the "
            "first correct answer after supervisor rebuild.  The chaos "
            f"smoke replays {N_PLANS} seeded fault plans and requires zero "
            "row-identity divergences (the full sweep lives in "
            "tests/test_chaos_differential.py)."
        ),
    )
    (REPO_ROOT / "BENCH_faults.json").write_text(json.dumps(data, indent=2) + "\n")

    assert overhead < MAX_OVERHEAD
    assert recovery_s < MAX_RECOVERY_S
    assert results["chaos_divergences"] == 0
