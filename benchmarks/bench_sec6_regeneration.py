"""Section 6 ablation — optimal guard-regeneration interval (Eq. 19).

Not a table/figure in the paper, but DESIGN.md calls out the dynamic
model as a design choice worth ablating: we simulate an insert/query
trace under a range of regeneration intervals and verify the analytic
k̃ of Eq. 19 sits at (or near) the simulated cost minimum, and that
regenerating immediately at the k-th insert (Theorem 2) beats delaying.
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.core.cost_model import SieveCostModel
from repro.core.regeneration import (
    optimal_regeneration_interval,
    simulate_total_cost,
)

SCENARIOS = [
    # (guard cardinality rho, queries per insert, label)
    (20.0, 0.5, "sparse queries"),
    (50.0, 2.0, "balanced"),
    (200.0, 8.0, "query heavy"),
]
TOTAL_INSERTS = 600


def test_sec6_regeneration_interval(benchmark):
    cm = SieveCostModel(cg=2000.0)
    all_rows: list[list] = []
    summary: list[dict] = []

    def run():
        all_rows.clear()
        summary.clear()
        for rho, rpq, label in SCENARIOS:
            k_tilde = optimal_regeneration_interval(cm, rho, rpq)
            candidates = sorted(
                {1, max(2, k_tilde // 4), max(3, k_tilde // 2), k_tilde,
                 k_tilde * 2, k_tilde * 4, TOTAL_INSERTS}
            )
            costs = {
                k: simulate_total_cost(cm, rho, TOTAL_INSERTS, rpq, k)
                for k in candidates
            }
            best_k = min(costs, key=costs.get)
            for k, cost in costs.items():
                marker = " <- k~" if k == k_tilde else (" <- best" if k == best_k else "")
                all_rows.append([label, k, f"{cost:,.0f}{marker}"])
            summary.append(
                {"scenario": label, "k_tilde": k_tilde, "best_simulated": best_k,
                 "cost_at_k_tilde": costs[k_tilde], "cost_at_best": costs[best_k]}
            )
        return summary

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(["scenario", "interval k", "total cost"], all_rows)
    write_result(
        "sec6_regeneration",
        "Section 6 ablation — regeneration interval vs total cost",
        table,
        data=summary,
        notes=(
            "Eq. 19's k̃ should sit at or near the simulated minimum in every "
            "scenario; both extremes (regenerate always, never regenerate) "
            "must cost more."
        ),
    )

    for entry in summary:
        assert entry["cost_at_k_tilde"] <= entry["cost_at_best"] * 1.15, entry
