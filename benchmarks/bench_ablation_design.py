"""Ablations of Sieve's design choices (beyond the paper's figures).

DESIGN.md calls out three load-bearing choices; each is ablated here:

1. **Range merging (Theorem 1)** — candidate generation with merging
   disabled vs enabled: merged guards should reduce the number of
   guards (and total evaluation cost) on overlap-heavy corpora.
2. **Utility-greedy selection (Algorithm 1)** — versus the naive
   owner-only guard cover (one guard per owner): the greedy cover
   should never cost more (Eq. 1 objective).
3. **PQM filtering (Section 3.2)** — enforcing with the querier's
   relevant policies vs naively evaluating the full corpus: the point
   of filtering by query metadata.
"""

from __future__ import annotations

from repro.bench.results import format_table, write_result
from repro.bench.runner import measure_engine
from repro.bench.scenarios import bench_tippers, policies_for_querier
from repro.core import BaselineP, Sieve
from repro.core.candidate_gen import CandidateGuard, condition_cardinality
from repro.core.cost_model import SieveCostModel
from repro.core.guard_selection import select_guards, total_cost
from repro.core.generation import build_guarded_expression
from repro.datasets.tippers import WIFI_TABLE
from repro.policy.model import policy_expression
from repro.policy.store import PolicyStore


def test_ablation_range_merging(benchmark, campus_mysql):
    """Theorem 1 merging on vs off."""
    world = campus_mysql
    stats = world.db.table_stats(WIFI_TABLE)
    indexed = frozenset(world.db.catalog.indexed_columns(WIFI_TABLE))
    rows = []

    def run():
        rows.clear()
        for count in (80, 240, 480):
            policies = policies_for_querier(world.dataset, "abl1", count, seed=700)
            merged = build_guarded_expression(
                policies, stats, indexed, SieveCostModel(),
                querier="a", purpose="x", table=WIFI_TABLE,
            )
            # Disable merging by making it never beneficial (threshold > 1).
            no_merge_cm = SieveCostModel(cr=1e-9, ce=1.0)
            unmerged = build_guarded_expression(
                policies, stats, indexed, no_merge_cm,
                querier="a", purpose="x", table=WIFI_TABLE,
            )
            rows.append([
                count,
                len(merged.guards), f"{total_cost(merged.guards):,.0f}",
                len(unmerged.guards), f"{total_cost(unmerged.guards):,.0f}",
            ])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["policies", "|G| merged", "cost merged", "|G| unmerged", "cost unmerged"],
        rows,
    )
    write_result(
        "ablation_range_merging", "Ablation — Theorem 1 range merging", table,
        data=rows,
        notes="Merging may only help; guard counts with merging never exceed without.",
    )
    for row in rows:
        assert row[1] <= row[3]


def test_ablation_selection_vs_owner_cover(benchmark, campus_mysql):
    """Algorithm 1 vs the naive one-guard-per-owner cover (Eq. 1)."""
    world = campus_mysql
    stats = world.db.table_stats(WIFI_TABLE)
    indexed = frozenset(world.db.catalog.indexed_columns(WIFI_TABLE))
    cm = SieveCostModel()
    rows = []

    def run():
        rows.clear()
        for count in (80, 240, 480):
            policies = policies_for_querier(world.dataset, "abl2", count, seed=710)
            greedy = build_guarded_expression(
                policies, stats, indexed, cm, querier="a", purpose="x", table=WIFI_TABLE
            )
            # Naive cover: exactly the owner conditions.
            owner_candidates = {}
            for p in policies:
                oc = p.owner_condition
                cand = owner_candidates.get(oc)
                if cand is None:
                    cand = CandidateGuard(
                        condition=oc, cardinality=condition_cardinality(oc, stats)
                    )
                    owner_candidates[oc] = cand
                cand.policy_ids.add(p.id)
            naive = select_guards(list(owner_candidates.values()), policies, cm, stats.row_count)
            rows.append([
                count,
                f"{total_cost(greedy.guards):,.0f}", len(greedy.guards),
                f"{total_cost(naive):,.0f}", len(naive),
            ])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["policies", "greedy cost", "greedy |G|", "owner-cover cost", "owner-cover |G|"],
        rows,
    )
    write_result(
        "ablation_selection", "Ablation — Algorithm 1 vs owner-only cover", table,
        data=rows,
        notes="The greedy utility cover should never cost more than the naive owner cover.",
    )
    for row in rows:
        greedy_cost = float(row[1].replace(",", ""))
        naive_cost = float(row[3].replace(",", ""))
        assert greedy_cost <= naive_cost * 1.05


def test_ablation_pqm_filter(benchmark, campus_mysql):
    """Enforcing the PQM-filtered corpus vs the whole corpus."""
    world = campus_mysql
    querier = world.campus.designated_queriers["faculty"][0]
    sql = f"SELECT count(*) AS n FROM {WIFI_TABLE} WHERE ts_date BETWEEN 5 AND 15"
    baseline = BaselineP(world.db, world.store)
    holder = {}

    def run():
        filtered = measure_engine(
            "filtered", world.db,
            lambda: baseline.execute(sql, querier, "analytics"),
            repeats=1, warmup=True,
        )
        # Unfiltered: what enforcement would cost if every policy in the
        # corpus (any querier/purpose) had to ride along.
        all_policies = world.store.all_policies()[:4000]
        dnf = policy_expression(all_policies)
        from repro.sql.printer import to_sql

        unfiltered_sql = (
            f"WITH w AS (SELECT * FROM {WIFI_TABLE} WHERE {dnf}) "
            f"SELECT count(*) AS n FROM w WHERE ts_date BETWEEN 5 AND 15"
        )
        unfiltered = measure_engine(
            "unfiltered", world.db, lambda: world.db.execute(unfiltered_sql), repeats=1
        )
        holder["rows"] = [
            ["PQM-filtered corpus", f"{filtered.wall_ms:,.0f}", f"{filtered.cost_units:,.0f}"],
            ["full corpus (4k policies)", f"{unfiltered.wall_ms:,.0f}", f"{unfiltered.cost_units:,.0f}"],
        ]
        holder["filtered"] = filtered.cost_units
        holder["unfiltered"] = unfiltered.cost_units
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["corpus", "ms", "cost units"], holder["rows"])
    write_result(
        "ablation_pqm_filter", "Ablation — query-metadata policy filtering", table,
        data=holder["rows"],
        notes="Filtering policies by (querier, purpose) before enforcement is "
              "what keeps per-query policy counts manageable (Section 3.2).",
    )
    assert holder["filtered"] < holder["unfiltered"]
