"""Guarded-expression persistence (paper Sections 5.1, 6).

Three relations mirror the paper's layout:

* ``rGE`` (``sieve_guarded_expressions``):
  ``<id, querier, associated_table, purpose, action, outdated, ts_inserted_at>``
* ``rGG`` (``sieve_guards``): ``<id, guard_expression_id, attr, op, val, op2, val2>``
* ``rGP`` (``sieve_guard_partitions``): ``<guard_id, policy_id>``

Guarded expressions are regenerated lazily: inserting a policy flips
the ``outdated`` flag of every affected querier's expressions (found
via the group directory); the next query by that querier rebuilds and
re-persists (Section 5.1 "we generate guards during query execution
using triggers in case the current guards are outdated").

This store is the *durable* tier: it owns the rGE/rGG/rGP rows and the
staleness flags Section 6 regeneration reasons about.  The fast tier —
the epoch-validated LRU the hot path actually hits — lives above it in
:mod:`repro.core.cache`; on a cache miss the middleware falls through
to :meth:`GuardStore.get_or_build` here.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.guards import Guard, GuardedExpression
from repro.policy.model import ObjectCondition, Policy
from repro.policy.store import PolicyStore, _deserialize, _serialize
from repro.storage.schema import ColumnType, Schema

GE_TABLE = "sieve_guarded_expressions"
GUARD_TABLE = "sieve_guards"
PARTITION_TABLE = "sieve_guard_partitions"

CacheKey = tuple[Any, str, str]  # (querier, purpose, table lowercased)


@dataclass
class _CacheEntry:
    expression: GuardedExpression
    outdated: bool = False
    ge_rowid: int | None = None
    guard_rowids: list[int] = field(default_factory=list)
    partition_rowids: list[int] = field(default_factory=list)
    inserts_since_generation: int = 0


class GuardStore:
    """Cache + persistence for guarded expressions, with staleness."""

    def __init__(self, db, policy_store: PolicyStore):
        self.db = db
        self.policy_store = policy_store
        self._cache: dict[CacheKey, _CacheEntry] = {}
        # Serializes guard persistence: builds write rGE/rGG/rGP rows
        # into the bundled engine, whose heap/index internals are not
        # safe under concurrent mutation.  Reentrant because
        # Sieve.guarded_expression_for wraps its decide-and-build
        # sequence in the same lock.  Never held while reading the
        # policy store (builders consume a pre-taken snapshot), so no
        # ordering against the store's RW lock can arise.
        self.lock = threading.RLock()
        self._ge_ids = itertools.count(1)
        self._guard_ids = itertools.count(1)
        self._install()
        # Weak registration, as in Sieve.__init__: a dead GuardStore
        # (and its cached expressions) must not be pinned by the store.
        self_ref = weakref.ref(self)

        def _policy_hook(policy: Policy) -> None:
            live = self_ref()
            if live is None:
                policy_store.remove_listener(_policy_hook)
                return
            live._on_policy_change(policy)

        policy_store.add_listener(_policy_hook)

    def _install(self) -> None:
        if self.db.catalog.has_table(GE_TABLE):
            return
        self.db.create_table(
            GE_TABLE,
            Schema.of(
                ("id", ColumnType.INT),
                ("querier", ColumnType.VARCHAR),
                ("associated_table", ColumnType.VARCHAR),
                ("purpose", ColumnType.VARCHAR),
                ("action", ColumnType.VARCHAR),
                ("outdated", ColumnType.BOOL),
                ("ts_inserted_at", ColumnType.INT),
            ),
        )
        self.db.create_table(
            GUARD_TABLE,
            Schema.of(
                ("id", ColumnType.INT),
                ("guard_expression_id", ColumnType.INT),
                ("attr_type", ColumnType.VARCHAR),
                ("attr", ColumnType.VARCHAR),
                ("op", ColumnType.VARCHAR),
                ("val", ColumnType.VARCHAR),
                ("op2", ColumnType.VARCHAR),
                ("val2", ColumnType.VARCHAR),
            ),
        )
        self.db.create_table(
            PARTITION_TABLE,
            Schema.of(
                ("guard_id", ColumnType.INT),
                ("policy_id", ColumnType.INT),
            ),
        )

    # ------------------------------------------------------------ staleness

    def _on_policy_change(self, policy: Policy) -> None:
        """Policy inserted/deleted: flip outdated on affected queriers.

        Fired by the policy store *after* its write lock is released,
        so taking the guard-store lock here cannot form a cycle with a
        concurrent build (which holds this lock but never blocks on the
        policy store — builders read a pre-taken snapshot)."""
        with self.lock:
            for (querier, purpose, table), entry in self._cache.items():
                if table != policy.table.lower():
                    continue
                affected = policy.querier == querier or (
                    policy.querier in self.policy_store.groups.groups_of(querier)
                )
                if not affected:
                    continue
                entry.outdated = True
                entry.inserts_since_generation += 1
                if entry.ge_rowid is not None:
                    table_obj = self.db.catalog.table(GE_TABLE)
                    row = list(table_obj.row(entry.ge_rowid))
                    row[5] = True
                    self.db.update_row(GE_TABLE, entry.ge_rowid, row)

    def is_outdated(self, querier: Any, purpose: str, table: str) -> bool:
        with self.lock:
            entry = self._cache.get((querier, purpose, table.lower()))
            return entry is None or entry.outdated

    def inserts_since_generation(self, querier: Any, purpose: str, table: str) -> int:
        with self.lock:
            entry = self._cache.get((querier, purpose, table.lower()))
            return entry.inserts_since_generation if entry else 0

    # --------------------------------------------------------------- access

    def get_or_build(
        self,
        querier: Any,
        purpose: str,
        table: str,
        builder: Callable[[], GuardedExpression],
        force_rebuild: bool = False,
    ) -> tuple[GuardedExpression, bool]:
        """Return the cached G(P), rebuilding when outdated or missing.

        Returns (expression, regenerated?).
        """
        key: CacheKey = (querier, purpose, table.lower())
        with self.lock:
            entry = self._cache.get(key)
            if entry is not None and not entry.outdated and not force_rebuild:
                return entry.expression, False
            expression = builder()
            self._persist(key, expression, replacing=entry)
            return expression, True

    def peek(self, querier: Any, purpose: str, table: str) -> GuardedExpression | None:
        with self.lock:
            entry = self._cache.get((querier, purpose, table.lower()))
            return entry.expression if entry else None

    def cached_expressions(self) -> list[GuardedExpression]:
        with self.lock:
            return [entry.expression for entry in self._cache.values()]

    def cache_size(self) -> int:
        """Number of (querier, purpose, relation) expressions held."""
        with self.lock:
            return len(self._cache)

    def drop(self, querier: Any, purpose: str, table: str) -> bool:
        """Forget one cached expression and its persisted rows
        (explicit invalidation; the next query rebuilds from scratch)."""
        with self.lock:
            entry = self._cache.pop((querier, purpose, table.lower()), None)
            if entry is None:
                return False
            self._delete_rows(entry)
            return True

    def invalidate(self, querier: Any = None) -> int:
        """Drop every cached expression (and its persisted rows) for
        ``querier``, or for everyone when ``None`` — the hard reset
        behind :meth:`Sieve.invalidate_caches
        <repro.core.middleware.Sieve.invalidate_caches>` after group
        directory edits, which the ``outdated`` machinery cannot see."""
        with self.lock:
            doomed = [
                key for key in self._cache if querier is None or key[0] == querier
            ]
            for key in doomed:
                self._delete_rows(self._cache.pop(key))
            return len(doomed)

    # ---------------------------------------------------------- persistence

    def _persist(
        self, key: CacheKey, expression: GuardedExpression, replacing: _CacheEntry | None
    ) -> None:
        if replacing is not None:
            self._delete_rows(replacing)
        ge_id = next(self._ge_ids)
        expression.created_at = ge_id
        ge_rowid = self.db.insert_row(
            GE_TABLE,
            (ge_id, str(key[0]), expression.table, key[1], "allow", False, ge_id),
        )
        guard_rowids: list[int] = []
        partition_rowids: list[int] = []
        for guard in expression.guards:
            guard_id = next(self._guard_ids)
            oc = guard.condition
            tag, payload = _serialize(oc.value)
            payload2 = _serialize(oc.value2)[1] if oc.op2 is not None else ""
            guard_rowids.append(
                self.db.insert_row(
                    GUARD_TABLE,
                    (guard_id, ge_id, tag, oc.attr, oc.op, payload, oc.op2 or "", payload2),
                )
            )
            for policy in guard.policies:
                partition_rowids.append(
                    self.db.insert_row(PARTITION_TABLE, (guard_id, policy.id))
                )
        self._cache[key] = _CacheEntry(
            expression=expression,
            outdated=False,
            ge_rowid=ge_rowid,
            guard_rowids=guard_rowids,
            partition_rowids=partition_rowids,
        )

    def _delete_rows(self, entry: _CacheEntry) -> None:
        if entry.ge_rowid is not None:
            self.db.delete_row(GE_TABLE, entry.ge_rowid)
        for rowid in entry.guard_rowids:
            self.db.delete_row(GUARD_TABLE, rowid)
        for rowid in entry.partition_rowids:
            self.db.delete_row(PARTITION_TABLE, rowid)

    def load_persisted(self, querier: Any, purpose: str, table: str) -> GuardedExpression | None:
        """Rebuild a GuardedExpression from the rGE/rGG/rGP tables
        (round-trip check used by tests; the hot path uses the cache)."""
        ge_table = self.db.catalog.table(GE_TABLE)
        target = None
        for _rowid, row in ge_table.scan():
            if (
                row[1] == str(querier)
                and row[2].lower() == table.lower()
                and row[3] == purpose
            ):
                target = row
        if target is None:
            return None
        ge_id = target[0]
        guards: list[Guard] = []
        guard_table = self.db.catalog.table(GUARD_TABLE)
        partition_table = self.db.catalog.table(PARTITION_TABLE)
        for _rowid, grow in guard_table.scan():
            gid, owner_ge, tag, attr, op, val, op2, val2 = grow
            if owner_ge != ge_id:
                continue
            condition = ObjectCondition(
                attr=attr,
                op=op,
                value=_deserialize(tag, val),
                op2=op2 or None,
                value2=_deserialize(tag, val2) if op2 else None,
            )
            policy_ids = [
                prow[1]
                for _r, prow in partition_table.scan()
                if prow[0] == gid
            ]
            policies = [self.policy_store.get(pid) for pid in policy_ids]
            guards.append(Guard(condition=condition, policies=policies, cardinality=0.0))
        return GuardedExpression(
            querier=querier,
            purpose=purpose,
            table=table,
            guards=guards,
        )
