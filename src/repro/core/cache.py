"""Session-scoped guard caching — the middleware amortization layer.

The paper's core bet is that guarded expressions are generated *once*
and amortized over many queries (Section 5.1: "the one-time cost of
generating guards is amortized across query executions").  The seed
middleware still re-ran the PQM policy filter (Section 3.2) and
re-consulted the guard store on every ``Sieve.execute`` call.  This
module makes repeated-querier traffic — the common case under heavy
load — sublinear in policy-corpus work:

* :class:`GuardCache` — a bounded LRU cache of resolved
  ``(querier, purpose, relation)`` guard state, validated against the
  :class:`~repro.policy.store.PolicyStore` *policy epoch*.  Every
  policy mutation bumps the epoch; the cache's mutation hook drops only
  the entries whose ``(querier, relation)`` the mutated policy can
  affect (directly or through the group directory) and re-stamps the
  rest, so unrelated queriers keep their warm state.
* :class:`SieveSession` — the per-``(querier, purpose)`` façade
  returned by :meth:`Sieve.session <repro.core.middleware.Sieve.session>`.
  A session resolves each referenced relation through the shared
  :class:`GuardCache` and offers :meth:`SieveSession.execute_many` for
  batched workloads, so the policy corpus is filtered once per session
  (per epoch) rather than once per query.

Interplay with Section 6 regeneration: a policy mutation evicts the
affected cache entries, but the rebuild decision still belongs to
:class:`~repro.core.regeneration.RegenerationController` — on the next
resolve the middleware may deliberately keep serving the stale guarded
expression until the k̃-th insertion (Theorem 2), and that deferred
expression is re-admitted to the cache at the current epoch.

Cache traffic is charged to the deterministic counters
(``guard_cache_hits`` / ``guard_cache_misses`` in
:class:`~repro.db.counters.CounterSet`) so benches can assert hit
rates without wall clocks.  See ``docs/ARCHITECTURE.md`` for where
this layer sits in the dataflow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.common.concurrency import SingleFlight
from repro.core.guards import GuardedExpression
from repro.obs.tracing import span
from repro.policy.model import Policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (middleware imports us)
    from repro.core.middleware import Sieve, SieveExecution
    from repro.engine.executor import QueryResult
    from repro.policy.store import PolicySnapshot
    from repro.sql.ast import Query

DEFAULT_GUARD_CACHE_CAPACITY = 512


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`GuardCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Lookups that found a concurrent build of the same key in flight
    #: and waited for it instead of duplicating the work (service tier).
    coalesced: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "coalesced": self.coalesced,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CachedGuardEntry:
    """Resolved per-``(querier, purpose, relation)`` enforcement state.

    ``expression is None`` means the querier holds no applicable
    policies on the relation — the default-deny outcome (Section 3.1)
    is cached too, so repeated denied queries stay O(1).
    """

    querier: Any
    purpose: str
    table: str  # lowercased relation name
    policies: list[Policy] = field(default_factory=list)
    expression: GuardedExpression | None = None
    epoch: int = 0


class GuardCache:
    """Bounded LRU over resolved guard state, keyed by
    ``(querier, purpose, relation)`` and validated by policy epoch.

    A lookup hits only when the stored entry was built (or re-stamped)
    at the caller's epoch; stale entries are treated as misses and
    dropped.  :meth:`on_policy_mutation` is the targeted-invalidation
    hook wired to :meth:`PolicyStore.add_mutation_listener
    <repro.policy.store.PolicyStore.add_mutation_listener>`.

    The cache is **thread-safe** and process-wide shareable: every
    public method holds an internal lock around the LRU dict (the
    seed's bare ``OrderedDict`` corrupted under concurrent sessions —
    eviction during another thread's iteration), and the lock is never
    held while calling out (no store/builder re-entry → no lock-order
    cycles).  :meth:`resolve` adds *single-flight* de-duplication: N
    concurrent misses of the same ``(querier, purpose, relation,
    epoch)`` run one builder; the rest wait and share the entry
    (``stats.coalesced``).
    """

    def __init__(self, capacity: int = DEFAULT_GUARD_CACHE_CAPACITY):
        if capacity <= 0:
            raise ValueError("guard cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[tuple[Any, str, str], CachedGuardEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._flights = SingleFlight()

    @staticmethod
    def _key(querier: Any, purpose: str, table: str) -> tuple[Any, str, str]:
        return (querier, purpose, table.lower())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[tuple[Any, str, str]]:
        with self._lock:
            return list(self._entries)

    # --------------------------------------------------------------- lookup

    def get(
        self, querier: Any, purpose: str, table: str, epoch: int
    ) -> CachedGuardEntry | None:
        key = self._key(querier, purpose, table)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.epoch < epoch:
                # Stale: a mutation hook never saw this entry (e.g. it
                # was admitted under an older epoch after capacity
                # churn).
                del self._entries[key]
                self.stats.misses += 1
                return None
            if entry.epoch > epoch:
                # The caller's snapshot is pinned behind a concurrent
                # mutation that carried this entry forward.  Miss for
                # this request (it must plan against its own epoch) but
                # KEEP the entry — it is valid for live-epoch traffic.
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self,
        querier: Any,
        purpose: str,
        table: str,
        epoch: int,
        policies: list[Policy],
        expression: GuardedExpression | None,
    ) -> CachedGuardEntry:
        key = self._key(querier, purpose, table)
        entry = CachedGuardEntry(
            querier=querier,
            purpose=purpose,
            table=key[2],
            policies=list(policies),
            expression=expression,
            epoch=epoch,
        )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.epoch > epoch:
                # A request pinned to an older snapshot must not
                # clobber state already valid at a newer epoch; the
                # caller still gets its own (epoch-consistent) entry.
                return entry
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def resolve(
        self,
        querier: Any,
        purpose: str,
        table: str,
        epoch: int,
        builder: "Any",
    ) -> tuple[CachedGuardEntry, bool, bool]:
        """Get-or-build with single-flight de-duplication.

        ``builder()`` must return ``(entry, rebuilt)`` and is expected
        to :meth:`put` the entry itself (it runs *outside* the cache
        lock — it may take arbitrarily long and re-enter the cache).
        Returns ``(entry, rebuilt, hit)``; followers of a coalesced
        build report ``rebuilt=False`` (they did not regenerate
        anything themselves).
        """
        entry = self.get(querier, purpose, table, epoch)
        if entry is not None:
            return entry, False, True
        flight_key = (*self._key(querier, purpose, table), epoch)
        (entry, rebuilt), leader = self._flights.do(flight_key, builder)
        if not leader:
            with self._lock:
                self.stats.coalesced += 1
            rebuilt = False
        return entry, rebuilt, False

    def charge(self, counters, hit: bool) -> None:
        """Record a lookup on the engine's deterministic counters,
        under this cache's lock — plain ``+=`` from concurrent workers
        loses increments (the exact hazard the ``service_*`` counters
        document), and benches assert on these values."""
        with self._lock:
            if hit:
                counters.guard_cache_hits += 1
            else:
                counters.guard_cache_misses += 1

    def peek(self, querier: Any, purpose: str, table: str) -> CachedGuardEntry | None:
        """The stored entry regardless of epoch (introspection/tests)."""
        with self._lock:
            return self._entries.get(self._key(querier, purpose, table))

    # --------------------------------------------------------- invalidation

    def invalidate(self, querier: Any = None, table: str | None = None) -> int:
        """Drop entries matching the given querier and/or relation
        (``None`` matches everything).  Returns the number dropped."""
        table_lc = table.lower() if table is not None else None
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if (querier is None or entry.querier == querier)
                and (table_lc is None or entry.table == table_lc)
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += count
            return count

    def on_policy_mutation(self, kind: str, policy: Policy, epoch: int, groups) -> int:
        """Targeted invalidation after a policy insert/delete/update.

        Entries for the mutated policy's relation whose querier the
        policy names — directly or via one of the querier's groups —
        are dropped; surviving entries that were valid at the previous
        epoch are re-stamped to ``epoch`` so they keep hitting.
        Entries already stale from an *unheard* epoch bump (e.g.
        :meth:`PolicyStore.reload_from_database
        <repro.policy.store.PolicyStore.reload_from_database>`, which
        fires no mutation events) are left stale and lazily dropped on
        their next lookup.  Returns the number of entries dropped.
        """
        del kind  # insert/delete/update all invalidate identically
        table_lc = policy.table.lower()
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                affected = entry.table == table_lc and (
                    policy.querier == entry.querier
                    or policy.querier in groups.groups_of(entry.querier)
                )
                if affected:
                    del self._entries[key]
                    dropped += 1
                elif entry.epoch == epoch - 1:
                    entry.epoch = epoch
            self.stats.invalidations += dropped
        return dropped


DEFAULT_REWRITE_CACHE_CAPACITY = 256


@dataclass
class CachedRewrite:
    """One memoized enforcement rewrite (serving-tier hot path).

    ``info`` is the original rewrite's full bookkeeping — strategy
    decisions, guard keys, denied tables — so downstream consumers of
    a cache hit (the audit tier's
    :class:`~repro.audit.DecisionRecord` in particular) observe the
    exact same decision content as the cold path that built the entry.
    Cache transparency of audit records is asserted by
    ``tests/test_session_cache.py`` and the replay oracle.
    """

    rewritten: "Query"
    info: Any  # RewriteInfo (not imported: cycle with core.rewriter)
    policies_considered: int
    epoch: int


class RewriteCache:
    """Bounded, thread-safe LRU of full enforcement rewrites, keyed by
    ``(querier, purpose, sql_text)`` and validated by policy epoch.

    The guard cache amortizes the *corpus* work (PQM filter + guard
    fetch); repeated identical queries still re-pay parse → strategy →
    rewrite → print on every call, which under a serving tier is the
    dominant per-request CPU once guards are warm.  An entry is valid
    exactly while the policy epoch is unchanged — the same invariant
    the guard cache uses, since the rewrite is a pure function of
    (query text, guarded expressions at this epoch, engine
    personality).  Off by default on a bare :class:`Sieve`
    (``rewrite_cache_capacity=0``) so per-query counter semantics stay
    exactly as documented; :class:`~repro.service.SieveServer` enables
    it.

    Caveats mirror the guard cache's: group-directory edits and
    ``db.analyze()`` don't bump the epoch — call
    :meth:`Sieve.invalidate_caches
    <repro.core.middleware.Sieve.invalidate_caches>` after either.
    """

    def __init__(self, capacity: int = DEFAULT_REWRITE_CACHE_CAPACITY):
        if capacity <= 0:
            raise ValueError("rewrite cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[tuple[Any, str, str], CachedRewrite]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, querier: Any, purpose: str, sql: str, epoch: int) -> CachedRewrite | None:
        key = (querier, purpose, sql)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.epoch < epoch:
                del self._entries[key]  # stale: no mutation hook re-stamps rewrites
                self.stats.misses += 1
                return None
            if entry.epoch > epoch:
                # Caller pinned behind a concurrent mutation: miss, but
                # keep the entry that live-epoch traffic is using (same
                # rule as GuardCache.get).
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self,
        querier: Any,
        purpose: str,
        sql: str,
        epoch: int,
        rewritten: "Query",
        info: Any,
        policies_considered: int,
    ) -> CachedRewrite:
        entry = CachedRewrite(
            rewritten=rewritten,
            info=info,
            policies_considered=policies_considered,
            epoch=epoch,
        )
        key = (querier, purpose, sql)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.epoch > epoch:
                return entry  # never clobber a fresher-epoch rewrite
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def invalidate(self, querier: Any = None) -> int:
        """Drop entries for one querier (``None`` = everyone)."""
        with self._lock:
            doomed = [
                key for key in self._entries if querier is None or key[0] == querier
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def queriers(self) -> set[Any]:
        """Distinct queriers with at least one memoized rewrite — the
        cluster tier's rebalance sweeps these too (a querier can hold
        rewrite entries without any guard-cache entry, e.g. when none
        of its queried relations carried policies)."""
        with self._lock:
            return {key[0] for key in self._entries}

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += count
            return count


DEFAULT_PLAN_CACHE_CAPACITY = 256


@dataclass
class CachedPlan:
    """One memoized end-of-pipeline artifact for a prepared query.

    ``rewritten`` is the enforcement rewrite's AST, ``planned`` the
    bundled engine's :class:`~repro.optimizer.planner.PlannedQuery`
    (``None`` when a backend executes the printed ``info.sql``
    instead).  Plan nodes are never mutated by the executors, so one
    PlannedQuery is safely re-executed any number of times from any
    thread.  ``info`` carries the original rewrite bookkeeping, so a
    hit's audit record is identical to the cold path's (the same
    cache-transparency contract :class:`CachedRewrite` documents).

    Entries are validated on two axes: the policy ``epoch`` (stale
    guards must never run) and the database ``plan_version`` (catalog /
    UDF / statistics changes re-plan).  ``guard_signature`` records the
    guard keys the rewrite materialized — introspection for tests and
    operators, and the reason a hit can be trusted: any mutation that
    could change the signature bumps the epoch.
    """

    rewritten: "Query"
    planned: Any  # PlannedQuery | None (backend executions carry None)
    info: Any  # RewriteInfo (not imported: cycle with core.rewriter)
    policies_considered: int
    epoch: int
    plan_version: tuple
    guard_signature: tuple
    tables: frozenset[str]
    querier: Any


class PlanCache:
    """Bounded, thread-safe LRU of post-rewrite, post-plan artifacts.

    Keyed by ``(querier, purpose, template_key, binding values)`` —
    the binding values are part of the key because strategy choice and
    access-path planning are *value-dependent* (selectivity estimates
    read the literals), so a plan cached per-template-only could
    diverge from what the unprepared pipeline would build for other
    values.  Keying on the values keeps the prepared path row- and
    counter-identical to the unprepared one by construction; repeated
    shapes with repeated values (the Fig. 6 serving workload — and any
    zero-literal query) skip parse → strategy → rewrite → plan
    entirely.

    Validation mirrors :class:`RewriteCache` (policy epoch, both
    directions) plus the database's ``plan_version`` (catalog / UDF /
    statistics fingerprint).  :meth:`on_policy_mutation` drops only
    entries whose referenced tables and querier the mutated policy can
    affect and re-stamps the rest; :meth:`resolve` adds single-flight
    population so N concurrent misses of one key build one plan.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY):
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[tuple, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self._flights = SingleFlight()

    @staticmethod
    def _key(querier: Any, purpose: str, template_key: str, values: tuple) -> tuple:
        return (querier, purpose, template_key, values)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self,
        querier: Any,
        purpose: str,
        template_key: str,
        values: tuple,
        epoch: int,
        plan_version: tuple,
    ) -> CachedPlan | None:
        key = self._key(querier, purpose, template_key, values)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.plan_version != plan_version:
                # Catalog / stats / UDF registry moved: the plan may be
                # arbitrarily wrong (dropped index, new histogram) —
                # drop it for every epoch.
                del self._entries[key]
                self.stats.misses += 1
                return None
            if entry.epoch < epoch:
                del self._entries[key]  # stale: mutation hook never saw it
                self.stats.misses += 1
                return None
            if entry.epoch > epoch:
                # Caller pinned behind a concurrent mutation: miss, but
                # keep the entry live-epoch traffic is using (same rule
                # as GuardCache.get).
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self,
        querier: Any,
        purpose: str,
        template_key: str,
        values: tuple,
        epoch: int,
        plan_version: tuple,
        rewritten: "Query",
        planned: Any,
        info: Any,
        policies_considered: int,
        tables: Iterable[str],
    ) -> CachedPlan:
        guard_keys = getattr(info, "guard_keys", {}) or {}
        entry = CachedPlan(
            rewritten=rewritten,
            planned=planned,
            info=info,
            policies_considered=policies_considered,
            epoch=epoch,
            plan_version=plan_version,
            guard_signature=tuple(
                (table, tuple(keys)) for table, keys in sorted(guard_keys.items())
            ),
            tables=frozenset(t.lower() for t in tables),
            querier=querier,
        )
        key = self._key(querier, purpose, template_key, values)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.epoch > epoch:
                return entry  # never clobber a fresher-epoch plan
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def resolve(
        self,
        querier: Any,
        purpose: str,
        template_key: str,
        values: tuple,
        epoch: int,
        plan_version: tuple,
        builder: Any,
    ) -> tuple[CachedPlan, Any, bool]:
        """Get-or-build with single-flight population.

        ``builder()`` runs outside the cache lock, must :meth:`put` the
        entry itself, and returns ``(entry, execution)`` — the leader's
        in-flight execution bookkeeping, which coalesced followers must
        NOT share (it is mutated downstream), so they receive ``None``
        and rebuild their view from the entry.  Returns ``(entry,
        execution_or_None, hit)``.
        """
        entry = self.get(querier, purpose, template_key, values, epoch, plan_version)
        if entry is not None:
            return entry, None, True
        flight_key = (querier, purpose, template_key, values, epoch, plan_version)
        (entry, execution), leader = self._flights.do(flight_key, builder)
        if not leader:
            with self._lock:
                self.stats.coalesced += 1
            execution = None
        return entry, execution, False

    def charge(self, counters, hit: bool) -> None:
        """Tick plan_cache_hits/misses under this cache's lock (plain
        ``+=`` from concurrent service workers loses increments)."""
        with self._lock:
            if hit:
                counters.plan_cache_hits += 1
            else:
                counters.plan_cache_misses += 1

    def invalidate(self, querier: Any = None, table: str | None = None) -> int:
        """Drop entries for one querier and/or referencing one table
        (``None`` matches everything)."""
        table_lc = table.lower() if table is not None else None
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if (querier is None or entry.querier == querier)
                and (table_lc is None or table_lc in entry.tables)
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def queriers(self) -> set[Any]:
        """Distinct queriers with at least one cached plan (the cluster
        tier's rebalance and recovery sweeps consult this, exactly as
        they do :meth:`RewriteCache.queriers`)."""
        with self._lock:
            return {entry.querier for entry in self._entries.values()}

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += count
            return count

    def on_policy_mutation(self, kind: str, policy: Policy, epoch: int, groups) -> int:
        """Targeted invalidation after a policy insert/delete/update:
        drop plans referencing the mutated policy's relation whose
        querier the policy names (directly or via a group), re-stamp
        the epoch-1 survivors so they keep hitting."""
        del kind
        table_lc = policy.table.lower()
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                affected = table_lc in entry.tables and (
                    policy.querier == entry.querier
                    or policy.querier in groups.groups_of(entry.querier)
                )
                if affected:
                    del self._entries[key]
                    dropped += 1
                elif entry.epoch == epoch - 1:
                    entry.epoch = epoch
            self.stats.invalidations += dropped
        return dropped


class SieveSession:
    """A ``(querier, purpose)``-scoped handle on the middleware.

    Obtained via :meth:`Sieve.session
    <repro.core.middleware.Sieve.session>`; all executions share the
    middleware's :class:`GuardCache`, so the PQM filter and guard
    fetch run only on the first query per relation (per policy epoch)::

        session = sieve.session("Prof.Smith", "analytics")
        results = session.execute_many(queries)   # corpus filtered once
        print(session.cache_stats.hit_rate)

    Sessions are cheap, long-lived views — they hold no query state of
    their own, so a mutation to the policy store is picked up by every
    session at its next execution (via the epoch check).  The one
    exception is :class:`~repro.policy.groups.GroupDirectory`
    membership edits, which do not bump the policy epoch; call
    :meth:`refresh` after changing group membership mid-session.
    """

    def __init__(self, sieve: "Sieve", querier: Any, purpose: str):
        self._sieve = sieve
        self.querier = querier
        self.purpose = purpose

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SieveSession(querier={self.querier!r}, purpose={self.purpose!r})"

    # ----------------------------------------------------------- resolution

    def resolve(
        self, table: str, snapshot: "PolicySnapshot | None" = None
    ) -> tuple[CachedGuardEntry, bool]:
        """Guard state for one relation, from cache when warm.

        Returns ``(entry, regenerated?)`` where ``regenerated`` is True
        only when this call rebuilt the guarded expression (mirrors
        :meth:`GuardStore.get_or_build
        <repro.core.guard_store.GuardStore.get_or_build>`).

        ``snapshot`` pins the corpus view: the middleware passes one
        :meth:`PolicyStore.snapshot
        <repro.policy.store.PolicyStore.snapshot>` per request so every
        relation resolves against the same epoch even while writers
        mutate concurrently.  Misses are de-duplicated process-wide:
        concurrent misses of the same key wait for one build
        (single-flight) instead of each re-generating the guards.
        """
        sieve = self._sieve
        counters = sieve.db.counters
        snap = snapshot if snapshot is not None else sieve.policy_store.snapshot()

        def build() -> tuple[CachedGuardEntry, bool]:
            policies = snap.policies_for(self.querier, self.purpose, table)
            expression: GuardedExpression | None = None
            rebuilt = False
            if policies:
                expression, rebuilt = sieve.guarded_expression_for(
                    self.querier, self.purpose, table, snapshot=snap
                )
            entry = sieve.guard_cache.put(
                self.querier, self.purpose, table, snap.epoch, policies, expression
            )
            return entry, rebuilt

        with span("guard.resolve", table=table) as sp:
            entry, rebuilt, hit = sieve.guard_cache.resolve(
                self.querier, self.purpose, table, snap.epoch, build
            )
            sieve.guard_cache.charge(counters, hit)
            sp.set(hit=hit, rebuilt=rebuilt, policies=len(entry.policies))
        return entry, rebuilt

    def refresh(self) -> int:
        """Drop this querier's cached guard state in every tier — the
        LRU, the rewrite memo (when enabled), and the guard store's
        persisted expressions (e.g. after group directory edits, which
        bypass the policy epoch; a stale expression must not be
        re-admitted from the store)."""
        dropped = self._sieve.guard_cache.invalidate(querier=self.querier)
        if self._sieve.rewrite_cache is not None:
            dropped += self._sieve.rewrite_cache.invalidate(querier=self.querier)
        if self._sieve.plan_cache is not None:
            dropped += self._sieve.plan_cache.invalidate(querier=self.querier)
        dropped += self._sieve.guard_store.invalidate(querier=self.querier)
        return dropped

    @property
    def cache_stats(self) -> CacheStats:
        """Stats of the middleware-wide guard cache this session feeds."""
        return self._sieve.guard_cache.stats

    # ------------------------------------------------------------ execution

    def rewrite(self, sql: "str | Query") -> "Query":
        return self._sieve.rewrite(sql, self.querier, self.purpose)

    def rewritten_sql(self, sql: "str | Query") -> str:
        return self._sieve.rewritten_sql(sql, self.querier, self.purpose)

    def prepare(self, sql: "str | Query") -> Any:
        """A :class:`~repro.core.middleware.PreparedQuery` bound to this
        session's (querier, purpose); see :meth:`Sieve.prepare
        <repro.core.middleware.Sieve.prepare>`."""
        return self._sieve.prepare(sql, self.querier, self.purpose)

    def execute(self, sql: "str | Query") -> "QueryResult":
        return self._sieve.execute(sql, self.querier, self.purpose)

    def execute_with_info(self, sql: "str | Query") -> "SieveExecution":
        return self._sieve.execute_with_info(sql, self.querier, self.purpose)

    def execute_many(self, sqls: Iterable["str | Query"]) -> "list[QueryResult]":
        """Run a batch of queries under one metadata context.

        The first query per referenced relation pays the PQM filter and
        guard fetch; the rest hit the shared cache, so middleware work
        per query is O(parse + rewrite) instead of O(policy corpus).
        """
        return [self.execute(sql) for sql in sqls]

    def execute_many_with_info(
        self, sqls: Iterable["str | Query"]
    ) -> "list[SieveExecution]":
        return [self.execute_with_info(sql) for sql in sqls]
