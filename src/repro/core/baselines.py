"""The paper's comparison baselines (Section 7.2, Experiment 3).

All three enforce the same semantics as Sieve (replace each relation
with a policy-compliant projection; default deny) but with the
traditional rewrite shapes:

* **BaselineP** — "policy as predicate": append the full policy DNF
  ``E(P) = OC_1 ∨ ... ∨ OC_|P|`` to the relation's WHERE clause and let
  the optimizer cope.
* **BaselineI** — one forced index scan *per policy* (on the owner
  index), UNION-ed together.
* **BaselineU** — a UDF over the relation that evaluates the querier's
  policies per tuple (bucketed by owner, so it checks few policies per
  tuple — but pays a UDF invocation for every tuple scanned).

Each baseline exposes ``execute(sql, querier, purpose)`` mirroring the
Sieve middleware, so benchmarks swap enforcement engines freely.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.common.errors import SieveError
from repro.core.rewriter import (
    collect_table_names,
    query_predicates_for,
    strip_qualifiers,
)
from repro.engine.executor import QueryResult
from repro.expr.analysis import make_and, make_or
from repro.expr.nodes import ColumnRef, Expr, FuncCall, Literal, Star
from repro.policy.model import Policy, policy_expression
from repro.policy.store import PolicyStore
from repro.sql.ast import (
    CTE,
    IndexHint,
    Query,
    Select,
    SelectCore,
    SelectItem,
    SetOp,
    TableRef,
)
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql


class _BaselineBase:
    """Shared plumbing: find protected tables, build CTEs, execute."""

    name = "Baseline"

    def __init__(self, db, policy_store: PolicyStore):
        self.db = db
        self.policy_store = policy_store

    # subclasses implement this
    def _enforcement_body(
        self, table_name: str, policies: list[Policy], qpred: Expr | None
    ) -> SelectCore:
        raise NotImplementedError

    def rewrite(self, sql: str | Query, querier: Any, purpose: str) -> Query:
        query = parse_query(sql) if isinstance(sql, str) else sql
        protected = self.policy_store.tables_with_policies()
        targets = sorted(collect_table_names(query) & protected)
        new_ctes: list[CTE] = []
        replacements: dict[str, str] = {}
        for table_name in targets:
            policies = self.policy_store.policies_for(querier, purpose, table_name)
            cte_name = f"{table_name}_{self.name.lower()}"
            # "Append E(P) to the query's WHERE": query predicates and
            # policy expression are evaluated together, so the optimizer
            # may read via the query predicate (and degrades with its
            # cardinality, as in the paper's Experiment 3).
            columns = {
                c.lower() for c in self.db.catalog.table(table_name).schema.names
            }
            qpreds = query_predicates_for(query, table_name, columns)
            qpred = make_and([strip_qualifiers(p) for p in qpreds])
            if policies:
                body = self._enforcement_body(table_name, policies, qpred)
            else:
                body = Select(
                    items=[SelectItem(Star())],
                    from_items=[TableRef(table_name)],
                    where=Literal(False),
                )
            new_ctes.append(CTE(cte_name, Query(body=body)))
            replacements[table_name] = cte_name
        from repro.core.rewriter import SieveRewriter  # reuse the renamer

        renamer = SieveRewriter.__new__(SieveRewriter)
        renamer.db = self.db
        rewritten = renamer._replace_tables(query, replacements)
        rewritten.ctes = new_ctes + rewritten.ctes
        return rewritten

    def execute(self, sql: str | Query, querier: Any, purpose: str) -> QueryResult:
        return self.db.execute(self.rewrite(sql, querier, purpose))

    def rewritten_sql(self, sql: str | Query, querier: Any, purpose: str) -> str:
        return to_sql(self.rewrite(sql, querier, purpose))


class BaselineP(_BaselineBase):
    """Append the policy DNF to the WHERE clause (query-rewrite FGAC)."""

    name = "BaselineP"

    def _enforcement_body(
        self, table_name: str, policies: list[Policy], qpred: Expr | None
    ) -> SelectCore:
        dnf = policy_expression(policies)
        assert dnf is not None
        where = make_and([p for p in (qpred, dnf) if p is not None])
        return Select(
            items=[SelectItem(Star())],
            from_items=[TableRef(table_name)],
            where=where,
        )


class BaselineI(_BaselineBase):
    """One forced index scan per policy, UNION-combined."""

    name = "BaselineI"

    def _enforcement_body(
        self, table_name: str, policies: list[Policy], qpred: Expr | None
    ) -> SelectCore:
        owner_index = self.db.catalog.index_on_column(table_name, "owner")
        branches: list[Select] = []
        for policy in policies:
            hint = (
                IndexHint("FORCE", (owner_index.name,)) if owner_index is not None else None
            )
            where = make_and(
                [p for p in (policy.object_expr(), qpred) if p is not None]
            )
            branches.append(
                Select(
                    items=[SelectItem(Star())],
                    from_items=[TableRef(table_name, hint=hint)],
                    where=where,
                )
            )
        core: SelectCore = branches[0]
        for branch in branches[1:]:
            core = SetOp("UNION", core, branch)
        return core


class BaselineU(_BaselineBase):
    """Evaluate policies through a per-tuple UDF over the relation."""

    name = "BaselineU"
    UDF_NAME = "baseline_u_check"

    def __init__(self, db, policy_store: PolicyStore):
        super().__init__(db, policy_store)
        # The UDF name is global per database; share compiled state across
        # BaselineU instances so re-registration never orphans old keys.
        shared = getattr(db, "_baseline_u_state", None)
        if shared is None:
            shared = ({}, {})
            db._baseline_u_state = shared
        self._compiled: dict[str, dict[Any, list[Callable[[tuple], bool]]]] = shared[0]
        self._owner_pos: dict[str, int] = shared[1]
        if not db.has_function(self.UDF_NAME):
            db.create_function(self.UDF_NAME, self._check)

    def _enforcement_body(
        self, table_name: str, policies: list[Policy], qpred: Expr | None
    ) -> SelectCore:
        key = self._register(table_name, policies)
        table = self.db.catalog.table(table_name)
        call: Expr = FuncCall(
            self.UDF_NAME,
            (Literal(key), *(ColumnRef(c) for c in table.schema.names)),
        )
        # The UDF must run last; ANDing the query predicate first lets the
        # optimizer read via it (and keeps UDF invocations down at low
        # cardinality, exactly the paper's BaselineU behaviour).
        where = make_and([p for p in (qpred, call) if p is not None])
        return Select(
            items=[SelectItem(Star())],
            from_items=[TableRef(table_name)],
            where=where,
        )

    def _register(self, table_name: str, policies: list[Policy]) -> str:
        from repro.expr.eval import ExprCompiler, RowBinding

        table = self.db.catalog.table(table_name)
        binding = RowBinding.for_table(table_name, table.schema.names)
        compiler = ExprCompiler(binding)
        buckets: dict[Any, list[Callable[[tuple], bool]]] = defaultdict(list)
        for policy in policies:
            if policy.has_derived_conditions:
                raise SieveError(
                    "BaselineU cannot evaluate derived-value policies in a UDF"
                )
            body = make_and([oc.to_expr() for oc in policy.non_owner_conditions])
            fn = compiler.compile(body) if body is not None else (lambda row: True)
            owner_oc = policy.owner_condition
            owners = owner_oc.value if owner_oc.op == "IN" else [owner_oc.value]
            for owner in owners:
                buckets[owner].append(fn)
        key = f"{table_name}|{len(self._compiled)}"
        self._compiled[key] = dict(buckets)
        self._owner_pos[key] = table.schema.index_of("owner")
        return key

    def _check(self, key: str, *column_values: Any) -> bool:
        buckets = self._compiled[key]
        owner = column_values[self._owner_pos[key]]
        relevant = buckets.get(owner)
        if not relevant:
            return False
        counters = self.db.counters
        row = tuple(column_values)
        for fn in relevant:
            counters.udf_policy_evals += 1
            if fn(row):
                return True
        return False
