"""The Δ (delta) policy-check operator as a UDF (paper Section 5.2).

Δ(P_Gi, QM, t) does two things per tuple:

1. retrieves P̂ — the subset of the partition relevant to the tuple's
   context, i.e. the policies whose owner condition matches the
   tuple's ``owner`` (the querier/purpose filtering already happened
   when the guarded expression was built);
2. evaluates each relevant policy's object conditions on the tuple.

The engine-facing UDF signature is
``sieve_delta(guard_key, col_1, ..., col_n)`` with the relation's
columns passed in schema order; the rewriter generates the matching
call.  Partition state is registered under ``guard_key`` before the
rewritten query runs.

Invocation counts land in ``counters.udf_invocations`` (charged by the
Database UDF wrapper) and per-policy checks in
``counters.udf_policy_evals``, which is what the Figure 3 bench
(Experiment 2, inline vs Δ) plots.

Partition state tracks the current guarded expression: at each rewrite
the rewriter first calls :meth:`DeltaOperator.unregister_prefix` for
the expression's ``querier|purpose|table|`` prefix, then registers the
partitions of the guards the strategy routed through Δ — so Section 6
regeneration can never leave a stale partition behind.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any, Callable

from repro.common.errors import SieveError
from repro.core.guards import Guard
from repro.expr.eval import ExprCompiler, RowBinding
from repro.expr.analysis import make_and

DELTA_UDF_NAME = "sieve_delta"


class DeltaOperator:
    """Holds compiled per-guard partition state and implements the UDF.

    One instance per database: the UDF name is global, so a second
    instance would orphan the first's partitions.  Use
    :meth:`for_database`.
    """

    def __init__(self, db):
        self.db = db
        self._partitions: dict[str, dict[Any, list[Callable[[tuple], bool]]]] = {}
        self._column_index: dict[str, int] = {}
        # Guards registration bookkeeping only.  The UDF read path
        # (:meth:`_call`) stays lock-free: it performs single dict
        # lookups, and :meth:`sync_prefix` replaces a key's partition
        # with one atomic assignment, so a concurrent reader sees the
        # old state or the new — never a missing key for an unchanged
        # guard.
        self._lock = threading.Lock()
        db.create_function(DELTA_UDF_NAME, self._call)

    @classmethod
    def for_database(cls, db) -> "DeltaOperator":
        existing = getattr(db, "_sieve_delta_operator", None)
        if existing is None:
            existing = cls(db)
            db._sieve_delta_operator = existing
        return existing

    # ------------------------------------------------------------- plumbing

    def _compile_partition(
        self, guard: Guard, table_name: str
    ) -> tuple[int, dict[Any, list[Callable[[tuple], bool]]]]:
        """Compile one guard's partition: (owner column position,
        owner-bucketed predicate closures).

        Policies are bucketed by their owner value so the tuple's owner
        retrieves only the policies that could possibly allow it — the
        paper's "reducing the number of policies checked per tuple".
        """
        table = self.db.catalog.table(table_name)
        schema_names = table.schema.names
        owner_pos = table.schema.index_of("owner")
        binding = RowBinding.for_table(table_name, schema_names)
        compiler = ExprCompiler(binding, udfs={}, subquery_fn=None)
        buckets: dict[Any, list[Callable[[tuple], bool]]] = defaultdict(list)
        for policy in guard.policies:
            if policy.has_derived_conditions:
                raise SieveError(
                    f"policy {policy.id} has derived conditions; Δ partitions must "
                    "be constant-only (the strategy selector inlines such partitions)"
                )
            non_owner = [oc.to_expr() for oc in policy.non_owner_conditions]
            expr = make_and(non_owner)
            fn = compiler.compile(expr) if expr is not None else (lambda row: True)
            owner_oc = policy.owner_condition
            owners = owner_oc.value if owner_oc.op == "IN" else [owner_oc.value]
            for owner in owners:
                buckets[owner].append(fn)
        return owner_pos, dict(buckets)

    def register_guard(self, guard_key: str, guard: Guard, table_name: str) -> None:
        """Compile and install one guard's partition for Δ evaluation."""
        owner_pos, buckets = self._compile_partition(guard, table_name)
        with self._lock:
            self._column_index[guard_key] = owner_pos
            self._partitions[guard_key] = buckets

    def sync_prefix(
        self, prefix: str, registrations: dict[str, tuple[Guard, str]]
    ) -> None:
        """Make ``prefix``'s registered key set exactly ``registrations``
        (``{guard_key: (guard, table_name)}``).

        Keys are *overwritten in place* and only then are stale keys
        dropped — unlike unregister-then-register there is no window in
        which a concurrently executing query's Δ call finds its key
        missing.  This is what lets the serving tier re-run the rewrite
        for one (querier, purpose) while an earlier rewrite's query is
        still executing.
        """
        compiled = {
            key: self._compile_partition(guard, table_name)
            for key, (guard, table_name) in registrations.items()
        }
        with self._lock:
            for key, (owner_pos, buckets) in compiled.items():
                self._column_index[key] = owner_pos
                self._partitions[key] = buckets
            stale = [
                k
                for k in self._partitions
                if k.startswith(prefix) and k not in registrations
            ]
            for key in stale:
                del self._partitions[key]
                del self._column_index[key]

    def unregister_prefix(self, prefix: str) -> None:
        """Drop all guard partitions whose key starts with ``prefix``
        (used when a guarded expression is regenerated)."""
        with self._lock:
            stale = [k for k in self._partitions if k.startswith(prefix)]
            for key in stale:
                del self._partitions[key]
                del self._column_index[key]

    @property
    def registered_keys(self) -> list[str]:
        with self._lock:
            return list(self._partitions)

    # ------------------------------------------------------------- the UDF

    def _call(self, guard_key: str, *column_values: Any) -> bool:
        partition = self._partitions.get(guard_key)
        if partition is None:
            raise SieveError(f"Δ called with unregistered guard key {guard_key!r}")
        owner = column_values[self._column_index[guard_key]]
        relevant = partition.get(owner)
        if not relevant:
            return False
        counters = self.db.counters
        row = tuple(column_values)
        for fn in relevant:
            counters.udf_policy_evals += 1
            if fn(row):
                return True
        return False
