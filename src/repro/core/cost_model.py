"""Sieve's cost model (paper Sections 4, 5.4, 6).

The model is parameterised by experimentally-determined constants:

* ``cr``    — cost of reading one tuple from disk;
* ``ce``    — cost of evaluating one policy's object conditions
  against one tuple;
* ``alpha`` — average fraction of a disjunctive policy list a tuple is
  checked against before it satisfies one (short-circuit OR);
* ``udf_invocation`` / ``udf_per_policy`` — Δ operator overheads;
* ``cg``    — guard-generation cost constant (Section 6).

Given those, ``cost(G_i) = ρ(oc_g) · (cr + α · |P_Gi| · ce)`` (Eq. 3),
the merge condition is ``ρ(x∩y)/ρ(x∪y) > ce/(cr+ce)`` (Eq. 8), and the
inline-vs-Δ decision compares ``α · |P_Gi| · ce`` against the UDF costs
(Section 5.4; the paper's measured crossover is |P_Gi| ≈ 120).

:func:`calibrate` measures the constants on the live engine exactly
the way Section 5.4 describes: table scans with and without inlined
policies for ``cr``/``ce``, counted short-circuit evaluations for
``alpha``, and Δ executions over varying partition sizes for the UDF
terms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.expr.eval import ExprCompiler, RowBinding
from repro.policy.model import Policy


@dataclass(frozen=True)
class SieveCostModel:
    """Calibrated constants driving every Sieve costing decision."""

    cr: float = 1.0  # read cost per tuple (arbitrary units)
    ce: float = 0.2  # policy-evaluation cost per tuple per policy
    alpha: float = 0.35  # avg fraction of a policy disjunction evaluated
    udf_invocation: float = 9.0  # Δ invocation overhead per tuple
    udf_per_policy: float = 0.05  # Δ per-relevant-policy evaluation cost
    cg: float = 500.0  # guard (re)generation cost constant (Section 6)
    #: Optional observed-selectivity profile (a
    #: :class:`~repro.obs.profile.SelectivityProfiler`).  Excluded from
    #: equality/hash: two models with identical constants are the same
    #: model whatever they have measured so far.
    profile: Any = field(default=None, compare=False, repr=False)

    # ----------------------------------------------------- paper equations

    def eval_cost(self, partition_size: int) -> float:
        """cost(eval(E(P_Gi), t)) = α · |P_Gi| · ce   (Eq. 2)."""
        return self.alpha * partition_size * self.ce

    def guard_cost(self, cardinality: float, partition_size: int) -> float:
        """cost(G_i) = ρ(oc_g) · (cr + α · |P_Gi| · ce)   (Eq. 3)."""
        return cardinality * (self.cr + self.eval_cost(partition_size))

    def guard_benefit(self, table_rows: float, cardinality: float, partition_size: int) -> float:
        """benefit(G_i) = ce · |P_Gi| · (|r_i| − ρ(oc_g))   (Section 4.2)."""
        return self.ce * partition_size * max(0.0, table_rows - cardinality)

    def guard_read_cost(self, cardinality: float) -> float:
        """Read-cost denominator of the utility heuristic."""
        return max(1e-9, cardinality * self.cr)

    def merge_threshold(self) -> float:
        """RHS of Eq. 8: merge two overlapping candidates iff
        ρ(x∩y)/ρ(x∪y) exceeds this."""
        return self.ce / (self.cr + self.ce)

    # ------------------------------------------------------- Δ vs inlining

    def inline_cost_per_tuple(self, partition_size: int) -> float:
        """cost(Guard&Inlining) per tuple (Section 5.4)."""
        return self.eval_cost(partition_size)

    def delta_cost_per_tuple(self, relevant_policies: float = 1.0) -> float:
        """cost(Guard&Δ) per tuple = UDF_inv + UDF_exec (Section 5.4).

        ``relevant_policies`` is the expected number of policies left
        after Δ filters by tuple context (usually ~ policies per owner).
        """
        return self.udf_invocation + relevant_policies * self.udf_per_policy

    def use_delta(self, partition_size: int, relevant_policies: float = 1.0) -> bool:
        """Choose Δ for a partition when it is the cheaper evaluation."""
        return self.delta_cost_per_tuple(relevant_policies) < self.inline_cost_per_tuple(
            partition_size
        )

    def delta_crossover(self, relevant_policies: float = 1.0) -> int:
        """Smallest partition size at which Δ wins (paper: ≈120)."""
        per_tuple = self.delta_cost_per_tuple(relevant_policies)
        denominator = self.alpha * self.ce
        return max(1, int(per_tuple / denominator) + 1)

    def with_overrides(self, **kwargs: float) -> "SieveCostModel":
        return replace(self, **kwargs)

    # --------------------------------------------- observed selectivities

    def attach_profile(self, profile: Any) -> Any:
        """Bind an observed-selectivity profile (the dataclass is
        frozen — the profile is working state, not a model constant,
        so it mutates in place rather than forking the model)."""
        object.__setattr__(self, "profile", profile)
        return profile

    def observe(self, table: str, guard_key: str, rows: float) -> None:
        """Feed one *measured* guard cardinality into the model.

        Lazily attaches a default
        :class:`~repro.obs.profile.SelectivityProfiler` on first use;
        :func:`~repro.core.strategy.choose_strategy` prefers these
        measured values over the statistics-derived estimates.
        """
        if self.profile is None:
            from repro.obs.profile import SelectivityProfiler

            self.attach_profile(SelectivityProfiler())
        self.profile.observe(table, guard_key, rows)

    def observed_guard_rows(self, table: str, guard_key: str) -> float | None:
        """The measured row count for one guard, or None when the
        model has no profile or the guard was never observed."""
        if self.profile is None:
            return None
        return self.profile.guard_rows(table, guard_key)


def calibrate(
    db,
    table_name: str,
    policies: Sequence[Policy],
    sample_limit: int = 2000,
    repeat: int = 3,
) -> SieveCostModel:
    """Measure cr / ce / alpha / UDF constants on the live engine.

    Follows Section 5.4: ``cr`` from a plain table scan, ``ce`` from
    the marginal cost of scans with increasing numbers of inlined
    policies, ``alpha`` by counting short-circuited policy checks, and
    the Δ terms from timed UDF micro-runs.
    """
    table = db.catalog.table(table_name)
    rows = [row for _, row in table.scan()][:sample_limit]
    if not rows or not policies:
        return SieveCostModel()
    binding = RowBinding.for_table(table_name, table.schema.names)
    compiler = ExprCompiler(binding)
    usable = [p for p in policies if not p.has_derived_conditions]
    if not usable:
        return SieveCostModel()
    compiled = [compiler.compile(p.object_expr()) for p in usable]

    # cr: wall time per tuple for a bare pass over the sample.
    start = time.perf_counter()
    for _ in range(repeat):
        for row in rows:
            pass
    cr = max(1e-9, (time.perf_counter() - start) / (repeat * len(rows)))

    # ce: marginal per-policy, per-tuple cost of evaluating OC lists.
    subset = compiled[: min(len(compiled), 32)]
    start = time.perf_counter()
    evaluations = 0
    for _ in range(repeat):
        for row in rows:
            for fn in subset:
                fn(row)
                evaluations += 1
    ce = max(1e-9, (time.perf_counter() - start) / max(1, evaluations))

    # alpha: average fraction of the disjunction evaluated before a hit
    # (tuples matching nothing count the full list, per Section 5.4).
    checks = 0
    for row in rows:
        for i, fn in enumerate(compiled):
            checks += 1
            if fn(row):
                break
    alpha = checks / (len(rows) * len(compiled))

    # UDF terms: a counted no-op invocation approximates dispatch cost.
    def _noop(*args: Any) -> bool:
        return True

    start = time.perf_counter()
    loops = repeat * len(rows)
    for _ in range(loops):
        _noop(1, 2, 3)
    udf_inv_raw = (time.perf_counter() - start) / max(1, loops)
    # Dispatch through the engine costs far more than a bare call; scale
    # by the engine's measured UDF overhead ratio (dominated by argument
    # evaluation and the counted wrapper).
    udf_invocation = max(udf_inv_raw * 50, cr * 5)

    return SieveCostModel(
        cr=cr,
        ce=ce,
        alpha=min(1.0, max(0.01, alpha)),
        udf_invocation=udf_invocation,
        udf_per_policy=ce * 0.5,
    )
