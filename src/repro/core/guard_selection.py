"""Guard selection — Algorithm 1 (paper Section 4.2).

Selecting the minimum-cost subset of candidate guards that covers every
policy exactly once is NP-hard (weighted set cover reduces to it), so
the paper uses a greedy heuristic ranking guards by

    utility(G_i) = benefit(G_i) / read_cost(G_i)
    benefit(G_i) = ce · |P_Gi| · (|r_i| − ρ(oc_g))
    read_cost(G_i) = ρ(oc_g) · cr

A max-priority queue is polled; the winner's policies are removed from
every remaining candidate's partition, whose utilities are then
recomputed and the candidates re-inserted.  Implemented with a lazy
heap: stale entries (whose partition shrank since insertion) are
re-scored and pushed back on pop instead of being rewritten in place.

The result covers every input policy exactly once — partitions are
disjoint by construction.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

from repro.common.errors import SieveError
from repro.core.candidate_gen import CandidateGuard
from repro.core.cost_model import SieveCostModel
from repro.core.guards import Guard
from repro.policy.model import Policy


def select_guards(
    candidates: Sequence[CandidateGuard],
    policies: Sequence[Policy],
    cost_model: SieveCostModel,
    table_rows: float,
) -> list[Guard]:
    """Greedy utility-ordered cover of ``policies`` by ``candidates``."""
    by_id = {p.id: p for p in policies}
    all_ids = set(by_id)
    reachable: set[int] = set()
    for candidate in candidates:
        reachable |= candidate.policy_ids
    missing = all_ids - reachable
    if missing:
        raise SieveError(
            f"policies {sorted(missing)} have no candidate guard; every policy "
            "must contribute at least its owner condition (Section 4.1)"
        )

    def utility(candidate: CandidateGuard, live_ids: set[int]) -> float:
        size = len(live_ids)
        if size == 0:
            return -1.0
        benefit = cost_model.guard_benefit(table_rows, candidate.cardinality, size)
        return benefit / cost_model.guard_read_cost(candidate.cardinality)

    # Lazy max-heap: (negated utility, tiebreak, partition size at push, candidate idx)
    live: list[set[int]] = [set(c.policy_ids) for c in candidates]
    counter = itertools.count()
    heap: list[tuple[float, int, int, int]] = []
    for idx, candidate in enumerate(candidates):
        score = utility(candidate, live[idx])
        heapq.heappush(heap, (-score, next(counter), len(live[idx]), idx))

    covered: set[int] = set()
    selected: list[Guard] = []
    while heap and covered != all_ids:
        neg_score, _, size_at_push, idx = heapq.heappop(heap)
        current = live[idx] - covered
        if not current:
            continue
        if len(current) != size_at_push:
            # Stale entry: partition shrank since it was scored. Re-score.
            live[idx] = current
            score = utility(candidates[idx], current)
            heapq.heappush(heap, (-score, next(counter), len(current), idx))
            continue
        live[idx] = current
        guard_policies = [by_id[pid] for pid in sorted(current)]
        size = len(guard_policies)
        guard = Guard(
            condition=candidates[idx].condition,
            policies=guard_policies,
            cardinality=candidates[idx].cardinality,
            cost=cost_model.guard_cost(candidates[idx].cardinality, size),
            benefit=cost_model.guard_benefit(table_rows, candidates[idx].cardinality, size),
            utility=-neg_score,
        )
        selected.append(guard)
        covered |= current

    if covered != all_ids:
        raise SieveError(
            f"guard selection failed to cover policies {sorted(all_ids - covered)}"
        )
    return selected


def total_cost(guards: Sequence[Guard]) -> float:
    """cost(G(P), G) = Σ cost(G_i)   (Eq. 1)."""
    return sum(g.cost for g in guards)
