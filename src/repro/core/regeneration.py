"""Dynamic policy churn and guard regeneration (paper Section 6).

When policies arrive continuously, regenerating G(P) on every insert
wastes work if no query runs in between, while never regenerating makes
queries pay for evaluating stale guards plus the k un-guarded new
policies.  The paper derives the optimal number of policy insertions
between regenerations:

    k̃ = sqrt( 4 · C_G / (ρ(oc_G) · α · ce · r_pq) )        (Eq. 19)

where ``C_G`` is the (constant-dominated) guard-generation cost,
``ρ(oc_G)`` the guard cardinality, ``α``/``ce`` the evaluation
constants, and ``r_pq`` the number of queries posed per policy insert.
Theorem 2 adds that regeneration should happen *immediately* at the
k-th insertion.

:class:`RegenerationController` implements that schedule on top of the
guard store's insert counters, and :func:`simulate_total_cost` replays
an insert/query trace under any interval choice so the Section-6 bench
can show the k̃ minimum.

The session guard cache (:mod:`repro.core.cache`) composes with this
schedule rather than overriding it: a policy mutation evicts the
affected cache entries, but on the next resolve the controller may
still defer the rebuild — the stale-but-acceptable expression is then
re-admitted to the cache at the current epoch, so deferral costs one
cache miss per mutation, not one per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.cost_model import SieveCostModel


def optimal_regeneration_interval(
    cost_model: SieveCostModel,
    guard_cardinality: float,
    queries_per_insert: float,
) -> int:
    """k̃ from Eq. 19 (at least 1)."""
    rho = max(1e-9, guard_cardinality)
    rpq = max(1e-9, queries_per_insert)
    k = math.sqrt(4.0 * cost_model.cg / (rho * cost_model.alpha * cost_model.ce * rpq))
    return max(1, round(k))


@dataclass
class RegenerationController:
    """Decides, per (querier, purpose, table), when to regenerate.

    ``decide(inserts_since_generation)`` returns True when the guard
    should be rebuilt now — i.e. the insert counter reached k̃
    (Theorem 2: regenerate immediately at the k-th insertion).
    """

    cost_model: SieveCostModel
    queries_per_insert: float = 1.0

    def interval_for(self, guard_cardinality: float) -> int:
        return optimal_regeneration_interval(
            self.cost_model, guard_cardinality, self.queries_per_insert
        )

    def decide(self, inserts_since_generation: int, guard_cardinality: float) -> bool:
        if inserts_since_generation <= 0:
            return False
        return inserts_since_generation >= self.interval_for(guard_cardinality)


def query_cost_with_stale_guards(
    cost_model: SieveCostModel,
    guard_cardinality: float,
    base_policies: int,
    stale_policies: int,
    query_predicates: int = 1,
) -> float:
    """cost(G, Q, P_k): evaluating a query when ``stale_policies`` have
    arrived since the last regeneration (Eq. 14/17 flavour).

    Stale policies cannot use guards, so each guard-selected tuple is
    additionally checked against them (their conditions ride along
    inlined, un-indexed).
    """
    per_tuple = cost_model.cr + cost_model.alpha * cost_model.ce * (
        base_policies + stale_policies + query_predicates
    )
    return guard_cardinality * per_tuple


def simulate_total_cost(
    cost_model: SieveCostModel,
    guard_cardinality: float,
    total_inserts: int,
    queries_per_insert: float,
    interval: int,
    base_policies: int = 0,
) -> float:
    """Total (query + regeneration) cost of processing ``total_inserts``
    policy arrivals while regenerating every ``interval`` inserts.

    Matches the Eq. 18 model: queries spread uniformly between inserts
    (r_pq per insert); each query pays for the *stale* (not yet
    guard-indexed) policies on top of the fixed base term ``|Pn|``;
    regeneration costs ``C_G`` and resets the stale term.  This is
    where the trade-off lives — small intervals buy cheap queries at
    high regeneration cost, large intervals the reverse.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    total = 0.0
    stale = 0
    for _ in range(total_inserts):
        stale += 1
        total += queries_per_insert * query_cost_with_stale_guards(
            cost_model, guard_cardinality, base_policies, stale
        )
        if stale >= interval:
            total += cost_model.cg
            stale = 0
    return total
