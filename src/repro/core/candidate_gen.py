"""Candidate guard generation (paper Section 4.1).

Every guard-eligible object condition becomes a candidate; overlapping
range conditions on the same indexed attribute are merged when Theorem
1's benefit condition holds::

    ρ(oc_x ∩ oc_y) / ρ(oc_x ∪ oc_y)  >  ce / (cr + ce)      (Eq. 8)

Disjoint ranges are never merged (Theorem 1), and the sorted sweep
stops extending a candidate at the first disjoint neighbour
(Corollaries 1.1 and 1.2), keeping generation near-linear after the
sort.  Merged candidates are *added* to the pool — the originals stay,
and the selection stage (Section 4.2) picks the cover.

Eligibility: the attribute is indexed and the value is a constant.
Equality conditions are degenerate ranges ``[v, v]`` so the same sweep
handles them (two equalities merge only when equal, as disjointness
forbids anything else).  IN-lists are eligible (they map to index
probes) but never merged.  Derived values are never eligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.common.intervals import Interval
from repro.core.cost_model import SieveCostModel
from repro.optimizer.stats import TableStats
from repro.policy.model import ObjectCondition, Policy


@dataclass
class CandidateGuard:
    """A potential guard: one indexable condition and the policies it
    could cover."""

    condition: ObjectCondition
    policy_ids: set[int] = field(default_factory=set)
    cardinality: float = 0.0  # ρ(condition), in rows

    @property
    def interval(self) -> Interval | None:
        return self.condition.interval()

    def __str__(self) -> str:
        return f"CG<{self.condition} ~{self.cardinality:.0f} rows, {len(self.policy_ids)} policies>"


def condition_cardinality(oc: ObjectCondition, stats: TableStats) -> float:
    """ρ(oc): estimated matching rows from the table's histogram."""
    cstats = stats.column(oc.attr)
    if cstats is None:
        return stats.row_count / 3.0
    if oc.op == "IN":
        return cstats.selectivity_in(list(oc.value)) * stats.row_count
    if oc.is_range:
        sel = cstats.selectivity_range(
            oc.value, oc.value2, oc.op == ">=", oc.op2 == "<="
        )
        return sel * stats.row_count
    if oc.op == "=":
        return cstats.selectivity_eq(oc.value) * stats.row_count
    if oc.op in (">", ">="):
        return (
            cstats.selectivity_range(oc.value, None, lo_inclusive=oc.op == ">=")
            * stats.row_count
        )
    if oc.op in ("<", "<="):
        return (
            cstats.selectivity_range(None, oc.value, hi_inclusive=oc.op == "<=")
            * stats.row_count
        )
    return stats.row_count / 3.0


def interval_cardinality(interval: Interval, stats: TableStats, attr: str) -> float:
    cstats = stats.column(attr)
    if cstats is None:
        return stats.row_count / 3.0
    return cstats.selectivity_range(interval.lo, interval.hi) * stats.row_count


def _eligible_conditions(
    policy: Policy, indexed_columns: frozenset[str]
) -> list[ObjectCondition]:
    out: list[ObjectCondition] = []
    for oc in policy.object_conditions:
        if not oc.is_constant:
            continue
        if oc.attr.lower() not in indexed_columns:
            continue
        if oc.op in ("!=", "NOT IN"):
            continue  # negations cannot serve as index filters
        out.append(oc)
    return out


def _normalize_to_interval(
    oc: ObjectCondition, stats: TableStats
) -> Interval | None:
    """Closed-interval view, widening open-ended comparisons with the
    column's observed min/max so they participate in the merge sweep."""
    direct = oc.interval()
    if direct is not None:
        return direct
    cstats = stats.column(oc.attr)
    if cstats is None or cstats.min_value is None:
        return None
    if oc.op in (">", ">="):
        if oc.value > cstats.max_value:
            return None
        return Interval(oc.value, cstats.max_value)
    if oc.op in ("<", "<="):
        if oc.value < cstats.min_value:
            return None
        return Interval(cstats.min_value, oc.value)
    return None


def _merge_beneficial(
    a: Interval,
    b: Interval,
    attr: str,
    stats: TableStats,
    cost_model: SieveCostModel,
) -> bool:
    """θ(oc_x, oc_y) ≠ φ  — the Eq. 8 check (requires overlap)."""
    intersection = a.intersection(b)
    if intersection is None:
        return False  # Theorem 1: disjoint merges are never beneficial
    union = a.hull(b)
    rho_union = interval_cardinality(union, stats, attr)
    if rho_union <= 0:
        return False
    rho_intersection = interval_cardinality(intersection, stats, attr)
    return rho_intersection / rho_union > cost_model.merge_threshold()


def generate_candidate_guards(
    policies: Sequence[Policy],
    indexed_columns: frozenset[str],
    stats: TableStats,
    cost_model: SieveCostModel | None = None,
) -> list[CandidateGuard]:
    """CG: all candidate guards for a policy set (Section 4.1)."""
    cost_model = cost_model or SieveCostModel()
    indexed_columns = frozenset(c.lower() for c in indexed_columns)

    # 1) Collect eligible conditions, deduplicating identical conditions
    #    into one candidate that covers all their policies.
    by_condition: dict[ObjectCondition, CandidateGuard] = {}
    by_attr: dict[str, list[CandidateGuard]] = {}
    for policy in policies:
        for oc in _eligible_conditions(policy, indexed_columns):
            candidate = by_condition.get(oc)
            if candidate is None:
                candidate = CandidateGuard(
                    condition=oc,
                    cardinality=condition_cardinality(oc, stats),
                )
                by_condition[oc] = candidate
                by_attr.setdefault(oc.attr.lower(), []).append(candidate)
            candidate.policy_ids.add(policy.id)

    out: list[CandidateGuard] = list(by_condition.values())

    # 2) Per attribute: sorted sweep producing beneficial merged ranges.
    for attr, candidates in by_attr.items():
        rangeable: list[tuple[Interval, CandidateGuard]] = []
        for candidate in candidates:
            interval = _normalize_to_interval(candidate.condition, stats)
            if interval is None:
                continue
            if not isinstance(interval.lo, (int, float)) or isinstance(interval.lo, bool):
                continue  # only numeric ranges merge
            rangeable.append((interval, candidate))
        if len(rangeable) < 2:
            continue
        rangeable.sort(key=lambda pair: (pair[0].lo, pair[0].hi))
        merged = _sweep_merge(rangeable, attr, stats, cost_model)
        out.extend(merged)
    return out


def _sweep_merge(
    rangeable: list[tuple[Interval, CandidateGuard]],
    attr: str,
    stats: TableStats,
    cost_model: SieveCostModel,
) -> list[CandidateGuard]:
    """The sorted merge sweep with the Corollary 1.1/1.2 cut-off.

    Per anchor we emit only the *final* accumulated hull, not every
    intermediate merge: intermediates are dominated (same policies or
    fewer, similar cardinality) and keeping them makes |CG| quadratic
    in dense corpora.  The selection stage still sees all originals
    plus one best transitive merge per anchor.
    """
    produced: list[CandidateGuard] = []
    seen_spans: set[tuple] = {(iv.lo, iv.hi) for iv, _ in rangeable}
    n = len(rangeable)
    for i in range(n):
        acc_interval, acc_candidate = rangeable[i]
        acc_ids = set(acc_candidate.policy_ids)
        merged_any = False
        for j in range(i + 1, n):
            nxt_interval, nxt_candidate = rangeable[j]
            if not acc_interval.overlaps(nxt_interval):
                break  # Corollary 1.2: later candidates start even further right
            if not _merge_beneficial(acc_interval, nxt_interval, attr, stats, cost_model):
                continue
            acc_interval = acc_interval.hull(nxt_interval)
            acc_ids |= nxt_candidate.policy_ids
            merged_any = True
        if not merged_any:
            continue
        span = (acc_interval.lo, acc_interval.hi)
        if span in seen_spans:
            continue
        seen_spans.add(span)
        condition = ObjectCondition(
            attr=attr,
            op=">=",
            value=acc_interval.lo,
            op2="<=",
            value2=acc_interval.hi,
        )
        produced.append(
            CandidateGuard(
                condition=condition,
                policy_ids=set(acc_ids),
                cardinality=interval_cardinality(acc_interval, stats, attr),
            )
        )
    return produced
