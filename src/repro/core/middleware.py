"""The Sieve middleware facade (paper Section 5).

Usage::

    db = connect("mysql")
    ... create tables, load data, create indexes ...
    store = PolicyStore(db, groups)
    store.insert_many(policies)
    sieve = Sieve(db, store)
    result = sieve.execute(
        "SELECT * FROM WiFi_Dataset WHERE ts_date BETWEEN 10 AND 20",
        querier="Prof.Smith",
        purpose="analytics",
    )

Per query, Sieve:

1. filters the policy corpus by query metadata (querier, purpose) —
   the PQM filter of Section 3.2;
2. fetches (or lazily regenerates, Section 6) the guarded expression
   for each referenced relation;
3. chooses LinearScan / IndexQuery / IndexGuards and per-guard Δ
   (Sections 5.4-5.5);
4. rewrites the query with enforcement CTEs (Section 5.3) and runs it
   on the underlying database.

Steps 1-2 are amortized across queries by the session guard cache
(:mod:`repro.core.cache`): repeated queries by the same (querier,
purpose) resolve each relation from a policy-epoch-validated LRU
instead of re-filtering the corpus.  Use :meth:`Sieve.session` for an
explicit per-querier handle with batched ``execute_many``; the plain
``execute`` entry points route through the same cache.

Relations where the querier holds no applicable policies come back
empty (opt-out default-deny, Section 3.1).

Without a backend, the rewrite runs on the bundled engine's
vectorized batch executor (:mod:`repro.engine.vector`) — the
database's default mode — falling back tuple-at-a-time per plan
subtree where batching does not apply; ``SieveExecution.engine``
records the serving tier/mode.  Pass ``backend=`` (a
:class:`repro.backend.Backend`, e.g. ``SqliteBackend().ship(db)``) to
execute the rewritten queries on a real DBMS instead — the rewrite is
printed in the backend's SQL dialect and shipped there, mirroring how
the paper's Experiments 4-5 run Sieve's output on actual
MySQL/PostgreSQL servers.

See ``docs/ARCHITECTURE.md`` for the end-to-end dataflow.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Any

from repro.audit import AuditLog, Explanation, explain_row, make_payload, result_digest
from repro.common.errors import SieveError
from repro.core.cache import (
    DEFAULT_GUARD_CACHE_CAPACITY,
    DEFAULT_PLAN_CACHE_CAPACITY,
    DEFAULT_REWRITE_CACHE_CAPACITY,
    GuardCache,
    PlanCache,
    RewriteCache,
    SieveSession,
)
from repro.core.cost_model import SieveCostModel, calibrate
from repro.core.delta import DELTA_UDF_NAME, DeltaOperator
from repro.core.generation import build_guarded_expression
from repro.core.guard_store import GuardStore
from repro.core.guards import GuardedExpression
from repro.core.regeneration import RegenerationController
from repro.core.rewriter import (
    RewriteInfo,
    SieveRewriter,
    collect_table_names,
    query_predicates_for,
)
from repro.core.strategy import StrategyDecision, choose_strategy
from repro.engine.executor import QueryResult
from repro.expr.nodes import ColumnRef, Star
from repro.expr.params import collect_params, bind_query, normalize_bindings
from repro.obs.tracing import SlowQueryLog, Tracer, current_trace_id, span
from repro.policy.store import PolicyStore
from repro.sql.ast import Query, Select
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql


def _is_plain_select(query: Query) -> bool:
    """A bare projection — no aggregates, grouping, DISTINCT or LIMIT.

    Only these shapes let the selectivity profiler equate "rows
    admitted" with "rows surviving the guard disjunction" (the engine
    charges ``tuples_output`` for the *final* result, which for a
    ``COUNT(*)`` is one row whatever the guards admitted)."""
    body = query.body
    if not isinstance(body, Select):
        return False
    if body.group_by or body.having or body.distinct or body.limit is not None:
        return False
    return all(isinstance(item.expr, (Star, ColumnRef)) for item in body.items)


@dataclass(frozen=True)
class QueryMetadata:
    """QM: the context Sieve reads off an incoming query (Section 3.1)."""

    querier: Any
    purpose: str


@dataclass
class SieveExecution:
    """Result of one middleware execution, with full bookkeeping."""

    result: QueryResult
    rewrite: RewriteInfo
    metadata: QueryMetadata
    policies_considered: int = 0
    regenerated_tables: list[str] = field(default_factory=list)
    middleware_ms: float = 0.0
    execution_ms: float = 0.0
    #: Which execution tier served the query: ``"backend"`` (external
    #: DBMS) or the bundled engine's configured mode — ``"vectorized"``
    #: / ``"tuple"``.  For the bundled engine this reports the
    #: database-wide mode; individual plan subtrees may still have run
    #: tuple-at-a-time via the per-node fallback rules.
    engine: str = ""
    #: The policy epoch this request planned against — the epoch of the
    #: :class:`~repro.policy.store.PolicySnapshot` taken at admission
    #: (a partition-local epoch when serving from a cluster shard).
    #: The audit tier records it so replay can pin the same corpus view.
    policy_epoch: int = -1
    #: The id of the ``sieve.query`` root span this execution ran
    #: under — empty when tracing is off.  Also stamped into the audit
    #: payload so a slow trace and its decision record correlate.
    trace_id: str = ""


class Sieve:
    """The middleware: intercepts queries, rewrites, executes."""

    def __init__(
        self,
        db,
        policy_store: PolicyStore,
        cost_model: SieveCostModel | None = None,
        regeneration: RegenerationController | None = None,
        guard_cache_capacity: int = DEFAULT_GUARD_CACHE_CAPACITY,
        backend=None,
        rewrite_cache_capacity: int = 0,
        plan_cache_capacity: int = 0,
        audit: AuditLog | None = None,
    ):
        self.db = db
        self.policy_store = policy_store
        self.cost_model = cost_model or SieveCostModel()
        self.delta = DeltaOperator.for_database(db)
        self.guard_store = GuardStore(db, policy_store)
        self.regeneration = regeneration
        self.guard_cache = GuardCache(capacity=guard_cache_capacity)
        # Full-rewrite memoization for the serving tier; 0 = off (the
        # default) so a bare Sieve keeps per-query counter semantics.
        self.rewrite_cache = (
            RewriteCache(capacity=rewrite_cache_capacity)
            if rewrite_cache_capacity
            else None
        )
        # Prepared-query tier: post-rewrite, post-plan artifacts keyed
        # by (querier, purpose, template, binding values) — see
        # :class:`~repro.core.cache.PlanCache`.  0 = off; the first
        # :meth:`prepare` call turns it on.
        self.plan_cache = (
            PlanCache(capacity=plan_cache_capacity) if plan_cache_capacity else None
        )
        # Optional audit tier (repro.audit): every execution appends a
        # hash-chained DecisionRecord.  None = off (zero cost).
        self.audit: AuditLog | None = None
        if audit is not None:
            self.enable_audit(audit)
        # Optional observability tier (repro.obs): span tracing, slow
        # query capture, observed-selectivity feedback.  All None = off
        # (span() degrades to a shared no-op scope on the hot path).
        self.tracer: Tracer | None = None
        self.slow_query_log: SlowQueryLog | None = None
        self.profiler = None
        # Optional real-DBMS execution tier (repro.backend).  The whole
        # middleware pipeline — PQM filter, guard cache, strategy,
        # rewrite, Δ registration — is unchanged; only the final
        # execution hops engines.  Strategy choice and rewrite shape
        # follow the personality of the engine that will actually run
        # the query (Section 5.3), so a backend's declared personality
        # overrides the bundled one.  The Δ UDF's counted wrapper is
        # (re-)registered here so it exists even when the backend was
        # shipped before this Sieve (and its DeltaOperator) was built.
        self.backend = backend
        self.execution_personality = (
            getattr(backend, "personality", None) or db.personality
        )
        self.rewriter = SieveRewriter(
            db,
            self.delta,
            personality=self.execution_personality,
            dialect=backend.dialect if backend is not None else None,
        )
        if backend is not None:
            backend.register_udf(DELTA_UDF_NAME, db.function(DELTA_UDF_NAME))
        # Register weakly: short-lived Sieve instances over a long-lived
        # store must not be pinned (and kept invalidating) forever by the
        # store's listener list.  A hook that finds its Sieve collected
        # deregisters itself.
        self_ref = weakref.ref(self)

        def _mutation_hook(kind: str, policy, epoch: int) -> None:
            live = self_ref()
            if live is None:
                policy_store.remove_mutation_listener(_mutation_hook)
                return
            live._on_policy_mutation(kind, policy, epoch)

        policy_store.add_mutation_listener(_mutation_hook, with_epoch=True)

    # ------------------------------------------------------------- sessions

    def session(self, querier: Any, purpose: str) -> SieveSession:
        """A session handle for one (querier, purpose) — Section 3.2's
        QM pair, the natural unit of amortization.  Handles are
        stateless views over the shared guard cache, so they are cheap
        to create and any number may coexist."""
        return SieveSession(self, querier, purpose)

    def enable_audit(self, log: AuditLog | None = None) -> AuditLog:
        """Attach an append-only decision log (idempotent).

        Binds the log's bookkeeping counters to this database's and
        enables snapshot retention on the policy store so every epoch a
        record names stays replayable
        (:meth:`~repro.policy.store.PolicyStore.snapshot_at`).  From
        here on every ``execute_with_info`` chains one
        :class:`~repro.audit.DecisionRecord` — cache hits and cold
        misses alike, since the record is built from the
        :class:`~repro.core.rewriter.RewriteInfo` both paths share.
        """
        if self.audit is None:
            self.audit = log if log is not None else AuditLog()
            if self.audit.counters is None:
                self.audit.counters = self.db.counters
            retain = getattr(self.policy_store, "retain_snapshots", None)
            if retain is not None:
                retain()
        return self.audit

    def enable_rewrite_cache(
        self, capacity: int = DEFAULT_REWRITE_CACHE_CAPACITY
    ) -> RewriteCache:
        """Turn on full-rewrite memoization (idempotent); the serving
        tier calls this so repeated identical queries skip parse →
        strategy → rewrite → print once guards are warm."""
        if self.rewrite_cache is None:
            self.rewrite_cache = RewriteCache(capacity=capacity)
        return self.rewrite_cache

    def enable_plan_cache(
        self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY
    ) -> PlanCache:
        """Turn on the prepared-query plan cache (idempotent).

        :meth:`prepare` calls this implicitly, so an explicit call is
        only needed to size the cache before traffic arrives."""
        if self.plan_cache is None:
            self.plan_cache = PlanCache(capacity=capacity)
        return self.plan_cache

    def enable_tracing(
        self, tracer: Tracer | None = None, slow_query_ms: float | None = None
    ) -> Tracer:
        """Attach a span tracer (idempotent).

        Every subsequent ``execute``/``execute_with_info`` opens a
        ``sieve.query`` root span; the pipeline stages (prepare, guard
        resolve, strategy, rewrite, plan, run) nest under it, and the
        finished tree lands in the tracer's ring buffer.  Pass a
        shared ``tracer`` to aggregate several Sieve instances (the
        cluster tier does).  ``slow_query_ms`` additionally retains
        the full span tree of any query slower than the threshold in
        a :class:`~repro.obs.tracing.SlowQueryLog`.
        """
        if self.tracer is None:
            self.tracer = tracer if tracer is not None else Tracer()
        if slow_query_ms is not None and self.slow_query_log is None:
            self.slow_query_log = SlowQueryLog(threshold_ms=slow_query_ms)
            self.tracer.on_finish(self.slow_query_log.observe)
        return self.tracer

    def enable_profiling(self, profiler=None):
        """Close the selectivity feedback loop (idempotent).

        Ensures tracing is on, subscribes a
        :class:`~repro.obs.profile.SelectivityProfiler` to finished
        traces, and attaches it to the cost model so
        :func:`~repro.core.strategy.choose_strategy` prefers measured
        guard cardinalities over statistics estimates.
        """
        tracer = self.enable_tracing()
        if self.profiler is None:
            from repro.obs.profile import SelectivityProfiler

            self.profiler = profiler if profiler is not None else SelectivityProfiler()
            tracer.on_finish(self.profiler.on_trace)
            self.cost_model.attach_profile(self.profiler)
        return self.profiler

    def _on_policy_mutation(self, kind: str, policy, epoch: int | None = None) -> None:
        """Targeted guard-cache invalidation on corpus mutations.

        ``epoch`` is the mutated-to version of *this* event; events are
        dispatched after the store's write lock drops, so the live
        ``store.epoch`` may already be ahead (e.g. the second event of
        a cross-querier update) and re-stamping against it would strand
        unrelated warm entries one epoch short."""
        if epoch is None:
            epoch = self.policy_store.epoch
        self.guard_cache.on_policy_mutation(
            kind, policy, epoch, self.policy_store.groups
        )
        if self.plan_cache is not None:
            self.plan_cache.on_policy_mutation(
                kind, policy, epoch, self.policy_store.groups
            )

    def invalidate_caches(self) -> int:
        """Drop all cached guard state — the LRU tier, the rewrite
        memo, and the guard store's expressions (e.g. after editing
        the group directory, which does not bump the policy epoch;
        state built under the old membership must not survive any
        tier)."""
        dropped = self.guard_cache.clear()
        if self.rewrite_cache is not None:
            dropped += self.rewrite_cache.clear()
        if self.plan_cache is not None:
            dropped += self.plan_cache.clear()
        dropped += self.guard_store.invalidate()
        return dropped

    # ------------------------------------------------------------- plumbing

    def calibrate(self, table_name: str, sample_limit: int = 2000) -> SieveCostModel:
        """Re-derive the cost constants from the live engine (Section 5.4)."""
        policies = [
            p
            for p in self.policy_store.all_policies()
            if p.table.lower() == table_name.lower()
        ]
        self.cost_model = calibrate(self.db, table_name, policies, sample_limit)
        return self.cost_model

    def guarded_expression_for(
        self,
        querier: Any,
        purpose: str,
        table: str,
        force_rebuild: bool = False,
        snapshot=None,
    ) -> tuple[GuardedExpression, bool]:
        """Fetch/build G(P) for one (querier, purpose, relation).

        ``snapshot`` (a :class:`~repro.policy.store.PolicySnapshot`)
        pins the corpus the build reads; without one the live store is
        consulted.  The whole decide-and-build sequence runs under the
        guard store's lock — guard persistence writes rGE/rGG/rGP rows
        into the bundled engine, which is not safe to mutate from two
        threads (builds are the amortized-away cold path, so the
        serialization never sits on warm-path queries)."""

        def builder() -> GuardedExpression:
            source = snapshot if snapshot is not None else self.policy_store
            policies = source.policies_for(querier, purpose, table)
            heap = self.db.catalog.table(table)
            return build_guarded_expression(
                policies,
                self.db.stats.get(heap),
                frozenset(self.db.catalog.indexed_columns(table)),
                self.cost_model,
                querier=querier,
                purpose=purpose,
                table=heap.name,
            )

        force = force_rebuild
        with self.guard_store.lock:
            if not force and self.regeneration is not None:
                # Section 6: defer regeneration until the k-th insertion.
                if self.guard_store.is_outdated(querier, purpose, table):
                    cached = self.guard_store.peek(querier, purpose, table)
                    if cached is not None:
                        inserts = self.guard_store.inserts_since_generation(
                            querier, purpose, table
                        )
                        avg_cardinality = cached.total_cardinality / max(1, len(cached.guards))
                        if not self.regeneration.decide(inserts, avg_cardinality):
                            return cached, False
            return self.guard_store.get_or_build(
                querier, purpose, table, builder, force_rebuild=force
            )

    # ------------------------------------------------------------ execution

    def _prepare(
        self, sql: str | Query, querier: Any, purpose: str
    ) -> tuple[SieveExecution, Query]:
        """Run the middleware pipeline up to (not including) execution.

        Per-relation policy filtering and guard fetch go through the
        session guard cache; only parse, strategy choice and rewrite
        remain per-query work on the warm path.  The whole request
        plans against one policy snapshot, so concurrent mutations can
        never show a query a half-applied corpus (an update's delete
        and re-insert are observed together or not at all)."""
        start = time.perf_counter()
        metadata = QueryMetadata(querier=querier, purpose=purpose)
        with span("middleware.prepare") as prep:
            snapshot = self.policy_store.snapshot()

            # Serving-tier fast path: an identical (querier, purpose, SQL
            # text) at an unchanged epoch reuses the finished rewrite —
            # parse, strategy, rewrite and printing all skipped.
            if self.rewrite_cache is not None and isinstance(sql, str):
                cached = self.rewrite_cache.get(querier, purpose, sql, snapshot.epoch)
                if cached is not None:
                    prep.set(cached=True)
                    execution = SieveExecution(
                        result=QueryResult(columns=[], rows=[]),
                        rewrite=cached.info,
                        metadata=metadata,
                        policies_considered=cached.policies_considered,
                        middleware_ms=(time.perf_counter() - start) * 1000.0,
                        policy_epoch=snapshot.epoch,
                    )
                    return execution, cached.rewritten

            session = self.session(querier, purpose)
            with span("parse"):
                query = parse_query(sql) if isinstance(sql, str) else sql

            protected = snapshot.tables_with_policies()
            targets = sorted(collect_table_names(query) & protected)

            expressions: dict[str, GuardedExpression] = {}
            decisions: dict[str, StrategyDecision] = {}
            denied: set[str] = set()
            regenerated: list[str] = []
            policies_considered = 0

            for table_name in targets:
                entry, rebuilt = session.resolve(table_name, snapshot=snapshot)
                policies_considered += len(entry.policies)
                if entry.expression is None:
                    denied.add(table_name)
                    continue
                expression = entry.expression
                if rebuilt:
                    regenerated.append(table_name)
                heap = self.db.catalog.table(table_name)
                qpreds = query_predicates_for(
                    query, table_name, {c.lower() for c in heap.schema.names}
                )
                with span("strategy", table=table_name) as st:
                    decisions[table_name] = choose_strategy(
                        self.db,
                        table_name,
                        expression,
                        qpreds,
                        self.cost_model,
                        personality=self.execution_personality,
                    )
                    st.set(strategy=decisions[table_name].strategy.value)
                expressions[table_name] = expression

            rewritten, info = self.rewriter.rewrite(query, expressions, decisions, denied)
            if self.rewrite_cache is not None and isinstance(sql, str):
                self.rewrite_cache.put(
                    querier,
                    purpose,
                    sql,
                    snapshot.epoch,
                    rewritten,
                    info,
                    policies_considered,
                )
            middleware_ms = (time.perf_counter() - start) * 1000.0
            execution = SieveExecution(
                result=QueryResult(columns=[], rows=[]),
                rewrite=info,
                metadata=metadata,
                policies_considered=policies_considered,
                regenerated_tables=regenerated,
                middleware_ms=middleware_ms,
                policy_epoch=snapshot.epoch,
            )
            return execution, rewritten

    def rewrite(self, sql: str | Query, querier: Any, purpose: str) -> Query:
        """The enforcement rewrite as an AST (without executing it)."""
        _execution, rewritten = self._prepare(sql, querier, purpose)
        return rewritten

    def execute(self, sql: str | Query, querier: Any, purpose: str) -> QueryResult:
        """Enforce policies and run the query; the common entry point."""
        return self.execute_with_info(sql, querier, purpose).result

    def execute_with_info(self, sql: str | Query, querier: Any, purpose: str) -> SieveExecution:
        if self.tracer is None:
            return self._execute_with_info(sql, querier, purpose)[0]
        with self.tracer.trace(
            "sieve.query", querier=str(querier), purpose=purpose
        ) as root:
            execution, rewritten = self._execute_with_info(sql, querier, purpose)
            execution.trace_id = root.trace_id
            self._annotate_root_span(root, execution, rewritten)
        return execution

    @staticmethod
    def _annotate_root_span(root, execution: SieveExecution, rewritten: Query) -> None:
        root.set(
            engine=execution.engine,
            policy_epoch=execution.policy_epoch,
            rows_admitted=len(execution.result.rows),
            plain_select=_is_plain_select(rewritten),
            enforcement={
                table: {
                    "strategy": decision.strategy.value,
                    "guard_keys": list(execution.rewrite.guard_keys.get(table, ())),
                    "est_rows": list(decision.guard_est_rows),
                    "query_conjuncts": decision.query_conjuncts,
                }
                for table, decision in execution.rewrite.decisions.items()
            },
        )

    def _execute_with_info(
        self, sql: str | Query, querier: Any, purpose: str
    ) -> tuple[SieveExecution, Query]:
        execution, rewritten = self._prepare(sql, querier, purpose)
        self._finish_execution(sql, execution, rewritten)
        return execution, rewritten

    def _finish_execution(
        self,
        sql: str | Query,
        execution: SieveExecution,
        rewritten: Query,
        planned=None,
    ) -> SieveExecution:
        """Run a finished rewrite and record the audit/tracing delta.

        ``planned`` is the prepared-query fast path: an already-built
        :class:`~repro.optimizer.planner.PlannedQuery` executed via
        ``db.run_plan`` so a warm hit skips planning too.  Audit scopes
        its counter delta around *execution only*: guard generation /
        strategy / rewrite / planning charge no enforcement counters,
        so the recorded delta is identical for cache-hit and cold paths
        — the cache-transparency the replay oracle depends on.
        Snapshot/diff is a fixed-size dict pass over repro.db.counters,
        so the hot-path cost stays O(1).  Tracing wants the same delta
        (the profiler reads it off the execute span), so it is taken
        whenever either consumer is on."""
        need_delta = self.audit is not None or self.tracer is not None
        before = self.db.counters.snapshot() if need_delta else None
        with span("execute") as ex_span:
            if self.backend is not None:
                # RewriteInfo.sql is already printed in the backend's
                # dialect by the rewriter — exactly the text the engine
                # sees, and printing stays out of the timed window so
                # execution_ms is comparable with the bundled path's.
                start = time.perf_counter()
                execution.result = self.backend.execute(execution.rewrite.sql)
                execution.execution_ms = (time.perf_counter() - start) * 1000.0
                execution.engine = "backend"
                counters = self.db.counters
                counters.backend_queries += 1
                counters.backend_rows += len(execution.result.rows)
            else:
                start = time.perf_counter()
                if planned is not None:
                    execution.result = self.db.run_plan(planned)
                else:
                    execution.result = self.db.execute(rewritten)
                execution.execution_ms = (time.perf_counter() - start) * 1000.0
                execution.engine = (
                    "vectorized" if getattr(self.db, "vectorized", False) else "tuple"
                )
        if before is not None:
            delta = self.db.counters.diff(before)
            ex_span.set(
                engine=execution.engine,
                tuples_scanned=delta["tuples_scanned"],
                tuples_output=delta["tuples_output"],
            )
            if self.audit is not None:
                with span("audit.record"):
                    self._record_decision(sql, execution, delta)
        return execution

    def _record_decision(
        self, sql: str | Query, execution: SieveExecution, delta: dict[str, int]
    ) -> None:
        """Chain one DecisionRecord for a finished execution."""
        info = execution.rewrite
        rows = execution.result.rows
        denied = max(0, delta["tuples_scanned"] - delta["tuples_output"])
        payload = make_payload(
            querier=execution.metadata.querier,
            purpose=execution.metadata.purpose,
            sql=sql if isinstance(sql, str) else to_sql(sql),
            policy_epoch=execution.policy_epoch,
            engine=execution.engine,
            strategies={
                table: decision.strategy.value
                for table, decision in info.decisions.items()
            },
            guards_fired=info.guard_keys,
            delta_guards={
                table: sorted(decision.delta_guards)
                for table, decision in info.decisions.items()
            },
            denied_tables=info.denied_tables,
            rows_admitted=len(rows),
            rows_denied=denied,
            digest=result_digest(rows),
            counters=delta,
            trace_id=current_trace_id() or "",
        )
        self.audit.record(payload)

    # ------------------------------------------------------ prepared queries

    def prepare(self, sql: str | Query, querier: Any, purpose: str) -> "PreparedQuery":
        """Parse once, execute many: a :class:`PreparedQuery` handle.

        ``sql`` may contain ``?`` positional and ``:name`` parameters;
        each :meth:`PreparedQuery.execute` binds a value vector and
        runs the full enforcement pipeline, memoizing the post-rewrite,
        post-plan artifact in the plan cache (enabled here if it is not
        already).  Repeated executions with the same values — including
        every execution of a zero-parameter query — skip parse,
        strategy, rewrite and planning entirely while staying row- and
        counter-identical to the unprepared path, and the cache is
        fenced to the policy epoch and catalog/stats version so a
        policy or schema change is never served a stale plan.
        """
        self.enable_plan_cache()
        template = parse_query(sql) if isinstance(sql, str) else sql
        return PreparedQuery(self, template, querier, purpose)

    def _prepared_execute(
        self, prepared: "PreparedQuery", params
    ) -> tuple[SieveExecution, Query]:
        values = normalize_bindings(prepared.params, params)
        start = time.perf_counter()
        metadata = QueryMetadata(querier=prepared.querier, purpose=prepared.purpose)
        cache = self.plan_cache
        snapshot = self.policy_store.snapshot()
        plan_version = self.db.plan_version
        counters = self.db.counters

        def build():
            bound = bind_query(prepared.template, values)
            execution, rewritten = self._prepare(
                bound, prepared.querier, prepared.purpose
            )
            planned = None if self.backend is not None else self.db.plan(rewritten)
            if cache is not None:
                # Stamp the entry with the epoch and plan version the
                # pipeline *actually* saw (``_prepare`` snapshots the
                # store itself, and planning may lazily rebuild stats).
                entry = cache.put(
                    prepared.querier,
                    prepared.purpose,
                    prepared.template_key,
                    values,
                    execution.policy_epoch,
                    self.db.plan_version,
                    rewritten,
                    planned,
                    execution.rewrite,
                    execution.policies_considered,
                    collect_table_names(bound),
                )
            else:  # pragma: no cover - prepare() always enables the cache
                entry = None
            return entry, (execution, rewritten, bound, planned)

        with span("middleware.prepare") as prep:
            if cache is not None:
                entry, built, hit = cache.resolve(
                    prepared.querier,
                    prepared.purpose,
                    prepared.template_key,
                    values,
                    snapshot.epoch,
                    plan_version,
                    build,
                )
                cache.charge(counters, hit)
                prep.set(cached=hit, template=prepared.template_key)
            else:  # pragma: no cover - prepare() always enables the cache
                entry, built = build()
                hit = False
            if built is not None:
                execution, rewritten, bound, planned = built
            else:
                # Warm hit (or coalesced follower): rebuild the view of
                # the execution from the entry — the same bookkeeping
                # the cold path produced, so audit records stay
                # cache-transparent.
                rewritten = entry.rewritten
                planned = entry.planned
                bound = None
                execution = SieveExecution(
                    result=QueryResult(columns=[], rows=[]),
                    rewrite=entry.info,
                    metadata=metadata,
                    policies_considered=entry.policies_considered,
                    middleware_ms=(time.perf_counter() - start) * 1000.0,
                    policy_epoch=entry.epoch,
                )
        if bound is None:
            # The audit record wants the bound statement (replay reruns
            # it); binding is only worth paying for when auditing.
            sql_for_audit: str | Query = (
                bind_query(prepared.template, values)
                if self.audit is not None
                else prepared.template_key
            )
        else:
            sql_for_audit = bound
        self._finish_execution(sql_for_audit, execution, rewritten, planned=planned)
        return execution, rewritten

    def rewritten_sql(self, sql: str | Query, querier: Any, purpose: str) -> str:
        """The enforcement rewrite as SQL text (for inspection/docs) —
        printed in the backend's dialect when one is attached, i.e.
        exactly the text the executing engine will see."""
        return to_sql(self.rewrite(sql, querier, purpose), dialect=self.rewriter.dialect)

    # ------------------------------------------------------------ explanation

    def _explain_table(self, target: str | Query) -> str:
        """Resolve an explain target — a bare table name, or a query
        whose (single) policy-protected relation is meant."""
        if isinstance(target, str) and self.db.catalog.has_table(target):
            return self.db.catalog.table(target).name
        query = parse_query(target) if isinstance(target, str) else target
        names = collect_table_names(query)
        protected = sorted(names & self.policy_store.snapshot().tables_with_policies())
        if len(protected) == 1:
            return protected[0]
        if not protected and len(names) == 1:
            return next(iter(names))  # explanation will report default deny
        raise SieveError(
            f"cannot pick the relation to explain: query references "
            f"{sorted(names)} with {len(protected)} policy-protected "
            f"relation(s); pass the table name directly"
        )

    def explain_decision(
        self, querier: Any, target: str | Query, row, purpose: str
    ) -> Explanation:
        """Why this row is admitted/denied for (querier, purpose).

        ``target`` is a relation name or a query over exactly one
        policy-protected relation; ``row`` is a full tuple of that
        relation (schema-ordered sequence, or a mapping by column
        name).  The trace is built from the *same* guard structures
        the enforcement rewrite uses — resolved through the session
        guard cache against the current policy snapshot — so the named
        guards and policies are the ones a query right now would be
        rewritten with (see :mod:`repro.audit.explain`).
        """
        table = self._explain_table(target)
        snapshot = self.policy_store.snapshot()
        protected = snapshot.tables_with_policies()
        heap = self.db.catalog.table(table)
        if table.lower() in protected:
            entry, _rebuilt = self.session(querier, purpose).resolve(
                table.lower(), snapshot=snapshot
            )
            policies, expression = entry.policies, entry.expression
        else:
            policies, expression = [], None
        return explain_row(
            querier=querier,
            purpose=purpose,
            table=heap.name,
            columns=list(heap.schema.names),
            row=row,
            policies=policies,
            expression=expression,
            db=self.db,
        )

    def explain_denial(
        self, querier: Any, query: str | Query, row, purpose: str
    ) -> Explanation:
        """Explain why ``row`` is **denied** — names the guards whose
        conditions fail and, per policy, the first object condition
        that does not hold.  Raises
        :class:`~repro.common.errors.SieveError` if the row is in fact
        admitted (the caller is asking the wrong question, and an
        explanation of the opposite verdict would mislead)."""
        explanation = self.explain_decision(querier, query, row, purpose)
        if explanation.admitted:
            raise SieveError(
                f"row is admitted for querier {querier!r} by policies "
                f"{list(explanation.matched_policies)}; use explain_admission"
            )
        return explanation

    def explain_admission(
        self, querier: Any, query: str | Query, row, purpose: str
    ) -> Explanation:
        """Explain why ``row`` is **admitted** — names the matching
        policies and the guards that fired.  Raises
        :class:`~repro.common.errors.SieveError` if the row is in fact
        denied."""
        explanation = self.explain_decision(querier, query, row, purpose)
        if not explanation.admitted:
            raise SieveError(
                f"row is denied for querier {querier!r} ({explanation.reason}); "
                f"use explain_denial"
            )
        return explanation


class PreparedQuery:
    """A parsed, parameterized statement bound to one (querier, purpose).

    Obtained from :meth:`Sieve.prepare` or :meth:`SieveSession.prepare
    <repro.core.cache.SieveSession.prepare>`::

        prepared = sieve.prepare(
            "SELECT * FROM WiFi_Dataset WHERE ts_date BETWEEN ? AND ?",
            querier="Prof.Smith", purpose="analytics",
        )
        first = prepared.execute([10, 20])
        again = prepared.execute([10, 20])   # warm: no parse/rewrite/plan

    ``params`` lists the template's parameter slots; ``execute`` takes
    a slot-ordered sequence or (for ``:name`` templates) a mapping.
    The handle itself holds no mutable state — all memoization lives in
    the middleware's epoch-fenced :class:`~repro.core.cache.PlanCache`
    — so one PreparedQuery may be shared across threads, and policy or
    catalog changes take effect on the very next execution.
    """

    def __init__(self, sieve: Sieve, template: Query, querier: Any, purpose: str):
        self._sieve = sieve
        self.template = template
        self.querier = querier
        self.purpose = purpose
        self.params = collect_params(template)
        #: Canonical template identity — the default-dialect SQL text,
        #: so the same shape prepared from different whitespace or via
        #: the auto-parameterizer lands on the same cache entries.
        self.template_key = to_sql(template)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PreparedQuery({self.template_key!r}, querier={self.querier!r}, "
            f"purpose={self.purpose!r}, params={len(self.params)})"
        )

    def execute(self, params=None) -> QueryResult:
        """Bind ``params`` and run under full policy enforcement."""
        return self.execute_with_info(params).result

    def execute_with_info(self, params=None) -> SieveExecution:
        sieve = self._sieve
        if sieve.tracer is None:
            return sieve._prepared_execute(self, params)[0]
        with sieve.tracer.trace(
            "sieve.query", querier=str(self.querier), purpose=self.purpose
        ) as root:
            execution, rewritten = sieve._prepared_execute(self, params)
            execution.trace_id = root.trace_id
            sieve._annotate_root_span(root, execution, rewritten)
        return execution

    def execute_many(self, param_sets) -> list[QueryResult]:
        """Run one execution per binding vector (the batch analogue of
        :meth:`SieveSession.execute_many
        <repro.core.cache.SieveSession.execute_many>`)."""
        return [self.execute(params) for params in param_sets]
