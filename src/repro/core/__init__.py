"""Sieve: the paper's contribution.

* guard generation (Section 4): :mod:`candidate_gen`, :mod:`guard_selection`
* cost model and calibration (Sections 4, 5.4): :mod:`cost_model`
* persistence of guarded expressions (Section 5.1): :mod:`guard_store`
* the Δ operator UDF (Section 5.2): :mod:`delta`
* query rewriting (Sections 5.3-5.6): :mod:`rewriter`
* strategy selection (Section 5.5): :mod:`strategy`
* dynamic regeneration (Section 6): :mod:`regeneration`
* the middleware facade: :mod:`middleware`
* session-scoped guard caching (amortization layer): :mod:`cache`
* the paper's baselines (Section 7.2): :mod:`baselines`

``docs/ARCHITECTURE.md`` walks the whole dataflow — policy → guard
generation → strategy choice → rewrite → execution — and shows where
the session/cache layer sits in it.
"""

from repro.core.guards import Guard, GuardedExpression
from repro.core.cache import CacheStats, GuardCache, SieveSession
from repro.core.cost_model import SieveCostModel
from repro.core.candidate_gen import generate_candidate_guards
from repro.core.guard_selection import select_guards
from repro.core.middleware import Sieve, QueryMetadata
from repro.core.baselines import BaselineP, BaselineI, BaselineU
from repro.core.regeneration import optimal_regeneration_interval, RegenerationController

__all__ = [
    "Guard",
    "GuardedExpression",
    "CacheStats",
    "GuardCache",
    "SieveSession",
    "SieveCostModel",
    "generate_candidate_guards",
    "select_guards",
    "Sieve",
    "QueryMetadata",
    "BaselineP",
    "BaselineI",
    "BaselineU",
    "optimal_regeneration_interval",
    "RegenerationController",
]
