"""Execution-strategy selection (paper Section 5.5).

Sieve considers three ways to evaluate a query over a policy-guarded
relation:

* **LinearScan** — sequential scan + guarded expression as a filter;
* **IndexQuery** — index scan on the query's own (selective) predicate,
  then the guarded expression as a filter;
* **IndexGuards** — one index scan per guard, OR-ed/UNION-ed.

Costs (upper bounds, read-dominated, as in the paper):

    cost(IndexGuards) = Σ_i ρ(G_i) · cr_random
    cost(IndexQuery)  = ρ(p) · cr_random      (∞ if no usable index)
    cost(LinearScan)  = |r| · cr_sequential

Per-guard Δ-vs-inline decisions (Section 5.4) ride along in the
decision object: a partition uses Δ when the calibrated cost model
says the UDF overhead is amortised (paper crossover ≈ 120 policies)
and the partition has no derived-value conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.cost_model import SieveCostModel
from repro.core.guards import GuardedExpression
from repro.expr.analysis import contains_subquery
from repro.expr.nodes import Expr
from repro.optimizer.cardinality import estimate_selectivity, expected_pages
from repro.optimizer.planner import Planner


class Strategy(enum.Enum):
    LINEAR_SCAN = "LinearScan"
    INDEX_QUERY = "IndexQuery"
    INDEX_GUARDS = "IndexGuards"


@dataclass
class StrategyDecision:
    """The chosen strategy for one relation plus its cost workings."""

    strategy: Strategy
    query_index_column: str | None = None
    delta_guards: frozenset[int] = frozenset()
    costs: dict[str, float] = field(default_factory=dict)
    #: Per-guard row counts the decision costed with, in guard order —
    #: measured (profile) values where available, statistics estimates
    #: otherwise.  The observability tier stamps these into the trace
    #: so the selectivity profiler can correct them from execution.
    guard_est_rows: tuple[float, ...] = ()
    #: How many query conjuncts the decision saw (the span feed only
    #: trusts admitted-row counts when the query adds no filters).
    query_conjuncts: int = 0
    #: How many of the costed guard rows came from measured
    #: observations rather than statistics.
    measured_guards: int = 0

    def describe(self) -> str:
        parts = [self.strategy.value]
        if self.query_index_column:
            parts.append(f"via index on {self.query_index_column}")
        if self.delta_guards:
            parts.append(f"Δ on guards {sorted(self.delta_guards)}")
        return " ".join(parts)


def choose_strategy(
    db,
    table_name: str,
    expression: GuardedExpression,
    query_conjuncts: list[Expr],
    cost_model: SieveCostModel,
    personality=None,
) -> StrategyDecision:
    """Pick LinearScan / IndexQuery / IndexGuards for one relation.

    Costs follow the paper's read-dominated upper bounds, expressed in
    the engine personality's page weights so the decision matches what
    the substrate actually charges:

    * IndexGuards pays a random page per guard-selected row plus the
      partition checks on those rows;
    * IndexQuery pays a random page per query-predicate row plus the
      full guard disjunction on those rows;
    * LinearScan pays sequential pages plus the guard disjunction on
      every row.

    ``personality`` overrides the bundled engine's when the query will
    execute elsewhere (a :mod:`repro.backend` adapter): the decision
    must model the engine that actually runs the rewrite.
    """
    table = db.catalog.table(table_name)
    stats = db.stats.get(table)
    personality = personality or db.personality
    n_guards = max(1, len(expression.guards))
    avg_partition = expression.policy_count / n_guards
    alpha = cost_model.alpha
    cpu_pred = personality.cpu_predicate_cost
    cpu_tuple = personality.cpu_tuple_cost

    def _correlation(attr: str) -> float:
        cstats = stats.column(attr)
        return cstats.correlation if cstats is not None else 0.0

    # Cheap query conjuncts run before the guard disjunction (AND
    # short-circuits), so only the query-predicate-surviving rows pay
    # for guard checks — and those short-circuit too.
    from repro.expr.analysis import make_and

    n_conjuncts = max(1, len(query_conjuncts))
    full_query_sel = estimate_selectivity(make_and(list(query_conjuncts)), stats)
    rows_after_query = full_query_sel * stats.row_count
    guard_or_row_cost = alpha * (n_guards + avg_partition) * cpu_pred

    # Measured-over-estimated: a guard the profiler has observed costs
    # with its live row count (clamped to the table — an EWMA can
    # briefly overshoot under churn); unobserved guards keep their
    # statistics-derived cardinality.
    guard_rows: list[float] = []
    measured_guards = 0
    for i, g in enumerate(expression.guards):
        observed = cost_model.observed_guard_rows(table_name, expression.guard_key(i))
        if observed is None:
            guard_rows.append(g.cardinality)
        else:
            guard_rows.append(min(float(stats.row_count), observed))
            measured_guards += 1
    sum_guard_rows = sum(guard_rows)
    guard_pages = sum(
        expected_pages(
            rows,
            stats.page_count,
            _correlation(g.condition.attr),
            stats.row_count,
        )
        for rows, g in zip(guard_rows, expression.guards)
    )
    cost_index_guards = (
        guard_pages * personality.random_page_cost
        + sum_guard_rows
        * (cpu_tuple + n_conjuncts * cpu_pred + alpha * avg_partition * cpu_pred)
    )

    # EXPLAIN-equivalent: would the optimizer index the query predicate?
    # Candidates are ranked by estimated *cost* (pages via heap
    # correlation), matching what the engine's own planner would pick —
    # a clustered date range often beats a lower-cardinality but
    # scattered IN-list.
    cost_index_query = float("inf")
    best_column: str | None = None
    planner = Planner(db.catalog, db.stats, personality)
    for conj in query_conjuncts:
        if contains_subquery(conj):
            continue
        spec = planner._sargable(conj)
        if spec is None:
            continue
        if db.catalog.index_on_column(table_name, spec.column) is None:
            continue
        rows = estimate_selectivity(conj, stats) * stats.row_count
        cost = (
            expected_pages(
                rows, stats.page_count, _correlation(spec.column), stats.row_count
            )
            * personality.random_page_cost
            + rows * (cpu_tuple + (n_conjuncts - 1) * cpu_pred)
            + rows_after_query * guard_or_row_cost
        )
        if cost < cost_index_query:
            cost_index_query = cost
            best_column = spec.column

    cost_linear = (
        stats.page_count * personality.seq_page_cost
        + stats.row_count * (cpu_tuple + n_conjuncts * cpu_pred)
        + rows_after_query * guard_or_row_cost
    )

    costs = {
        "IndexGuards": cost_index_guards,
        "IndexQuery": cost_index_query,
        "LinearScan": cost_linear,
    }
    if cost_index_query <= cost_index_guards:
        best, best_cost = Strategy.INDEX_QUERY, cost_index_query
    else:
        best, best_cost = Strategy.INDEX_GUARDS, cost_index_guards
    if cost_linear < best_cost:
        best = Strategy.LINEAR_SCAN

    delta_guards = decide_delta_guards(expression, cost_model)
    return StrategyDecision(
        strategy=best,
        query_index_column=best_column if best is Strategy.INDEX_QUERY else None,
        delta_guards=delta_guards,
        costs=costs,
        guard_est_rows=tuple(guard_rows),
        query_conjuncts=len(query_conjuncts),
        measured_guards=measured_guards,
    )


def decide_delta_guards(
    expression: GuardedExpression, cost_model: SieveCostModel
) -> frozenset[int]:
    """Guards whose partitions evaluate through Δ (Section 5.4)."""
    chosen: set[int] = set()
    for i, guard in enumerate(expression.guards):
        if any(p.has_derived_conditions for p in guard.policies):
            continue  # derived values need the engine's subquery machinery
        owners = {str(p.owner) for p in guard.policies}
        per_owner = guard.partition_size / max(1, len(owners))
        if cost_model.use_delta(guard.partition_size, per_owner):
            chosen.add(i)
    return frozenset(chosen)
