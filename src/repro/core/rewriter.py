"""Query rewriting (paper Sections 5.3-5.6).

For every relation with applicable policies, Sieve prepends a WITH
clause selecting the policy-compliant projection and redirects all
references to it::

    WITH WiFi_Dataset_sieve AS (
      SELECT * FROM WiFi_Dataset FORCE INDEX (idx_..._wifiap)
        WHERE <guard_1> AND <query predicate> AND (<partition_1>)
      UNION
      SELECT * FROM WiFi_Dataset FORCE INDEX (idx_..._owner)
        WHERE <guard_n> AND <query predicate> AND sieve_delta('…', id, …)
    )
    SELECT ... FROM WiFi_Dataset_sieve AS W ...

Personality shapes the CTE body (Section 5.3):

* **MySQL** + IndexGuards: one UNION branch per guard, each forcing
  that guard's index; LinearScan uses ``USE INDEX ()``; IndexQuery
  forces the query predicate's index.
* **PostgreSQL**: a single SELECT with the guard disjunction — the
  engine's optimizer turns it into a BitmapOr over the guard indexes
  on its own (hints are ignored there anyway).

Selective query predicates on the rewritten table are copied into the
CTE (Section 5.5) so the inner access-path choice can exploit them;
the originals stay in the outer query, which is semantically redundant
but harmless.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import SieveError
from repro.core.delta import DELTA_UDF_NAME, DeltaOperator
from repro.core.guards import GuardedExpression
from repro.core.strategy import Strategy, StrategyDecision
from repro.expr.analysis import conjuncts, make_and, make_or, walk
from repro.obs.tracing import span
from repro.expr.nodes import (
    And,
    Arith,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
)
from repro.sql.ast import (
    CTE,
    DerivedTable,
    IndexHint,
    Query,
    Select,
    SelectCore,
    SelectItem,
    SetOp,
    TableRef,
)
from repro.expr.nodes import Star


@dataclass
class RewriteInfo:
    """What the rewriter did, for logging/EXPLAIN and tests."""

    enforced_tables: dict[str, str] = field(default_factory=dict)  # table -> cte name
    decisions: dict[str, StrategyDecision] = field(default_factory=dict)
    denied_tables: list[str] = field(default_factory=list)
    sql: str = ""
    #: table -> guard keys materialized into its enforcement CTE, in
    #: guard order.  The audit tier records these; keeping them on the
    #: RewriteInfo makes audit records identical whether the rewrite
    #: came fresh or from the serving tier's rewrite cache (a cached
    #: rewrite carries its original info, guard keys included).
    guard_keys: dict[str, tuple[str, ...]] = field(default_factory=dict)


def collect_table_names(query: Query) -> set[str]:
    """All base-table names referenced anywhere in a query AST."""
    names: set[str] = set()
    cte_names = {c.name.lower() for c in query.ctes}
    for cte in query.ctes:
        names |= collect_table_names(cte.query)
    _collect_core(query.body, names, cte_names)
    return names


def _collect_core(core: SelectCore, names: set[str], cte_names: set[str]) -> None:
    if isinstance(core, SetOp):
        _collect_core(core.left, names, cte_names)
        _collect_core(core.right, names, cte_names)
        return
    for item in list(core.from_items) + [j.item for j in core.joins]:
        if isinstance(item, TableRef):
            if item.name.lower() not in cte_names:
                names.add(item.name.lower())
        else:
            names |= collect_table_names(item.query)
    for expr in _exprs_of_select(core):
        for node in walk(expr):
            if hasattr(node, "select") and node.select is not None:
                names |= collect_table_names(node.select)


def _exprs_of_select(select: Select) -> list[Expr]:
    out = [i.expr for i in select.items]
    if select.where is not None:
        out.append(select.where)
    out.extend(select.group_by)
    if select.having is not None:
        out.append(select.having)
    out.extend(o.expr for o in select.order_by)
    return out


def aliases_for_table(query: Query, table_name: str) -> list[str]:
    """The aliases under which ``table_name`` appears in the query body."""
    out: list[str] = []

    def visit(core: SelectCore) -> None:
        if isinstance(core, SetOp):
            visit(core.left)
            visit(core.right)
            return
        for item in list(core.from_items) + [j.item for j in core.joins]:
            if isinstance(item, TableRef) and item.name.lower() == table_name.lower():
                out.append(item.binding_name)

    visit(query.body)
    return out


def query_predicates_for(query: Query, table_name: str, table_columns: set[str]) -> list[Expr]:
    """Single-table, constant-only conjuncts of the outer WHERE that
    target ``table_name`` (Section 5.5's 'selective query predicates').

    Only safe when the table is referenced exactly once: the CTE is
    shared by every reference, so predicates from two different uses
    (e.g. the two sides of an EXCEPT) must not be conjoined into it.
    """
    alias_list = aliases_for_table(query, table_name)
    if len(alias_list) != 1:
        return []
    aliases = {alias_list[0].lower()}
    found: list[Expr] = []

    def visit(core: SelectCore) -> None:
        if isinstance(core, SetOp):
            visit(core.left)
            visit(core.right)
            return
        if core.where is None:
            return
        for conj in conjuncts(core.where):
            if _is_copyable_predicate(conj, aliases, table_columns):
                found.append(conj)

    visit(query.body)
    return found


def _is_copyable_predicate(expr: Expr, aliases: set[str], columns: set[str]) -> bool:
    """Deterministic, single-table, constant-only predicate?"""
    saw_column = False
    for node in walk(expr):
        if isinstance(node, ColumnRef):
            saw_column = True
            if node.table is not None:
                if node.table.lower() not in aliases:
                    return False
            elif node.name.lower() not in columns:
                return False
        elif isinstance(node, (FuncCall,)):
            return False  # UDFs/aggregates are not safe to duplicate
        elif not isinstance(
            node, (Literal, Param, Comparison, Between, InList, And, Or, Not, Arith, IsNull)
        ):
            return False
    return saw_column


def strip_qualifiers(expr: Expr) -> Expr:
    """Rewrite qualified column refs to bare names (for CTE bodies)."""
    if isinstance(expr, ColumnRef):
        return ColumnRef(expr.name) if expr.table is not None else expr
    if isinstance(expr, And):
        return And(tuple(strip_qualifiers(c) for c in expr.children))
    if isinstance(expr, Or):
        return Or(tuple(strip_qualifiers(c) for c in expr.children))
    if isinstance(expr, Not):
        return Not(strip_qualifiers(expr.child))
    if isinstance(expr, Comparison):
        return Comparison(expr.op, strip_qualifiers(expr.left), strip_qualifiers(expr.right))
    if isinstance(expr, Arith):
        return Arith(expr.op, strip_qualifiers(expr.left), strip_qualifiers(expr.right))
    if isinstance(expr, Between):
        return Between(
            strip_qualifiers(expr.expr),
            strip_qualifiers(expr.low),
            strip_qualifiers(expr.high),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(
            strip_qualifiers(expr.expr),
            tuple(strip_qualifiers(i) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(strip_qualifiers(expr.child))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(strip_qualifiers(a) for a in expr.args), expr.distinct)
    return expr


class SieveRewriter:
    """Builds the policy-enforcing rewrite of a query.

    ``personality`` defaults to the bundled engine's; pass the target
    backend's when the rewrite ships to a different engine, so the CTE
    shape (hinted UNION vs single disjunction, Section 5.3) matches
    the system that will run it.  ``dialect`` likewise controls how
    :attr:`RewriteInfo.sql` is printed — it must be the text the
    executing engine actually sees, or the logging/EXPLAIN field lies.
    """

    def __init__(self, db, delta: DeltaOperator, personality=None, dialect=None):
        from repro.sql.printer import DEFAULT_DIALECT

        self.db = db
        self.delta = delta
        self.personality = personality or db.personality
        self.dialect = dialect or DEFAULT_DIALECT

    def rewrite(
        self,
        query: Query,
        expressions: dict[str, GuardedExpression],
        decisions: dict[str, StrategyDecision],
        denied_tables: set[str] = frozenset(),
    ) -> tuple[Query, RewriteInfo]:
        """Produce the rewritten query plus bookkeeping.

        ``expressions``/``decisions`` are keyed by lowercase table name;
        ``denied_tables`` are relations the querier has no policies on —
        they rewrite to an empty projection (opt-out semantics).
        """
        with span("rewrite") as sp:
            rewritten, info = self._rewrite(query, expressions, decisions, denied_tables)
            sp.set(
                enforced=len(info.enforced_tables), denied=len(info.denied_tables)
            )
        return rewritten, info

    def _rewrite(
        self,
        query: Query,
        expressions: dict[str, GuardedExpression],
        decisions: dict[str, StrategyDecision],
        denied_tables: set[str] = frozenset(),
    ) -> tuple[Query, RewriteInfo]:
        info = RewriteInfo(decisions=dict(decisions))
        new_ctes: list[CTE] = []
        replacements: dict[str, str] = {}

        for table_name in sorted(denied_tables):
            cte_name = self._cte_name(table_name)
            new_ctes.append(self._denial_cte(table_name, cte_name))
            replacements[table_name.lower()] = cte_name
            info.denied_tables.append(table_name)

        for table_name, expression in sorted(expressions.items()):
            decision = decisions[table_name]
            cte_name = self._cte_name(table_name)
            qpreds = query_predicates_for(
                query,
                table_name,
                {c.lower() for c in self.db.catalog.table(table_name).schema.names},
            )
            body = self._enforcement_select(table_name, expression, decision, qpreds)
            new_ctes.append(CTE(cte_name, Query(body=body)))
            replacements[table_name.lower()] = cte_name
            info.enforced_tables[table_name] = cte_name
            info.guard_keys[table_name] = tuple(
                expression.guard_key(i) for i in range(len(expression.guards))
            )

        rewritten = self._replace_tables(query, replacements)
        rewritten.ctes = new_ctes + rewritten.ctes
        from repro.sql.printer import to_sql

        info.sql = to_sql(rewritten, dialect=self.dialect)
        return rewritten, info

    # ------------------------------------------------------------ CTE body

    def _cte_name(self, table_name: str) -> str:
        return f"{table_name}_sieve"

    def _denial_cte(self, table_name: str, cte_name: str) -> CTE:
        select = Select(
            items=[SelectItem(Star())],
            from_items=[TableRef(table_name)],
            where=Literal(False),
        )
        return CTE(cte_name, Query(body=select))

    def _enforcement_select(
        self,
        table_name: str,
        expression: GuardedExpression,
        decision: StrategyDecision,
        query_predicates: list[Expr],
    ) -> SelectCore:
        personality = self.personality
        table = self.db.catalog.table(table_name)
        columns = table.schema.names
        qpred = make_and([strip_qualifiers(p) for p in query_predicates])
        self._register_delta_partitions(table_name, expression, decision)

        if personality.honors_index_hints and decision.strategy is Strategy.INDEX_GUARDS:
            return self._union_of_guard_scans(
                table_name, expression, decision, qpred, columns
            )

        guard_or = expression.to_expr(
            qualifier=None,
            delta_guards=decision.delta_guards,
            delta_udf=DELTA_UDF_NAME,
            delta_columns=columns,
        )
        if guard_or is None:
            guard_or = Literal(False)
        where = make_and([p for p in (qpred, guard_or) if p is not None])
        hint: IndexHint | None = None
        if personality.honors_index_hints:
            if decision.strategy is Strategy.LINEAR_SCAN:
                hint = IndexHint("USE", ())
            elif (
                decision.strategy is Strategy.INDEX_QUERY
                and decision.query_index_column is not None
            ):
                index = self.db.catalog.index_on_column(
                    table_name, decision.query_index_column
                )
                if index is not None:
                    hint = IndexHint("FORCE", (index.name,))
        return Select(
            items=[SelectItem(Star())],
            from_items=[TableRef(table_name, hint=hint)],
            where=where,
        )

    def _union_of_guard_scans(
        self,
        table_name: str,
        expression: GuardedExpression,
        decision: StrategyDecision,
        qpred: Expr | None,
        columns: list[str],
    ) -> SelectCore:
        """MySQL IndexGuards: UNION of per-guard forced index scans."""
        branches: list[Select] = []
        for i, guard in enumerate(expression.guards):
            index = self.db.catalog.index_on_column(table_name, guard.condition.attr)
            hint = IndexHint("FORCE", (index.name,)) if index is not None else None
            use_delta = i in decision.delta_guards
            delta_call = None
            if use_delta:
                delta_call = FuncCall(
                    DELTA_UDF_NAME,
                    (
                        Literal(expression.guard_key(i)),
                        *(ColumnRef(c) for c in columns),
                    ),
                )
            branch_expr = guard.to_expr(None, use_delta=use_delta, delta_call=delta_call)
            where = make_and([p for p in (branch_expr, qpred) if p is not None])
            branches.append(
                Select(
                    items=[SelectItem(Star())],
                    from_items=[TableRef(table_name, hint=hint)],
                    where=where,
                )
            )
        if not branches:
            return Select(
                items=[SelectItem(Star())],
                from_items=[TableRef(table_name)],
                where=Literal(False),
            )
        core: SelectCore = branches[0]
        for branch in branches[1:]:
            core = SetOp("UNION", core, branch)  # UNION dedups overlapping guards
        return core

    def _register_delta_partitions(
        self, table_name: str, expression: GuardedExpression, decision: StrategyDecision
    ) -> None:
        prefix = f"{expression.querier}|{expression.purpose}|{expression.table}|"
        # sync (overwrite-then-prune) rather than unregister-then-
        # register: concurrent executions of this expression's queries
        # must never observe a missing guard key.
        self.delta.sync_prefix(
            prefix,
            {
                expression.guard_key(i): (expression.guards[i], table_name)
                for i in decision.delta_guards
            },
        )

    # ------------------------------------------------------ table renaming

    def _replace_tables(self, query: Query, replacements: dict[str, str]) -> Query:
        new_query = copy.deepcopy(query)
        self._replace_in_core(new_query.body, replacements)
        for cte in new_query.ctes:
            self._replace_in_core(cte.query.body, replacements)
        return new_query

    def _replace_in_core(self, core: SelectCore, replacements: dict[str, str]) -> None:
        if isinstance(core, SetOp):
            self._replace_in_core(core.left, replacements)
            self._replace_in_core(core.right, replacements)
            return
        for item in list(core.from_items) + [j.item for j in core.joins]:
            if isinstance(item, TableRef):
                new_name = replacements.get(item.name.lower())
                if new_name is not None:
                    if item.alias is None:
                        item.alias = item.name
                    item.name = new_name
                    item.hint = None  # hints moved inside the CTE
            elif isinstance(item, DerivedTable):
                self._replace_in_core(item.query.body, replacements)
        for expr in _exprs_of_select(core):
            for node in walk(expr):
                select = getattr(node, "select", None)
                if select is not None and hasattr(select, "body"):
                    self._replace_in_core(select.body, replacements)
