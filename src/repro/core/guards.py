"""Guarded expressions (paper Section 3.2).

A guard ``oc_g`` is a single indexable predicate; a guarded expression
``G_i = oc_g ∧ P_Gi`` pairs it with the partition of policies it
covers; a guarded policy expression ``G(P) = G_1 ∨ ... ∨ G_n``
partitions the whole policy set.

``Guard.to_expr`` renders one branch.  Following the paper's example
(Section 3.2), a policy's object condition is omitted from the inlined
partition when it is *exactly* the guard predicate (it would be
redundant); conditions that merely imply a widened/merged guard are
kept, since dropping them would widen the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import SieveError
from repro.expr.analysis import make_and, make_or
from repro.expr.nodes import ColumnRef, Expr, FuncCall, Literal
from repro.policy.model import ObjectCondition, Policy


@dataclass
class Guard:
    """One guarded expression: an indexable predicate plus its policy
    partition."""

    condition: ObjectCondition
    policies: list[Policy]
    cardinality: float  # ρ(oc_g) as estimated rows
    cost: float = 0.0
    benefit: float = 0.0
    utility: float = 0.0

    @property
    def partition_size(self) -> int:
        return len(self.policies)

    @property
    def policy_ids(self) -> frozenset[int]:
        return frozenset(p.id for p in self.policies)

    def partition_expr(self, qualifier: str | None = None) -> Expr | None:
        """E(P_Gi): the inlined DNF of the partition's policies, with the
        guard-equal condition factored out of each conjunction."""
        branches: list[Expr] = []
        for policy in self.policies:
            kept = [
                oc for oc in policy.object_conditions if oc != self.condition
            ]
            branch = make_and([oc.to_expr(qualifier) for oc in kept])
            if branch is None:
                # Every condition equals the guard: the guard alone admits
                # this policy's tuples.
                return None
            branches.append(branch)
        return make_or(branches)

    def to_expr(
        self,
        qualifier: str | None = None,
        use_delta: bool = False,
        delta_call: Expr | None = None,
    ) -> Expr:
        """The branch ``oc_g ∧ (partition | Δ(...))``."""
        guard_expr = self.condition.to_expr(qualifier)
        if use_delta:
            if delta_call is None:
                raise SieveError("use_delta requires a delta_call expression")
            body: Expr | None = delta_call
        else:
            body = self.partition_expr(qualifier)
        if body is None:
            return guard_expr
        result = make_and([guard_expr, body])
        assert result is not None
        return result

    def __str__(self) -> str:
        return f"Guard<{self.condition} | {self.partition_size} policies, ρ={self.cardinality:.0f}>"


@dataclass
class GuardedExpression:
    """G(P) for one (querier, purpose, relation): the full disjunction."""

    querier: Any
    purpose: str
    table: str
    guards: list[Guard]
    policy_count: int = 0
    generation_ms: float = 0.0
    created_at: int = 0

    def __post_init__(self) -> None:
        if self.policy_count == 0:
            self.policy_count = sum(g.partition_size for g in self.guards)

    @property
    def total_cardinality(self) -> float:
        return sum(g.cardinality for g in self.guards)

    def covered_policy_ids(self) -> frozenset[int]:
        out: set[int] = set()
        for guard in self.guards:
            out |= guard.policy_ids
        return frozenset(out)

    def check_partition_invariants(self) -> None:
        """Partitions must be pairwise disjoint and cover every policy
        exactly once (Section 3.2). Raises SieveError on violation."""
        seen: set[int] = set()
        for guard in self.guards:
            ids = guard.policy_ids
            overlap = seen & ids
            if overlap:
                raise SieveError(f"policies {sorted(overlap)} appear in two partitions")
            seen |= ids
        if len(seen) != self.policy_count:
            raise SieveError(
                f"guards cover {len(seen)} policies, expected {self.policy_count}"
            )

    def to_expr(
        self,
        qualifier: str | None = None,
        delta_guards: frozenset[int] = frozenset(),
        delta_udf: str | None = None,
        delta_columns: Sequence[str] = (),
    ) -> Expr | None:
        """The full ``G_1 ∨ ... ∨ G_n`` with selected branches using Δ.

        ``delta_guards`` holds indexes into ``self.guards``; Δ branches
        call ``delta_udf(guard_key, querier, purpose, col...)``.
        """
        branches: list[Expr] = []
        for i, guard in enumerate(self.guards):
            use_delta = i in delta_guards
            call = None
            if use_delta:
                if delta_udf is None:
                    raise SieveError("delta guards require a registered delta UDF name")
                call = FuncCall(
                    delta_udf,
                    (
                        Literal(self.guard_key(i)),
                        *(ColumnRef(c, table=qualifier) for c in delta_columns),
                    ),
                )
            branches.append(guard.to_expr(qualifier, use_delta=use_delta, delta_call=call))
        return make_or(branches)

    def guard_key(self, index: int) -> str:
        """Stable identifier for one guard (passed to the Δ UDF)."""
        return f"{self.querier}|{self.purpose}|{self.table}|{index}"

    def __str__(self) -> str:
        return (
            f"G(P) for querier={self.querier!r} purpose={self.purpose!r} "
            f"table={self.table!r}: {len(self.guards)} guards over "
            f"{self.policy_count} policies"
        )
