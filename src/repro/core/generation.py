"""End-to-end guarded-expression generation (Section 4 pipeline).

Candidate generation + Algorithm-1 selection, timed, with the
partition invariants checked before the result is returned.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.core.candidate_gen import generate_candidate_guards
from repro.core.cost_model import SieveCostModel
from repro.core.guard_selection import select_guards
from repro.core.guards import GuardedExpression
from repro.optimizer.stats import TableStats
from repro.policy.model import Policy


def build_guarded_expression(
    policies: Sequence[Policy],
    stats: TableStats,
    indexed_columns: frozenset[str],
    cost_model: SieveCostModel | None = None,
    querier: Any = None,
    purpose: str = "",
    table: str = "",
) -> GuardedExpression:
    """Generate G(P) for one (querier, purpose, relation) policy set."""
    cost_model = cost_model or SieveCostModel()
    start = time.perf_counter()
    candidates = generate_candidate_guards(policies, indexed_columns, stats, cost_model)
    guards = select_guards(candidates, policies, cost_model, stats.row_count)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    expression = GuardedExpression(
        querier=querier,
        purpose=purpose,
        table=table or (policies[0].table if policies else ""),
        guards=guards,
        policy_count=len(policies),
        generation_ms=elapsed_ms,
    )
    expression.check_partition_invariants()
    return expression
