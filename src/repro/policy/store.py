"""Policy persistence (paper Section 5.1).

Policies live in two relations, exactly as Sieve stores them:

* ``rP``  (``sieve_policies``): one row per policy —
  ``<id, owner, querier, associated_table, purpose, action, ts_inserted_at>``
* ``rOC`` (``sieve_object_conditions``): one row per object condition —
  ``<id, policy_id, attr_type, attr, op, val [, op2, val2]>`` where
  ``val`` may hold a serialized constant, IN-list, or the SQL text of a
  derived (nested-query) value.

A write-through in-memory cache keeps Policy objects indexed by
querier so that the PQM filter and the Δ operator never re-parse rows
on the hot path.  Insert listeners let the guard store flip its
``outdated`` flags (Section 6).

Every mutation (insert/delete/update) bumps a monotonically increasing
*policy epoch* and fires the registered mutation listeners — the
session guard cache (:mod:`repro.core.cache`) uses the epoch to
validate entries and the listeners for targeted invalidation, so the
corpus is only re-filtered for queriers a mutation can actually
affect.

Concurrency (the serving tier, :mod:`repro.service`): the store is
guarded by a writer-preferring :class:`~repro.common.concurrency.RWLock`
— reads (the PQM filter, snapshots) run concurrently, mutations are
exclusive, and listeners fire *after* the outermost write hold is
released (the epoch is already bumped, and a listener may safely
re-enter the store).  :meth:`PolicyStore.snapshot` returns a cheap
copy-on-write :class:`PolicySnapshot` memoized per epoch: guard
generation and the middleware's per-request planning read one
consistent corpus view even while writers interleave (an ``update`` —
internally delete + re-insert — can never be observed half-applied
through a snapshot).

Sharding (the cluster tier, :mod:`repro.cluster`):
:meth:`PolicyStore.partition` carves querier-scoped
:class:`PolicyPartition` views out of one corpus — each with its own
epoch, listeners, snapshots, and targeted invalidation, advanced only
by mutations that partition owns — so N shards each observe (and pay
for) only ~1/N of the corpus and its churn.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.common.concurrency import RWLock
from repro.common.errors import PolicyError
from repro.policy.groups import GroupDirectory
from repro.policy.model import ANY_PURPOSE, DerivedValue, ObjectCondition, Policy
from repro.storage.schema import ColumnType, Schema

POLICY_TABLE = "sieve_policies"
CONDITION_TABLE = "sieve_object_conditions"


def _serialize(value: Any) -> tuple[str, str]:
    """(attr_type tag, string payload) for the rOC ``val`` column."""
    if isinstance(value, DerivedValue):
        return "derived", value.sql
    if isinstance(value, bool):
        return "bool", json.dumps(value)
    if isinstance(value, int):
        return "int", json.dumps(value)
    if isinstance(value, float):
        return "float", json.dumps(value)
    if isinstance(value, str):
        return "str", json.dumps(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return "list", json.dumps(sorted(value, key=repr))
    raise PolicyError(f"cannot serialize policy value {value!r}")


def _deserialize(tag: str, payload: str) -> Any:
    if tag == "derived":
        return DerivedValue(payload)
    if tag in ("bool", "int", "float", "str", "list"):
        return json.loads(payload)
    raise PolicyError(f"unknown value tag {tag!r}")


@dataclass(frozen=True)
class PolicySnapshot:
    """An immutable, consistent view of the corpus at one epoch.

    Produced by :meth:`PolicyStore.snapshot` under the store's read
    lock and memoized per epoch, so taking one on the query hot path
    costs a dict copy only on the first request after a mutation.
    Policy tuples are shared (policies are immutable), which is what
    makes the copy-on-write cheap.
    """

    epoch: int
    groups: GroupDirectory
    by_querier: dict[Any, tuple[Policy, ...]]
    tables: frozenset[str]

    def policies_for(
        self, querier: Any, purpose: str, table: str | None = None
    ) -> list[Policy]:
        """The PQM filter (Section 3.2) over this frozen corpus view."""
        keys = [querier, *self.groups.groups_of(querier)]
        seen: set[int] = set()
        out: list[Policy] = []
        for key in keys:
            for policy in self.by_querier.get(key, ()):
                if policy.id in seen:
                    continue
                if purpose != policy.purpose and policy.purpose != ANY_PURPOSE:
                    continue
                if table is not None and policy.table.lower() != table.lower():
                    continue
                seen.add(policy.id)
                out.append(policy)
        return out

    def tables_with_policies(self) -> frozenset[str]:
        return self.tables

    def __len__(self) -> int:
        return sum(len(ps) for ps in self.by_querier.values())


class SnapshotArchive:
    """Epoch-keyed retention of :class:`PolicySnapshot` views.

    The audit tier's epoch pinning (``tools/replay.py``): while
    retention is enabled, every snapshot the store hands out is also
    archived under its epoch, so a logged decision's corpus view can
    be recovered *after* later mutations replaced the live memo.
    Snapshots are immutable and share policy tuples, so the archive
    holds O(epochs retained) dicts, not O(epochs × policies) copies;
    ``limit`` bounds it FIFO when a long-running server wants a cap.
    """

    def __init__(self, limit: int | None = None):
        self.limit = limit
        self._lock = threading.Lock()
        self._snapshots: dict[int, PolicySnapshot] = {}

    def record(self, snapshot: PolicySnapshot) -> None:
        with self._lock:
            self._snapshots.setdefault(snapshot.epoch, snapshot)
            if self.limit is not None:
                while len(self._snapshots) > self.limit:
                    del self._snapshots[min(self._snapshots)]

    def get(self, epoch: int) -> PolicySnapshot | None:
        with self._lock:
            return self._snapshots.get(epoch)

    def epochs(self) -> list[int]:
        with self._lock:
            return sorted(self._snapshots)


class PolicyStore:
    """Policies persisted in the database plus a querier-keyed cache."""

    def __init__(self, db, groups: GroupDirectory | None = None):
        self.db = db
        self.groups = groups or GroupDirectory()
        self._by_id: dict[int, Policy] = {}
        self._by_querier: dict[Any, list[Policy]] = defaultdict(list)
        self._rowids: dict[int, tuple[int, list[int]]] = {}  # policy id -> (rP rowid, rOC rowids)
        self._insert_clock = itertools.count(1)
        self._listeners: list[Callable[[Policy], None]] = []
        self._mutation_listeners: list[tuple[Callable[..., None], bool]] = []
        self._reset_listeners: list[Callable[[], None]] = []
        self._epoch = 0
        self._tables_memo: tuple[int, frozenset[str]] | None = None
        self._rwlock = RWLock()
        self._pending_events: list[tuple[str, Policy]] = []
        self._snapshot_memo: PolicySnapshot | None = None
        self._archive: SnapshotArchive | None = None
        self._install()

    def _install(self) -> None:
        if not self.db.catalog.has_table(POLICY_TABLE):
            self.db.create_table(
                POLICY_TABLE,
                Schema.of(
                    ("id", ColumnType.INT),
                    ("owner", ColumnType.VARCHAR),
                    ("querier", ColumnType.VARCHAR),
                    ("associated_table", ColumnType.VARCHAR),
                    ("purpose", ColumnType.VARCHAR),
                    ("action", ColumnType.VARCHAR),
                    ("ts_inserted_at", ColumnType.INT),
                ),
            )
            self.db.create_index(POLICY_TABLE, "querier", kind="hash")
            self.db.create_index(POLICY_TABLE, "id", kind="hash")
            self.db.create_table(
                CONDITION_TABLE,
                Schema.of(
                    ("id", ColumnType.INT),
                    ("policy_id", ColumnType.INT),
                    ("attr_type", ColumnType.VARCHAR),
                    ("attr", ColumnType.VARCHAR),
                    ("op", ColumnType.VARCHAR),
                    ("val", ColumnType.VARCHAR),
                    ("op2", ColumnType.VARCHAR),
                    ("val2", ColumnType.VARCHAR),
                ),
            )
            self.db.create_index(CONDITION_TABLE, "policy_id", kind="hash")

    # -------------------------------------------------------------- writes

    def add_listener(self, fn: Callable[[Policy], None]) -> None:
        """Called after every policy insert (guard-store invalidation)."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[Policy], None]) -> None:
        """Deregister fn; no-op when absent (safe for dead-ref hooks)."""
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    def add_mutation_listener(
        self, fn: Callable[..., None], with_epoch: bool = False
    ) -> None:
        """Called as ``fn(kind, policy)`` — or ``fn(kind, policy,
        epoch)`` when registered with ``with_epoch=True`` — after every
        mutation, where ``kind`` is ``"insert"``, ``"delete"`` or
        ``"update"``.  ``epoch`` is the corpus version *as of that
        event*: a single ``update`` crossing queriers/tables queues two
        events with consecutive epochs, and cache hooks that re-stamp
        surviving entries need each event's own epoch, not the final
        one (events are dispatched after the write lock is released, so
        ``store.epoch`` may already be further along)."""
        self._mutation_listeners.append((fn, with_epoch))

    def remove_mutation_listener(self, fn: Callable[..., None]) -> None:
        """Deregister fn; no-op when absent (safe for dead-ref hooks)."""
        for entry in self._mutation_listeners:
            if entry[0] is fn:
                self._mutation_listeners.remove(entry)
                return

    def add_reset_listener(self, fn: Callable[[], None]) -> None:
        """Called (with no arguments) after a wholesale corpus reset —
        :meth:`reload_from_database` — which bumps the epoch *without*
        firing per-policy mutation events.  Partition views hook this
        to advance their own epochs; per-policy listeners cannot, since
        a reload has no per-policy delta to report."""
        self._reset_listeners.append(fn)

    def remove_reset_listener(self, fn: Callable[[], None]) -> None:
        """Deregister fn; no-op when absent."""
        try:
            self._reset_listeners.remove(fn)
        except ValueError:
            pass

    @property
    def epoch(self) -> int:
        """Monotonic corpus version; bumped on every mutation.

        Read without taking the lock: the epoch is a single int whose
        torn read is impossible under CPython, and every consumer
        revalidates against it anyway (a stale read just costs one
        cache miss)."""
        return self._epoch

    @contextmanager
    def _writing(self) -> "Iterator[None]":
        """Exclusive mutation scope.  Reentrant (``update`` nests
        ``insert``); mutation events accumulated by :meth:`_mutated`
        fire after the *outermost* hold is released, so listeners run
        on the mutating thread but outside the lock — they may safely
        re-enter the store or take their own locks without ordering
        against readers (the lock-cycle this breaks: a guard build
        holding a cache/store-of-guards lock while reading policies,
        concurrent with a mutation firing into that same lock)."""
        self._rwlock.acquire_write()
        try:
            yield
        finally:
            events: list[tuple[str, Policy, int]] = []
            if self._rwlock.write_depth() == 1 and self._pending_events:
                # Still exclusive here, so the swap cannot steal a
                # later writer's events.
                events, self._pending_events = self._pending_events, []
            self._rwlock.release_write()
            for kind, policy, epoch in events:
                # Iterate over copies: dead weakref hooks deregister
                # themselves from inside the callback.
                for listener in list(self._listeners):
                    listener(policy)
                for listener, wants_epoch in list(self._mutation_listeners):
                    if wants_epoch:
                        listener(kind, policy, epoch)
                    else:
                        listener(kind, policy)

    def _mutated(self, kind: str, policy: Policy) -> None:
        self._epoch += 1
        self._tables_memo = None
        self._snapshot_memo = None
        self._pending_events.append((kind, policy, self._epoch))

    def insert(self, policy: Policy, _event_kind: str = "insert") -> Policy:
        """Persist one policy; returns it stamped with an insert time."""
        with self._writing():
            return self._insert_locked(policy, _event_kind)

    def _insert_locked(self, policy: Policy, _event_kind: str) -> Policy:
        if policy.id in self._by_id:
            raise PolicyError(f"duplicate policy id {policy.id}")
        stamped = Policy(
            owner=policy.owner,
            querier=policy.querier,
            purpose=policy.purpose,
            table=policy.table,
            object_conditions=policy.object_conditions,
            action=policy.action,
            id=policy.id,
            inserted_at=next(self._insert_clock),
        )
        rp_rowid = self.db.insert_row(
            POLICY_TABLE,
            (
                stamped.id,
                str(stamped.owner),
                str(stamped.querier),
                stamped.table,
                stamped.purpose,
                stamped.action,
                stamped.inserted_at,
            ),
        )
        oc_rowids: list[int] = []
        cond_table = self.db.catalog.table(CONDITION_TABLE)
        next_cond_id = cond_table.slot_count + 1
        for oc in stamped.object_conditions:
            tag, payload = _serialize(oc.value)
            payload2 = ""
            if oc.op2 is not None:
                # Range bounds share the value's type; one tag covers both.
                payload2 = _serialize(oc.value2)[1]
            oc_rowids.append(
                self.db.insert_row(
                    CONDITION_TABLE,
                    (
                        next_cond_id,
                        stamped.id,
                        tag,
                        oc.attr,
                        oc.op,
                        payload,
                        oc.op2 or "",
                        payload2,
                    ),
                )
            )
            next_cond_id += 1
        self._by_id[stamped.id] = stamped
        self._by_querier[stamped.querier].append(stamped)
        self._rowids[stamped.id] = (rp_rowid, oc_rowids)
        self._mutated(_event_kind, stamped)
        return stamped

    def insert_many(self, policies: Iterable[Policy]) -> int:
        count = 0
        for policy in policies:
            self.insert(policy)
            count += 1
        return count

    def delete(self, policy_id: int) -> None:
        with self._writing():
            policy = self._by_id.pop(policy_id, None)
            if policy is None:
                raise PolicyError(f"unknown policy id {policy_id}")
            self._by_querier[policy.querier].remove(policy)
            rp_rowid, oc_rowids = self._rowids.pop(policy_id)
            self.db.delete_row(POLICY_TABLE, rp_rowid)
            for rowid in oc_rowids:
                self.db.delete_row(CONDITION_TABLE, rowid)
            self._mutated("delete", policy)

    def update(self, policy: Policy) -> Policy:
        """Replace the stored policy with the same id.

        Implemented as a delete + re-insert of the rP/rOC rows; fires
        one ``"update"`` mutation event carrying the new version (two —
        the second carrying the old version — when the update moves the
        policy to a different querier or table, since both corpus views
        must invalidate).  The updated policy gets a fresh
        ``ts_inserted_at`` — for Section 6 regeneration accounting an
        update counts as a new arrival."""
        with self._writing():
            old = self._by_id.get(policy.id)
            if old is None:
                raise PolicyError(f"unknown policy id {policy.id}")
            # Validate the replacement is persistable BEFORE destroying
            # the old version — a bad condition value must not lose the
            # policy.
            for oc in policy.object_conditions:
                _serialize(oc.value)
                if oc.op2 is not None:
                    _serialize(oc.value2)
            del self._by_id[policy.id]
            self._by_querier[old.querier].remove(old)
            rp_rowid, oc_rowids = self._rowids.pop(policy.id)
            self.db.delete_row(POLICY_TABLE, rp_rowid)
            for rowid in oc_rowids:
                self.db.delete_row(CONDITION_TABLE, rowid)
            stamped = self._insert_locked(policy, _event_kind="update")
            # The insert queued an event for the new version; if the old
            # version named a different querier/table its caches must
            # also hear.  Both events fire only once the update is fully
            # applied (the write lock is released), so no listener can
            # observe the half-applied corpus.
            if old.querier != policy.querier or old.table.lower() != policy.table.lower():
                self._mutated("update", old)
            return stamped

    # --------------------------------------------------------------- reads

    def __len__(self) -> int:
        with self._rwlock.read_locked():
            return len(self._by_id)

    def get(self, policy_id: int) -> Policy:
        with self._rwlock.read_locked():
            try:
                return self._by_id[policy_id]
            except KeyError:
                raise PolicyError(f"unknown policy id {policy_id}") from None

    def all_policies(self) -> list[Policy]:
        with self._rwlock.read_locked():
            return list(self._by_id.values())

    def policies_for(
        self, querier: Any, purpose: str, table: str | None = None
    ) -> list[Policy]:
        """The PQM filter (Section 3.2): policies relevant to a query's
        metadata — defined for this querier directly or via any of the
        querier's groups, with a matching (or 'any') purpose.

        Delegates to the per-epoch snapshot so the filter logic exists
        once (a direct store read and a snapshot-pinned serving-tier
        read can never disagree) and repeated calls at one epoch reuse
        the memoized view."""
        return self.snapshot().policies_for(querier, purpose, table)

    def queriers(self) -> list[Any]:
        """All distinct querier values with at least one policy."""
        with self._rwlock.read_locked():
            return [q for q, ps in self._by_querier.items() if ps]

    def tables_with_policies(self) -> frozenset[str]:
        """Relations named by at least one policy, memoized per epoch
        (the middleware consults this on every query).  Frozen: the
        memoized set is shared across callers, so mutating it would
        corrupt every later query at the same epoch."""
        with self._rwlock.read_locked():
            memo = self._tables_memo
            if memo is not None and memo[0] == self._epoch:
                return memo[1]
            tables = frozenset(p.table.lower() for p in self._by_id.values())
            self._tables_memo = (self._epoch, tables)
            return tables

    def snapshot(self) -> PolicySnapshot:
        """A consistent copy-on-write view of the corpus at the current
        epoch, memoized until the next mutation.

        The hot path (one call per served request) therefore costs a
        read-locked attribute check; only the first request after a
        mutation pays the dict copy.  Concurrent first-requests may
        each build a snapshot — they are identical, and the last memo
        write wins harmlessly."""
        with self._rwlock.read_locked():
            memo = self._snapshot_memo
            if memo is not None and memo.epoch == self._epoch:
                return memo
            snap = PolicySnapshot(
                epoch=self._epoch,
                groups=self.groups,
                by_querier={q: tuple(ps) for q, ps in self._by_querier.items() if ps},
                tables=frozenset(p.table.lower() for p in self._by_id.values()),
            )
            self._snapshot_memo = snap
        if self._archive is not None:
            self._archive.record(snap)
        return snap

    # --------------------------------------------------------- epoch pinning

    def retain_snapshots(self, limit: int | None = None) -> None:
        """Enable epoch pinning: from now on every snapshot handed out
        is also archived by epoch for :meth:`snapshot_at` (the audit
        tier's replay anchor).  Idempotent; ``limit`` bounds retention
        FIFO (None = unbounded).  Every audited request takes a
        snapshot, so every epoch a decision record can name is
        archived."""
        if self._archive is None:
            self._archive = SnapshotArchive(limit)
        else:
            self._archive.limit = limit
        self._archive.record(self.snapshot())

    def snapshot_at(self, epoch: int) -> PolicySnapshot:
        """The archived corpus view at ``epoch``; raises
        :class:`~repro.common.errors.PolicyError` when retention was
        not enabled or the epoch predates it / aged out."""
        archive = self._archive
        snap = archive.get(epoch) if archive is not None else None
        if snap is None:
            raise PolicyError(
                f"policy epoch {epoch} is not retained "
                f"(call retain_snapshots() before recording decisions)"
            )
        return snap

    def retained_epochs(self) -> list[int]:
        """Epochs replay can pin (empty when retention is off)."""
        return self._archive.epochs() if self._archive is not None else []

    # ---------------------------------------------------------- partitioning

    def partition(self, owns: Callable[[Any], bool], name: str = "") -> "PolicyPartition":
        """A shard-scoped live view over this corpus (cluster tier).

        ``owns(querier)`` decides which queriers the view contains; a
        group-queried policy belongs to every partition owning at least
        one member (see :class:`PolicyPartition`).  The view has its
        *own* epoch, listeners, and snapshots, all advanced only by
        mutations the partition can observe — the point of
        querier-partitioned serving is that a write for shard A's
        querier costs shard B nothing, not even a cache re-stamp."""
        return PolicyPartition(self, owns, name=name)

    # ------------------------------------------------------------ reload

    def reload_from_database(self) -> int:
        """Rebuild the cache from the rP/rOC tables (crash-recovery path,
        exercised by tests to prove persistence round-trips).  Fires the
        reset listeners (outside the lock, like mutation events) so
        partition views invalidate their own epochs too."""
        with self._rwlock.write_locked():
            count = self._reload_locked()
        for listener in list(self._reset_listeners):
            listener()
        return count

    def _reload_locked(self) -> int:
        self._by_id.clear()
        self._by_querier.clear()
        self._rowids.clear()
        self._epoch += 1  # wholesale reload: all cached corpus views are stale
        self._tables_memo = None
        self._snapshot_memo = None
        conditions: dict[int, list[tuple[int, ObjectCondition]]] = defaultdict(list)
        cond_rowids: dict[int, list[int]] = defaultdict(list)
        cond_table = self.db.catalog.table(CONDITION_TABLE)
        for rowid, row in cond_table.scan():
            cond_id, policy_id, tag, attr, op, val, op2, val2 = row
            value = _deserialize(tag, val)
            oc = ObjectCondition(
                attr=attr,
                op=op,
                value=value,
                op2=op2 or None,
                value2=_deserialize(tag, val2) if op2 else None,
            )
            conditions[policy_id].append((cond_id, oc))
            cond_rowids[policy_id].append(rowid)
        policy_table = self.db.catalog.table(POLICY_TABLE)
        max_clock = 0
        for rowid, row in policy_table.scan():
            pid, owner, querier, table, purpose, action, inserted_at = row
            ocs = tuple(oc for _, oc in sorted(conditions[pid], key=lambda t: t[0]))
            owner_value = self._parse_identity(owner)
            policy = Policy(
                owner=owner_value,
                querier=self._parse_identity(querier),
                purpose=purpose,
                table=table,
                object_conditions=ocs,
                action=action,
                id=pid,
                inserted_at=inserted_at,
            )
            self._by_id[pid] = policy
            self._by_querier[policy.querier].append(policy)
            self._rowids[pid] = (rowid, cond_rowids[pid])
            max_clock = max(max_clock, inserted_at)
        self._insert_clock = itertools.count(max_clock + 1)
        return len(self._by_id)

    @staticmethod
    def _parse_identity(text: str) -> Any:
        """Owner/querier columns are VARCHAR; recover ints when possible."""
        try:
            return int(text)
        except (TypeError, ValueError):
            return text


class PolicyPartition:
    """One shard's live view of a :class:`PolicyStore` (cluster tier).

    Created by :meth:`PolicyStore.partition`.  The partition exposes
    the read/listener surface a :class:`~repro.core.middleware.Sieve`
    consumes — ``snapshot()``, ``policies_for``, ``epoch``,
    ``add_listener`` / ``add_mutation_listener`` — scoped to the
    queriers an ownership predicate claims:

    * a policy whose querier ``owns()`` claims belongs to the
      partition;
    * a policy naming a *group* belongs to every partition owning at
      least one member — the fan-out that keeps a member's PQM filter
      (which consults the querier's groups) correct on its home shard.

    **Per-partition epochs.**  The partition registers one mutation
    listener with the base store and forwards only events whose policy
    it owns, bumping its *own* epoch per forwarded event.  Foreign
    mutations leave the epoch untouched, so a shard's guard/rewrite
    caches never even re-stamp for other shards' writes — corpus churn
    costs each shard O(its share), which is the scaling argument of
    the cluster tier.

    **Membership changes** (:meth:`set_ownership`, used by cluster
    rebalancing) refresh which queriers the view contains *without*
    bumping the epoch: snapshots rebuild (the memo keys on a
    membership generation), but surviving queriers' epoch-validated
    cache entries stay warm.  Invalidation for *migrated* queriers is
    the coordinator's job (targeted, per querier).

    Writes still go through the base store (single source of truth for
    rP/rOC persistence and policy ids); the coordinator routes them.
    """

    def __init__(self, base: PolicyStore, owns: Callable[[Any], bool], name: str = ""):
        self.base = base
        self.name = name
        self.db = base.db
        self.groups = base.groups
        self._owns = owns
        self._lock = threading.Lock()
        self._epoch = 0
        self._membership_gen = 0
        self._snapshot_memo: tuple[tuple[int, int, int], PolicySnapshot] | None = None
        self._listeners: list[Callable[[Policy], None]] = []
        self._mutation_listeners: list[tuple[Callable[..., None], bool]] = []
        self._archive: SnapshotArchive | None = None
        self._detached = False
        base.add_mutation_listener(self._on_base_event, with_epoch=True)
        base.add_reset_listener(self._on_base_reset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolicyPartition(name={self.name!r}, epoch={self._epoch})"

    # ------------------------------------------------------------ membership

    def owns_querier(self, querier: Any) -> bool:
        """Does this partition serve ``querier`` (directly, or — for a
        group identity — through any owned member)?"""
        if self._owns(querier):
            return True
        if querier in self.groups:
            return any(self._owns(m) for m in self.groups.members_of(querier))
        return False

    def owns_policy(self, policy: Policy) -> bool:
        return self.owns_querier(policy.querier)

    def set_ownership(self, owns: Callable[[Any], bool]) -> None:
        """Swap the ownership predicate (cluster rebalance).

        Deliberately does *not* bump the epoch: entries cached for
        queriers owned both before and after stay valid (their policy
        sets are untouched by a routing change), which is what makes a
        hash-ring move invalidate only migrated queriers."""
        with self._lock:
            self._owns = owns
            self._membership_gen += 1
            self._snapshot_memo = None

    def detach(self) -> None:
        """Stop observing the base store (shard decommissioned).

        Also the cluster tier's *relay-failure* fault: a detached
        partition silently misses every subsequent base-store write —
        exactly the stale-policy hazard the coordinator's epoch fence
        and shard supervisor exist to catch (see
        :meth:`SieveCluster.drop_relay
        <repro.cluster.coordinator.SieveCluster.drop_relay>`)."""
        with self._lock:
            self._detached = True
        self.base.remove_mutation_listener(self._on_base_event)
        self.base.remove_reset_listener(self._on_base_reset)

    @property
    def detached(self) -> bool:
        """True once the partition stopped observing the base store —
        its view can only go stale from here.  The coordinator's
        two-phase scatter refuses to commit a write such a partition
        would miss, and its supervisor rebuilds the shard."""
        with self._lock:
            return self._detached

    # ----------------------------------------------------------- event relay

    def _on_base_reset(self) -> None:
        """Wholesale base reload: every partition view is stale.  Bump
        the partition epoch (shard caches validated against it drop
        their entries lazily, exactly like a single server's do against
        the base epoch) without firing per-policy listeners — a reload
        has no per-policy delta."""
        with self._lock:
            if self._detached:
                return
            self._epoch += 1
            self._snapshot_memo = None

    def _on_base_event(self, kind: str, policy: Policy, base_epoch: int) -> None:
        del base_epoch  # partition listeners hear *partition* epochs
        if not self.owns_policy(policy):
            return
        with self._lock:
            if self._detached:
                return
            self._epoch += 1
            epoch = self._epoch
            self._snapshot_memo = None
            listeners = list(self._listeners)
            mutation_listeners = list(self._mutation_listeners)
        # Dispatch outside the partition lock, mirroring the base
        # store's contract: listeners may re-enter the partition.
        for listener in listeners:
            listener(policy)
        for listener, wants_epoch in mutation_listeners:
            if wants_epoch:
                listener(kind, policy, epoch)
            else:
                listener(kind, policy)

    # ---------------------------------------------- listener surface (Sieve)

    def add_listener(self, fn: Callable[[Policy], None]) -> None:
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[Policy], None]) -> None:
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    def add_mutation_listener(
        self, fn: Callable[..., None], with_epoch: bool = False
    ) -> None:
        with self._lock:
            self._mutation_listeners.append((fn, with_epoch))

    def remove_mutation_listener(self, fn: Callable[..., None]) -> None:
        with self._lock:
            for entry in self._mutation_listeners:
                if entry[0] is fn:
                    self._mutation_listeners.remove(entry)
                    return

    # --------------------------------------------------------------- reads

    @property
    def epoch(self) -> int:
        """Partition-local corpus version (see class docstring)."""
        return self._epoch

    def snapshot(self) -> PolicySnapshot:
        """A consistent partition-scoped corpus view, memoized until
        the next owned mutation / membership change / base reload.

        Built by filtering the base store's (itself memoized) snapshot,
        so the cost is O(partition size), and the returned snapshot's
        ``epoch`` is the *partition* epoch — exactly what this shard's
        caches validate against."""
        base_snap = self.base.snapshot()
        with self._lock:
            key = (base_snap.epoch, self._membership_gen, self._epoch)
            memo = self._snapshot_memo
            if memo is not None and memo[0] == key:
                return memo[1]
            epoch = self._epoch
        by_querier = {
            q: ps for q, ps in base_snap.by_querier.items() if self.owns_querier(q)
        }
        snap = PolicySnapshot(
            epoch=epoch,
            groups=base_snap.groups,
            by_querier=by_querier,
            tables=frozenset(
                p.table.lower() for ps in by_querier.values() for p in ps
            ),
        )
        with self._lock:
            # Memo only if nothing moved under us; a stale build is
            # still a correct snapshot *at its stamped epoch* (the
            # conservative-invalidation argument of the base store).
            if (base_snap.epoch, self._membership_gen, self._epoch) == key:
                self._snapshot_memo = (key, snap)
        if self._archive is not None:
            self._archive.record(snap)
        return snap

    # --------------------------------------------------------- epoch pinning

    def retain_snapshots(self, limit: int | None = None) -> None:
        """Partition-scoped epoch pinning; see
        :meth:`PolicyStore.retain_snapshots`.  Archived views are
        keyed by *partition* epochs — exactly what this shard's
        decision records carry.  Replay windows are per policy epoch;
        a rebalance that migrates queriers without an owned mutation
        changes membership at an unchanged epoch, so replay windows
        must not straddle rebalances (the coordinator quiesces shards
        around a move for the same reason)."""
        if self._archive is None:
            self._archive = SnapshotArchive(limit)
        else:
            self._archive.limit = limit
        self._archive.record(self.snapshot())

    def snapshot_at(self, epoch: int) -> PolicySnapshot:
        """The archived partition view at ``epoch``; raises
        :class:`~repro.common.errors.PolicyError` when not retained."""
        archive = self._archive
        snap = archive.get(epoch) if archive is not None else None
        if snap is None:
            raise PolicyError(
                f"partition {self.name!r}: policy epoch {epoch} is not retained"
            )
        return snap

    def retained_epochs(self) -> list[int]:
        return self._archive.epochs() if self._archive is not None else []

    def policies_for(
        self, querier: Any, purpose: str, table: str | None = None
    ) -> list[Policy]:
        """The PQM filter over the partitioned corpus.  Identical to
        the base store's answer for any owned querier — the partition
        holds the querier's direct policies and every group policy
        whose group contains it."""
        return self.snapshot().policies_for(querier, purpose, table)

    def tables_with_policies(self) -> frozenset[str]:
        return self.snapshot().tables_with_policies()

    def all_policies(self) -> list[Policy]:
        return [p for p in self.base.all_policies() if self.owns_policy(p)]

    def queriers(self) -> list[Any]:
        """Distinct owned identities with at least one policy."""
        return [q for q in self.base.queriers() if self.owns_querier(q)]

    def get(self, policy_id: int) -> Policy:
        """Policy ids are corpus-global; delegate to the base store."""
        return self.base.get(policy_id)

    def __len__(self) -> int:
        return len(self.snapshot())


class PinnedPolicyStore:
    """A read-only PolicyStore facade frozen at one snapshot.

    The replay harness (``tools/replay.py``) builds a fresh
    :class:`~repro.core.middleware.Sieve` over one of these per logged
    policy epoch: the middleware sees the normal store surface —
    ``snapshot()``, ``policies_for``, ``epoch``, the listener
    registration points — but the corpus can never move, so a replayed
    request plans against byte-for-byte the policy view the original
    decision recorded, regardless of what happened to the live store
    since.  Mutation surfaces are absent and listener registration is
    a no-op (nothing will ever fire).
    """

    def __init__(self, db, snapshot: PolicySnapshot, groups: GroupDirectory | None = None):
        self.db = db
        self._snapshot = snapshot
        self.groups = groups if groups is not None else snapshot.groups
        self._by_id: dict[int, Policy] | None = None

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    def snapshot(self) -> PolicySnapshot:
        return self._snapshot

    def snapshot_at(self, epoch: int) -> PolicySnapshot:
        if epoch != self._snapshot.epoch:
            raise PolicyError(
                f"pinned store holds epoch {self._snapshot.epoch}, not {epoch}"
            )
        return self._snapshot

    def retain_snapshots(self, limit: int | None = None) -> None:
        """No-op: a pinned view is already its own archive."""

    def retained_epochs(self) -> list[int]:
        return [self._snapshot.epoch]

    def policies_for(
        self, querier: Any, purpose: str, table: str | None = None
    ) -> list[Policy]:
        return self._snapshot.policies_for(querier, purpose, table)

    def tables_with_policies(self) -> frozenset[str]:
        return self._snapshot.tables_with_policies()

    def all_policies(self) -> list[Policy]:
        return [p for ps in self._snapshot.by_querier.values() for p in ps]

    def queriers(self) -> list[Any]:
        return [q for q, ps in self._snapshot.by_querier.items() if ps]

    def get(self, policy_id: int) -> Policy:
        if self._by_id is None:
            self._by_id = {p.id: p for p in self.all_policies()}
        try:
            return self._by_id[policy_id]
        except KeyError:
            raise PolicyError(f"unknown policy id {policy_id}") from None

    def __len__(self) -> int:
        return len(self._snapshot)

    # Listener surface: accepted and ignored — the corpus is immutable.
    def add_listener(self, fn: Callable[[Policy], None]) -> None:
        del fn

    def remove_listener(self, fn: Callable[[Policy], None]) -> None:
        del fn

    def add_mutation_listener(
        self, fn: Callable[..., None], with_epoch: bool = False
    ) -> None:
        del fn, with_epoch

    def remove_mutation_listener(self, fn: Callable[..., None]) -> None:
        del fn

    def add_reset_listener(self, fn: Callable[[], None]) -> None:
        del fn

    def remove_reset_listener(self, fn: Callable[[], None]) -> None:
        del fn
