"""User groups (paper Section 3.1).

Users belong to hierarchical groups (undergrads ⊂ students); policies
can name a group as querier, and the PQM filter asks "is this querier
in the policy's group?".  The directory also persists itself into the
``User_Groups`` / ``User_Group_Membership`` tables so SQL workloads
(e.g. query template Q3) can join against it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.storage.schema import ColumnType, Schema

GROUPS_TABLE = "User_Groups"
MEMBERSHIP_TABLE = "User_Group_Membership"


class GroupDirectory:
    """Bidirectional user <-> group membership with group nesting."""

    def __init__(self) -> None:
        self._members: dict[Any, set[Any]] = defaultdict(set)  # group -> users
        self._groups: dict[Any, set[Any]] = defaultdict(set)  # user -> groups
        self._parents: dict[Any, set[Any]] = defaultdict(set)  # group -> supergroups
        self._group_ids: dict[Any, int] = {}

    # ------------------------------------------------------------- mutation

    def add_group(self, group: Any, parent: Any | None = None) -> None:
        if group not in self._group_ids:
            self._group_ids[group] = len(self._group_ids) + 1
        if parent is not None:
            self.add_group(parent)
            self._parents[group].add(parent)

    def add_member(self, group: Any, user: Any) -> None:
        self.add_group(group)
        self._members[group].add(user)
        self._groups[user].add(group)

    def add_members(self, group: Any, users: Iterable[Any]) -> None:
        for user in users:
            self.add_member(group, user)

    # --------------------------------------------------------------- lookup

    def groups_of(self, user: Any) -> frozenset:
        """All groups of a user, including transitive supergroups.

        This is the paper's ``group(u_k)``.
        """
        direct = self._groups.get(user, set())
        seen: set[Any] = set()
        stack = list(direct)
        while stack:
            group = stack.pop()
            if group in seen:
                continue
            seen.add(group)
            stack.extend(self._parents.get(group, ()))
        return frozenset(seen)

    def members_of(self, group: Any) -> frozenset:
        """All users in a group, including members of subgroups."""
        out: set[Any] = set(self._members.get(group, ()))
        for child, parents in self._parents.items():
            if group in parents:
                out |= self.members_of(child)
        return frozenset(out)

    def group_id(self, group: Any) -> int:
        return self._group_ids[group]

    def group_names(self) -> list[Any]:
        return list(self._group_ids)

    def __contains__(self, group: Any) -> bool:
        return group in self._group_ids

    # ---------------------------------------------------------- persistence

    def install(self, db) -> None:
        """Create and fill the group tables in a Database."""
        if not db.catalog.has_table(GROUPS_TABLE):
            db.create_table(
                GROUPS_TABLE,
                Schema.of(
                    ("id", ColumnType.INT),
                    ("name", ColumnType.VARCHAR),
                    ("owner", ColumnType.VARCHAR),
                ),
            )
            db.create_table(
                MEMBERSHIP_TABLE,
                Schema.of(
                    ("user_group_id", ColumnType.INT),
                    ("user_id", ColumnType.INT),
                ),
            )
            db.create_index(MEMBERSHIP_TABLE, "user_group_id")
            db.create_index(MEMBERSHIP_TABLE, "user_id")
        for group, gid in self._group_ids.items():
            db.insert_row(GROUPS_TABLE, (gid, str(group), "admin"))
            for user in self._members.get(group, ()):
                db.insert_row(MEMBERSHIP_TABLE, (gid, int(user)))
        db.analyze(GROUPS_TABLE)
        db.analyze(MEMBERSHIP_TABLE)
