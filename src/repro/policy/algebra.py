"""Deny-policy factoring (paper Section 3.1).

Sieve's enforcement model admits only *allow* policies; the paper
handles deny policies by factoring them into the allows:

    "given an explicit allow policy 'allow John access to my location'
     and an overlapping deny policy 'deny everyone access to my
     location when in my office', we can factor in the deny policy by
     replacing the original allow policy by 'allow John access to my
     location when I am in locations other than my office'."

The paper states the idea without an algorithm; this module implements
it for constant conditions.  Semantics: the allowed set of an allow
policy ``A`` under deny ``D`` (same owner, covered querier/purpose) is
``A ∧ ¬OC_D``.  ``¬(d₁ ∧ … ∧ d_n)`` distributes into n disjuncts
``A ∧ ¬d_i``, and since policy sets are unions of conjunctive allows,
each disjunct becomes its own allow policy.  Negating a single
condition may itself split (a range becomes "below" ∨ "above"), so one
allow × one deny yields up to ``Σ splits(d_i)`` allow policies, each a
pure conjunction again — exactly what the guard machinery needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.common.errors import PolicyError
from repro.policy.model import ANY_PURPOSE, ObjectCondition, Policy


@dataclass(frozen=True)
class DenyRule:
    """A deny policy: revokes access to the owner's tuples matching the
    conditions, for the given querier scope ('*' = everyone)."""

    owner: Any
    conditions: tuple[ObjectCondition, ...]
    querier: Any = "*"
    purpose: str = ANY_PURPOSE

    def applies_to_policy(self, policy: Policy) -> bool:
        if policy.owner != self.owner:
            return False
        if self.querier != "*" and policy.querier != self.querier:
            return False
        if self.purpose != ANY_PURPOSE and policy.purpose != self.purpose:
            return False
        return True


def negate_condition(oc: ObjectCondition) -> list[ObjectCondition]:
    """The complement of one constant condition as a disjunct list."""
    if oc.is_derived:
        raise PolicyError("cannot negate derived-value conditions")
    if oc.is_range:
        lo_op = "<" if oc.op == ">=" else "<="
        hi_op = ">" if oc.op2 == "<=" else ">="
        return [
            ObjectCondition(oc.attr, lo_op, oc.value),
            ObjectCondition(oc.attr, hi_op, oc.value2),
        ]
    negations = {
        "=": "!=",
        "!=": "=",
        "<": ">=",
        "<=": ">",
        ">": "<=",
        ">=": "<",
        "IN": "NOT IN",
        "NOT IN": "IN",
    }
    return [ObjectCondition(oc.attr, negations[oc.op], oc.value)]


def _conditions_conflict(a: ObjectCondition, b: ObjectCondition) -> bool:
    """Cheap unsatisfiability check for a conjunction of two conditions
    on the same attribute (used to prune empty factored policies)."""
    if a.attr.lower() != b.attr.lower():
        return False
    ia, ib = a.interval(), b.interval()
    if ia is not None and ib is not None:
        return not ia.overlaps(ib)
    # point vs strict bound: a = v conflicts with v excluded regions
    if a.op == "=" and b.op in ("<", "<=", ">", ">="):
        value = a.value
        return not _satisfies(value, b)
    if b.op == "=" and a.op in ("<", "<=", ">", ">="):
        return not _satisfies(b.value, a)
    if a.op == "=" and b.op == "!=":
        return a.value == b.value
    if b.op == "=" and a.op == "!=":
        return a.value == b.value
    return False


def _satisfies(value: Any, oc: ObjectCondition) -> bool:
    if oc.op == "<":
        return value < oc.value
    if oc.op == "<=":
        return value <= oc.value
    if oc.op == ">":
        return value > oc.value
    if oc.op == ">=":
        return value >= oc.value
    return True


def factor_deny(
    allow_policies: Sequence[Policy], deny_rules: Iterable[DenyRule]
) -> list[Policy]:
    """Rewrite allow policies so the deny rules are honoured.

    Returns a new policy list in which every (applicable) deny rule has
    been conjoined, negated, into the allows; unsatisfiable factored
    conjunctions are pruned.  Policies untouched by any rule pass
    through unchanged (identity preserved).
    """
    current: list[Policy] = list(allow_policies)
    for rule in deny_rules:
        next_round: list[Policy] = []
        for policy in current:
            if not rule.applies_to_policy(policy):
                next_round.append(policy)
                continue
            for deny_condition in rule.conditions:
                for negated in negate_condition(deny_condition):
                    if any(
                        _conditions_conflict(existing, negated)
                        for existing in policy.object_conditions
                    ):
                        continue  # empty region: drop this disjunct
                    next_round.append(
                        Policy(
                            owner=policy.owner,
                            querier=policy.querier,
                            purpose=policy.purpose,
                            table=policy.table,
                            object_conditions=(*policy.object_conditions, negated),
                        )
                    )
        current = next_round
    return current
