"""Access-control policy substrate: model, groups, persistence."""

from repro.policy.model import (
    DerivedValue,
    ObjectCondition,
    Policy,
    QuerierCondition,
    ANY_PURPOSE,
)
from repro.policy.groups import GroupDirectory
from repro.policy.store import PolicyPartition, PolicySnapshot, PolicyStore
from repro.policy.algebra import DenyRule, factor_deny

__all__ = [
    "DerivedValue",
    "ObjectCondition",
    "Policy",
    "QuerierCondition",
    "ANY_PURPOSE",
    "GroupDirectory",
    "PolicyPartition",
    "PolicySnapshot",
    "PolicyStore",
    "DenyRule",
    "factor_deny",
]
