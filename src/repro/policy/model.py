"""The policy model (paper Section 3.1).

A policy ``p = <OC, QC, AC>``:

* **Object conditions** ``OC`` — a conjunction over tuple attributes.
  Exactly one condition is the *owner condition* ``owner = u`` (the
  paper assumes every relation has an indexed ``owner`` column).
  Values are constants, constant ranges, IN-lists, or *derived values*
  (a scalar subquery evaluated at check time).
* **Querier conditions** ``QC`` — Pur-BAC style: who may ask
  (user or group) and for which purpose.
* **Action** ``AC`` — always ``allow``; deny is factored into allows
  and the default is deny (opt-out semantics).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import PolicyError
from repro.common.intervals import Interval
from repro.expr.nodes import (
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    Expr,
    InList,
    Literal,
    ScalarSubquery,
)
from repro.expr.analysis import make_and

ANY_PURPOSE = "any"

_OPS = {"=", "!=", "<", "<=", ">", ">=", "IN", "NOT IN"}
_RANGE_LOW_OPS = {">", ">="}
_RANGE_HIGH_OPS = {"<", "<="}

_COMPARE = {
    "=": CompareOp.EQ,
    "!=": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


@dataclass(frozen=True)
class DerivedValue:
    """A value produced by a query at evaluation time (paper 3.1).

    Example: "allow access to my location only when I am with Prof.
    Smith" — the allowed ``wifiAP`` is whatever AP Prof. Smith's device
    is connected to at the tuple's timestamp.
    """

    sql: str

    def to_expr(self) -> Expr:
        from repro.sql.parser import parse_query  # deferred to avoid cycle

        return ScalarSubquery(parse_query(self.sql))


@dataclass(frozen=True)
class ObjectCondition:
    """One boolean condition over a relation attribute.

    Point form: ``<attr, op, value>`` with ``op`` in
    ``{=, !=, <, <=, >, >=, IN, NOT IN}``.
    Range form (paper's 5-tuple): ``<attr, op, value, op2, value2>``
    where ``op``/``op2`` bound the attribute from below/above, e.g.
    ``('ts_time', '>=', 540, '<=', 600)``.
    """

    attr: str
    op: str
    value: Any
    op2: str | None = None
    value2: Any | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PolicyError(f"bad operator {self.op!r}")
        if isinstance(self.value, (list, set, frozenset)):
            # Normalize collection values to tuples so conditions stay
            # hashable (guard generation dedupes them in dict keys).
            object.__setattr__(self, "value", tuple(sorted(self.value, key=repr)))
        if self.op2 is not None:
            if self.op not in _RANGE_LOW_OPS or self.op2 not in _RANGE_HIGH_OPS:
                raise PolicyError(
                    f"range condition needs a lower op then an upper op, got {self.op!r}/{self.op2!r}"
                )
            if self.value is None or self.value2 is None:
                raise PolicyError("range condition needs both bounds")
            if isinstance(self.value, DerivedValue) or isinstance(self.value2, DerivedValue):
                raise PolicyError("range conditions must have constant bounds")
            if self.value > self.value2:
                raise PolicyError(
                    f"range lower bound {self.value!r} > upper bound {self.value2!r}"
                )

    # -------------------------------------------------------------- shape

    @property
    def is_range(self) -> bool:
        return self.op2 is not None

    @property
    def is_derived(self) -> bool:
        return isinstance(self.value, DerivedValue)

    @property
    def is_constant(self) -> bool:
        return not self.is_derived

    def interval(self) -> Interval | None:
        """Closed-interval view for guard merging; None when unbounded,
        derived, or not order-shaped (!=, IN, NOT IN)."""
        if self.is_derived:
            return None
        if self.is_range:
            return Interval(self.value, self.value2)
        if self.op == "=":
            return Interval(self.value, self.value)
        return None

    # ----------------------------------------------------------- expression

    def to_expr(self, qualifier: str | None = None) -> Expr:
        col = ColumnRef(self.attr, table=qualifier)
        if self.is_range:
            lo_cmp = Comparison(_COMPARE[self.op], col, Literal(self.value))
            hi_cmp = Comparison(_COMPARE[self.op2], col, Literal(self.value2))
            if self.op == ">=" and self.op2 == "<=":
                return Between(col, Literal(self.value), Literal(self.value2))
            result = make_and([lo_cmp, hi_cmp])
            assert result is not None
            return result
        if self.op in ("IN", "NOT IN"):
            values = self.value
            if not isinstance(values, (list, tuple, set, frozenset)):
                raise PolicyError("IN condition needs a collection value")
            items = tuple(Literal(v) for v in sorted(values, key=repr))
            return InList(col, items, negated=self.op == "NOT IN")
        rhs: Expr
        if self.is_derived:
            rhs = self.value.to_expr()
        else:
            rhs = Literal(self.value)
        return Comparison(_COMPARE[self.op], col, rhs)

    def __str__(self) -> str:
        if self.is_range:
            return f"{self.attr} {self.op} {self.value} {self.op2} {self.value2}"
        return f"{self.attr} {self.op} {self.value}"


@dataclass(frozen=True)
class QuerierCondition:
    """A condition over query metadata (querier identity or purpose)."""

    attr: str  # "querier" | "purpose"
    op: str  # "=" | "IN"
    value: Any

    def __post_init__(self) -> None:
        if self.attr not in ("querier", "purpose"):
            raise PolicyError(f"bad querier-condition attribute {self.attr!r}")
        if self.op not in ("=", "IN"):
            raise PolicyError(f"bad querier-condition op {self.op!r}")

    def matches(self, value: Any, groups: frozenset | None = None) -> bool:
        if self.op == "=":
            if self.value == value:
                return True
            return groups is not None and self.value in groups
        members = self.value
        if value in members:
            return True
        return groups is not None and any(g in members for g in groups)


_policy_counter = itertools.count(1)


@dataclass(frozen=True)
class Policy:
    """An allow policy over one relation."""

    owner: Any
    querier: Any
    purpose: str
    table: str
    object_conditions: tuple[ObjectCondition, ...]
    action: str = "allow"
    id: int = field(default_factory=lambda: next(_policy_counter))
    inserted_at: int = 0

    def __post_init__(self) -> None:
        if self.action != "allow":
            raise PolicyError(
                "only allow policies are supported; factor deny policies into allows "
                "(paper Section 3.1)"
            )
        owner_conditions = [
            oc
            for oc in self.object_conditions
            if oc.attr.lower() == "owner" and oc.op in ("=", "IN") and oc.is_constant
        ]
        if len(owner_conditions) != 1:
            raise PolicyError(
                f"policy {self.id} must contain exactly one owner condition, found "
                f"{len(owner_conditions)}"
            )

    @property
    def owner_condition(self) -> ObjectCondition:
        for oc in self.object_conditions:
            if oc.attr.lower() == "owner" and oc.op in ("=", "IN") and oc.is_constant:
                return oc
        raise PolicyError("unreachable: owner condition validated at construction")

    @property
    def non_owner_conditions(self) -> tuple[ObjectCondition, ...]:
        owner = self.owner_condition
        return tuple(oc for oc in self.object_conditions if oc is not owner)

    @property
    def querier_conditions(self) -> tuple[QuerierCondition, ...]:
        return (
            QuerierCondition("querier", "=", self.querier),
            QuerierCondition("purpose", "=", self.purpose),
        )

    @property
    def has_derived_conditions(self) -> bool:
        return any(oc.is_derived for oc in self.object_conditions)

    def applies_to(
        self,
        querier: Any,
        purpose: str,
        querier_groups: frozenset | None = None,
    ) -> bool:
        """The PQM filter (paper Section 3.2): does this policy concern
        this querier and purpose?"""
        querier_ok = self.querier == querier or (
            querier_groups is not None and self.querier in querier_groups
        )
        purpose_ok = self.purpose == purpose or self.purpose == ANY_PURPOSE
        return querier_ok and purpose_ok

    def object_expr(self, qualifier: str | None = None) -> Expr:
        """The conjunctive OC expression of this policy."""
        result = make_and([oc.to_expr(qualifier) for oc in self.object_conditions])
        assert result is not None  # owner condition always present
        return result

    def __str__(self) -> str:
        ocs = " AND ".join(str(oc) for oc in self.object_conditions)
        return (
            f"Policy#{self.id}<[{ocs}], [{self.querier} ^ {self.purpose}], {self.action}>"
        )


def policy_expression(policies: Sequence[Policy], qualifier: str | None = None) -> Expr | None:
    """E(P): the DNF of the policies' object-condition conjunctions."""
    from repro.expr.analysis import make_or

    return make_or([p.object_expr(qualifier) for p in policies])
