"""Query planner: AST -> physical plan.

Planning follows a deliberately transparent recipe (this engine is a
substrate for studying Sieve, not a research optimizer):

1. FROM items become *sources*; WHERE and JOIN ON conjuncts are
   classified by the set of source aliases they reference.
2. Single-source conjuncts are pushed into access-path selection,
   which costs a sequential scan against every applicable index scan
   (and, on the PostgreSQL personality, a BitmapOr over a top-level OR
   whose every disjunct carries an indexable component — the plan shape
   Sieve's guarded expressions are designed to hit).
3. Joins fold left-to-right in FROM order, choosing index-nested-loop
   or hash join by estimated cost.
4. Aggregation, HAVING, DISTINCT, ORDER BY and LIMIT are layered on
   top.

Index-usage hints (FORCE/USE/IGNORE INDEX) are obeyed only when the
active personality honours them, mirroring MySQL vs PostgreSQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import PlanError
from repro.db.personality import Personality
from repro.expr.analysis import (
    columns_referenced,
    conjuncts,
    contains_subquery,
    disjuncts,
    make_and,
)
from repro.expr.eval import RowBinding
from repro.obs.tracing import span
from repro.expr.nodes import (
    AGGREGATE_FUNCTIONS,
    And,
    Arith,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    ScalarSubquery,
    Star,
)
from repro.engine.plans import (
    AggregatePlan,
    AggSpec,
    annotate_batch_capability,
    BitmapOrPlan,
    CTEScanPlan,
    DerivedScanPlan,
    DistinctPlan,
    FilterPlan,
    HashJoinPlan,
    IndexNLJoinPlan,
    IndexProbe,
    IndexScanPlan,
    LimitPlan,
    NLJoinPlan,
    PlanNode,
    ProjectPlan,
    SeqScanPlan,
    SetOpPlan,
    SortPlan,
)
from repro.optimizer.cardinality import estimate_selectivity, expected_pages
from repro.optimizer.stats import StatsCatalog, TableStats
from repro.sql.ast import (
    DerivedTable,
    FromItem,
    IndexHint,
    Query,
    Select,
    SelectCore,
    SetOp,
    TableRef,
)
from repro.storage.catalog import Catalog


@dataclass
class PlannedQuery:
    """A plan plus the CTE plans it depends on (materialised at exec)."""

    root: PlanNode
    cte_plans: dict[str, PlanNode]


@dataclass
class _Source:
    alias: str
    plan: PlanNode | None  # None until access path chosen (base tables)
    table_name: str | None  # base table name, None for derived/CTE
    hint: IndexHint | None
    column_names: list[str]


@dataclass
class _Sargable:
    column: str
    probes: list[IndexProbe]
    conjunct: Expr


class Planner:
    """Plans queries against a catalog under a given personality."""

    def __init__(
        self,
        catalog: Catalog,
        stats: StatsCatalog,
        personality: Personality,
        udf_names: frozenset[str] = frozenset(),
    ):
        self.catalog = catalog
        self.stats = stats
        self.personality = personality
        self.udf_names = udf_names
        self._cte_bindings: dict[str, list[str]] = {}

    # ------------------------------------------------------------- top level

    def plan(self, query: Query) -> PlannedQuery:
        with span("plan", ctes=len(query.ctes)):
            cte_plans: dict[str, PlanNode] = {}
            self._cte_bindings = {}
            for cte in query.ctes:
                sub = self._plan_core(cte.query.body, extra_ctes=cte_plans)
                if cte.query.ctes:
                    raise PlanError("nested WITH inside a CTE is not supported")
                cte_plans[cte.name.lower()] = sub
                self._cte_bindings[cte.name.lower()] = sub.binding.column_names
            root = self._plan_core(query.body, extra_ctes=cte_plans)
            # Batch-capability annotation: the vectorized executor trusts
            # these flags, so every plan leaving the planner carries them.
            annotate_batch_capability(root)
            for cte_plan in cte_plans.values():
                annotate_batch_capability(cte_plan)
            return PlannedQuery(root=root, cte_plans=cte_plans)

    def _plan_core(self, core: SelectCore, extra_ctes: dict[str, PlanNode]) -> PlanNode:
        if isinstance(core, SetOp):
            left = self._plan_core(core.left, extra_ctes)
            right = self._plan_core(core.right, extra_ctes)
            if left.binding.width != right.binding.width:
                raise PlanError(
                    f"set operation arity mismatch: {left.binding.width} vs {right.binding.width}"
                )
            node = SetOpPlan(op=core.op, all=core.all, left=left, right=right)
            node.binding = left.binding
            node.est_rows = left.est_rows + right.est_rows
            node.est_cost = left.est_cost + right.est_cost
            return node
        return self._plan_select(core, extra_ctes)

    # ---------------------------------------------------------------- SELECT

    def _plan_select(self, select: Select, extra_ctes: dict[str, PlanNode]) -> PlanNode:
        if not select.from_items:
            return self._plan_table_less(select)
        sources = [self._make_source(item, extra_ctes) for item in select.from_items]
        join_conditions: list[Expr] = []
        for join in select.joins:
            sources.append(self._make_source(join.item, extra_ctes))
            if join.condition is not None:
                join_conditions.append(join.condition)

        all_conjuncts = conjuncts(select.where)
        for cond in join_conditions:
            all_conjuncts.extend(conjuncts(cond))

        by_alias = {s.alias.lower(): s for s in sources}
        single, multi = self._classify(all_conjuncts, sources)

        # Choose access paths for base tables with their pushed predicates.
        for source in sources:
            pushed = single.get(source.alias.lower(), [])
            source.plan = self._plan_source_access(source, pushed)

        plan = self._fold_joins(sources, multi, by_alias)
        plan = self._plan_aggregation_and_projection(select, plan)
        if select.distinct:
            inner = plan
            plan = DistinctPlan(child=inner)
            plan.binding = inner.binding
            plan.est_rows = inner.est_rows
            plan.est_cost = inner.est_cost + inner.est_rows * self.personality.cpu_tuple_cost
        if select.order_by:
            plan = self._attach_sort(plan, select)
        if select.limit is not None:
            inner = plan
            plan = LimitPlan(child=inner, limit=select.limit)
            plan.binding = inner.binding
            plan.est_rows = min(inner.est_rows, select.limit)
            plan.est_cost = inner.est_cost
        return plan

    def _attach_sort(self, plan: PlanNode, select: Select) -> PlanNode:
        """Wrap in a Sort, beneath the projection when the sort keys
        reference source columns the projection dropped (SQL allows
        ``SELECT name ... ORDER BY id``)."""
        sort_exprs = [o.expr for o in select.order_by]
        ascending = [o.ascending for o in select.order_by]

        def resolvable(binding: RowBinding) -> bool:
            return all(
                binding.has(ref)
                for e in sort_exprs
                for ref in columns_referenced(e)
            )

        target = plan
        wrap_under_projection = (
            not resolvable(plan.binding)
            and isinstance(plan, ProjectPlan)
            and plan.child is not None
            and resolvable(plan.child.binding)
            and not select.distinct
        )
        if wrap_under_projection:
            inner = plan.child
            sort = SortPlan(child=inner, sort_exprs=sort_exprs, ascending=ascending)
            sort.binding = inner.binding
            sort.est_rows = inner.est_rows
            sort.est_cost = inner.est_cost + inner.est_rows * self.personality.cpu_tuple_cost * 2
            plan.child = sort
            return plan
        sort = SortPlan(child=target, sort_exprs=sort_exprs, ascending=ascending)
        sort.binding = target.binding
        sort.est_rows = target.est_rows
        sort.est_cost = target.est_cost + target.est_rows * self.personality.cpu_tuple_cost * 2
        return sort

    def _plan_table_less(self, select: Select) -> PlanNode:
        """SELECT without FROM: one row of constant expressions."""
        exprs: list[Expr] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expr, Star):
                raise PlanError("SELECT * requires a FROM clause")
            exprs.append(item.expr)
            names.append(item.output_name)
        node = ProjectPlan(child=None, exprs=exprs, names=names)
        node.binding = RowBinding.for_table("_const", names)
        node.est_rows = 1
        return node

    # --------------------------------------------------------------- sources

    def _make_source(self, item: FromItem, extra_ctes: dict[str, PlanNode]) -> _Source:
        if isinstance(item, DerivedTable):
            sub = self.plan(item.query)
            if sub.cte_plans:
                raise PlanError("WITH inside a derived table is not supported")
            wrapper = DerivedScanPlan(child=sub.root, alias=item.alias)
            names = sub.root.binding.column_names
            wrapper.binding = RowBinding.for_table(item.alias, names)
            wrapper.est_rows = sub.root.est_rows
            wrapper.est_cost = sub.root.est_cost
            return _Source(item.alias, wrapper, None, None, names)
        assert isinstance(item, TableRef)
        key = item.name.lower()
        if key in extra_ctes or key in self._cte_bindings:
            names = (
                extra_ctes[key].binding.column_names
                if key in extra_ctes
                else self._cte_bindings[key]
            )
            alias = item.binding_name
            node = CTEScanPlan(cte_name=item.name, alias=alias)
            node.binding = RowBinding.for_table(alias, names)
            node.est_rows = extra_ctes[key].est_rows if key in extra_ctes else 0.0
            return _Source(alias, node, None, item.hint, names)
        table = self.catalog.table(item.name)
        return _Source(
            item.binding_name, None, table.name, item.hint, table.schema.names
        )

    def _classify(
        self, all_conjuncts: list[Expr], sources: list[_Source]
    ) -> tuple[dict[str, list[Expr]], list[Expr]]:
        """Split conjuncts into per-source pushdowns and multi-source rest."""
        single: dict[str, list[Expr]] = {}
        multi: list[Expr] = []
        for conj in all_conjuncts:
            aliases = self._aliases_of(conj, sources)
            if len(aliases) == 1:
                single.setdefault(next(iter(aliases)), []).append(conj)
            else:
                multi.append(conj)
        return single, multi

    def _aliases_of(self, expr: Expr, sources: list[_Source]) -> set[str]:
        found: set[str] = set()
        for ref in columns_referenced(expr):
            alias = self._resolve_alias(ref, sources)
            if alias is not None:
                found.add(alias)
        return found

    def _resolve_alias(self, ref: ColumnRef, sources: list[_Source]) -> str | None:
        if ref.table is not None:
            for source in sources:
                if source.alias.lower() == ref.table.lower():
                    return source.alias.lower()
            return None  # likely a correlated outer reference
        matches = [
            s.alias.lower()
            for s in sources
            if any(c.lower() == ref.name.lower() for c in s.column_names)
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise PlanError(f"ambiguous column {ref.name!r}")
        return None

    # ----------------------------------------------------------- access path

    def _plan_source_access(self, source: _Source, pushed: list[Expr]) -> PlanNode:
        if source.plan is not None:
            # CTE/derived: attach pushed predicate as a residual filter.
            if pushed:
                inner = source.plan
                pred = make_and(pushed)
                node = FilterPlan(child=inner, expr=pred)
                node.binding = inner.binding
                node.est_rows = inner.est_rows / 3.0
                node.est_cost = inner.est_cost
                return node
            return source.plan
        assert source.table_name is not None
        return self.choose_access_path(
            source.table_name, source.alias, pushed, source.hint
        )

    def choose_access_path(
        self,
        table_name: str,
        alias: str,
        pushed: list[Expr],
        hint: IndexHint | None,
    ) -> PlanNode:
        """Cost-based choice among SeqScan / IndexScan / BitmapOr.

        Public because Sieve's strategy selector (paper Section 5.5)
        interrogates it through EXPLAIN.
        """
        table = self.catalog.table(table_name)
        stats = self.stats.get(table)
        p = self.personality
        full_pred = make_and(pushed)
        full_sel = estimate_selectivity(full_pred, stats)
        out_rows = full_sel * stats.row_count

        binding = RowBinding.for_table(alias, table.schema.names)

        candidates: list[tuple[float, PlanNode]] = []

        seq_cost = (
            stats.page_count * p.seq_page_cost
            + stats.row_count * p.cpu_tuple_cost
            + stats.row_count * max(1, len(pushed)) * p.cpu_predicate_cost
        )
        seq = SeqScanPlan(table_name=table.name, alias=alias, filter=full_pred)
        seq.binding = binding
        seq.est_rows = out_rows
        seq.est_cost = seq_cost
        candidates.append((seq_cost, seq))

        index_candidates = self._index_scan_candidates(
            table.name, alias, pushed, stats, binding, out_rows
        )
        candidates.extend(index_candidates)

        if p.supports_bitmap_or:
            bitmap = self._bitmap_or_candidate(
                table.name, alias, pushed, stats, binding, out_rows
            )
            if bitmap is not None:
                candidates.append(bitmap)

        chosen = self._apply_hint(candidates, seq, hint)
        return chosen

    def _apply_hint(
        self,
        candidates: list[tuple[float, PlanNode]],
        seq: SeqScanPlan,
        hint: IndexHint | None,
    ) -> PlanNode:
        if hint is None or not self.personality.honors_index_hints:
            return min(candidates, key=lambda c: c[0])[1]
        names = {n.lower() for n in hint.index_names}

        def index_name_of(node: PlanNode) -> str | None:
            if isinstance(node, IndexScanPlan):
                return node.index_name.lower()
            return None

        if hint.kind == "FORCE":
            forced = [
                (cost, node)
                for cost, node in candidates
                if index_name_of(node) in names
            ]
            if forced:
                return min(forced, key=lambda c: c[0])[1]
            return seq  # MySQL: table scan only when the index is unusable
        if hint.kind == "USE":
            if not names:
                return seq  # USE INDEX () => avoid all indexes
            allowed = [
                (cost, node)
                for cost, node in candidates
                if index_name_of(node) in names or isinstance(node, SeqScanPlan)
            ]
            return min(allowed, key=lambda c: c[0])[1]
        # IGNORE
        remaining = [
            (cost, node)
            for cost, node in candidates
            if index_name_of(node) not in names
        ]
        return min(remaining, key=lambda c: c[0])[1]

    def _index_scan_candidates(
        self,
        table_name: str,
        alias: str,
        pushed: list[Expr],
        stats: TableStats,
        binding: RowBinding,
        out_rows: float,
    ) -> list[tuple[float, PlanNode]]:
        p = self.personality
        out: list[tuple[float, PlanNode]] = []
        for conj in pushed:
            spec = self._sargable(conj)
            if spec is None:
                continue
            index = self.catalog.index_on_column(table_name, spec.column)
            if index is None:
                continue
            if index.kind == "hash" and not all(pr.is_point for pr in spec.probes):
                continue
            sel = estimate_selectivity(conj, stats)
            match_rows = sel * stats.row_count
            height = getattr(index, "height", 1)
            residual_parts = [c for c in pushed if c is not conj]
            residual = make_and(residual_parts)
            cstats = stats.column(spec.column)
            correlation = cstats.correlation if cstats is not None else 0.0
            cost = (
                len(spec.probes) * height * p.index_node_cost
                + expected_pages(
                    match_rows, stats.page_count, correlation, stats.row_count
                )
                * p.random_page_cost
                + match_rows * p.cpu_tuple_cost
                + match_rows * len(residual_parts) * p.cpu_predicate_cost
            )
            node = IndexScanPlan(
                table_name=table_name,
                alias=alias,
                index_name=index.name,
                column=spec.column,
                probes=spec.probes,
                filter=residual,
            )
            node.binding = binding
            node.est_rows = out_rows
            node.est_cost = cost
            out.append((cost, node))
        return out

    def _bitmap_or_candidate(
        self,
        table_name: str,
        alias: str,
        pushed: list[Expr],
        stats: TableStats,
        binding: RowBinding,
        out_rows: float,
    ) -> tuple[float, PlanNode] | None:
        """A BitmapOr over a top-level OR conjunct, if one qualifies."""
        p = self.personality
        best: tuple[float, PlanNode] | None = None
        for conj in pushed:
            if not isinstance(conj, Or):
                continue
            arms: list[tuple[str, str, list[IndexProbe]]] = []
            total_sel = 0.0
            feasible = True
            for disjunct in disjuncts(conj):
                arm = self._best_arm(table_name, disjunct, stats)
                if arm is None:
                    feasible = False
                    break
                index_name, column, probes, sel = arm
                arms.append((index_name, column, probes))
                total_sel += sel
            if not feasible or not arms:
                continue
            total_sel = min(1.0, total_sel)
            fetch_rows = total_sel * stats.row_count
            pages = stats.page_count
            est_pages = pages * (1.0 - (1.0 - 1.0 / max(1, pages)) ** fetch_rows)
            n_probes = sum(len(probes) for _, _, probes in arms)
            cost = (
                n_probes * 2 * p.index_node_cost
                + fetch_rows * p.index_node_cost
                + est_pages * p.bitmap_page_cost
                + fetch_rows * p.cpu_tuple_cost
                + fetch_rows * len(pushed) * p.cpu_predicate_cost
            )
            node = BitmapOrPlan(
                table_name=table_name,
                alias=alias,
                arms=arms,
                filter=make_and(pushed),
            )
            node.binding = binding
            node.est_rows = out_rows
            node.est_cost = cost
            if best is None or cost < best[0]:
                best = (cost, node)
        return best

    def _best_arm(
        self, table_name: str, disjunct: Expr, stats: TableStats
    ) -> tuple[str, str, list[IndexProbe], float] | None:
        """Most selective sargable component of one OR disjunct."""
        best: tuple[str, str, list[IndexProbe], float] | None = None
        for part in conjuncts(disjunct):
            spec = self._sargable(part)
            if spec is None:
                continue
            index = self.catalog.index_on_column(table_name, spec.column)
            if index is None:
                continue
            if index.kind == "hash" and not all(pr.is_point for pr in spec.probes):
                continue
            sel = estimate_selectivity(part, stats)
            if best is None or sel < best[3]:
                best = (index.name, spec.column, spec.probes, sel)
        return best

    def _sargable(self, conj: Expr) -> _Sargable | None:
        """Extract an index-probe spec from one conjunct, if possible."""
        if contains_subquery(conj):
            return None
        if isinstance(conj, Comparison):
            col, value, op = None, None, conj.op
            if isinstance(conj.left, ColumnRef) and isinstance(conj.right, Literal):
                col, value = conj.left.name, conj.right.value
            elif isinstance(conj.right, ColumnRef) and isinstance(conj.left, Literal):
                col, value, op = conj.right.name, conj.left.value, conj.op.flip()
            if col is None or value is None:
                return None
            if op is CompareOp.EQ:
                return _Sargable(col, [IndexProbe.point(value)], conj)
            if op is CompareOp.LT:
                return _Sargable(col, [IndexProbe.range(hi=value, hi_inclusive=False)], conj)
            if op is CompareOp.LE:
                return _Sargable(col, [IndexProbe.range(hi=value)], conj)
            if op is CompareOp.GT:
                return _Sargable(col, [IndexProbe.range(lo=value, lo_inclusive=False)], conj)
            if op is CompareOp.GE:
                return _Sargable(col, [IndexProbe.range(lo=value)], conj)
            return None
        if isinstance(conj, Between) and not conj.negated:
            if (
                isinstance(conj.expr, ColumnRef)
                and isinstance(conj.low, Literal)
                and isinstance(conj.high, Literal)
            ):
                return _Sargable(
                    conj.expr.name,
                    [IndexProbe.range(lo=conj.low.value, hi=conj.high.value)],
                    conj,
                )
            return None
        if isinstance(conj, InList) and not conj.negated:
            if isinstance(conj.expr, ColumnRef) and all(
                isinstance(i, Literal) for i in conj.items
            ):
                probes = [IndexProbe.point(i.value) for i in conj.items]  # type: ignore[union-attr]
                return _Sargable(conj.expr.name, probes, conj)
        return None

    # ----------------------------------------------------------------- joins

    def _fold_joins(
        self,
        sources: list[_Source],
        multi: list[Expr],
        by_alias: dict[str, _Source],
    ) -> PlanNode:
        remaining = list(multi)
        combined = sources[0].plan
        assert combined is not None
        combined_aliases = {sources[0].alias.lower()}

        for source in sources[1:]:
            next_aliases = combined_aliases | {source.alias.lower()}
            usable: list[Expr] = []
            rest: list[Expr] = []
            for conj in remaining:
                refs = self._aliases_of(conj, sources)
                if refs and refs <= next_aliases:
                    usable.append(conj)
                else:
                    rest.append(conj)
            remaining = rest
            combined = self._join_pair(combined, combined_aliases, source, usable)
            combined_aliases = next_aliases

        if remaining:
            pred = make_and(remaining)
            inner = combined
            combined = FilterPlan(child=inner, expr=pred)
            combined.binding = inner.binding
            combined.est_rows = inner.est_rows / 3.0
            combined.est_cost = inner.est_cost + inner.est_rows * self.personality.cpu_predicate_cost
        return combined

    def _join_pair(
        self,
        left: PlanNode,
        left_aliases: set[str],
        right_source: _Source,
        conds: list[Expr],
    ) -> PlanNode:
        right = right_source.plan
        assert right is not None
        p = self.personality

        equi: list[tuple[Expr, Expr, Expr]] = []  # (left key, right key, conjunct)
        residual_parts: list[Expr] = []
        for conj in conds:
            pair = self._equi_pair(conj, left, right)
            if pair is not None:
                equi.append((pair[0], pair[1], conj))
            else:
                residual_parts.append(conj)
        residual = make_and(residual_parts)

        joined_binding = RowBinding()
        for alias, names in self._binding_tables(left):
            joined_binding.add_table(alias, names)
        for alias, names in self._binding_tables(right):
            joined_binding.add_table(alias, names)

        out_rows = max(1.0, left.est_rows) * max(1.0, right.est_rows)
        if equi:
            out_rows = max(left.est_rows, right.est_rows, 1.0)

        # Index nested-loop candidate: right is a bare base-table scan and
        # one equi key is its indexed column.
        inl = self._index_nl_candidate(left, right_source, equi, residual, joined_binding)

        if equi:
            hash_cost = (
                left.est_cost
                + right.est_cost
                + (left.est_rows + right.est_rows) * p.cpu_tuple_cost * 2
            )
            node: PlanNode = HashJoinPlan(
                left=left,
                right=right,
                left_keys=[lk for lk, _, _ in equi],
                right_keys=[rk for _, rk, _ in equi],
                residual=residual,
            )
            node.binding = joined_binding
            node.est_rows = out_rows
            node.est_cost = hash_cost
            if inl is not None and inl.est_cost < hash_cost:
                return inl
            return node

        if inl is not None:
            return inl
        node = NLJoinPlan(left=left, right=right, condition=residual)
        node.binding = joined_binding
        node.est_rows = out_rows / 3.0 if residual is not None else out_rows
        node.est_cost = (
            left.est_cost + max(1.0, left.est_rows) * right.est_cost
        )
        return node

    def _index_nl_candidate(
        self,
        left: PlanNode,
        right_source: _Source,
        equi: list[tuple[Expr, Expr, Expr]],
        residual: Expr | None,
        joined_binding: RowBinding,
    ) -> IndexNLJoinPlan | None:
        if right_source.table_name is None or not equi:
            return None
        right_plan = right_source.plan
        inner_filter: Expr | None = None
        if isinstance(right_plan, SeqScanPlan):
            inner_filter = right_plan.filter
        elif isinstance(right_plan, (IndexScanPlan, BitmapOrPlan)):
            # Reconstructing pushed predicates from an index plan is
            # messier; only SeqScan right sides become INL inners.
            return None
        else:
            return None
        p = self.personality
        table = self.catalog.table(right_source.table_name)
        stats = self.stats.get(table)
        best: IndexNLJoinPlan | None = None
        used_key_conj: Expr | None = None
        for left_key, right_key, conj in equi:
            if not isinstance(right_key, ColumnRef):
                continue
            index = self.catalog.index_on_column(right_source.table_name, right_key.name)
            if index is None:
                continue
            cstats = stats.column(right_key.name)
            avg_match = (
                stats.row_count / max(1, cstats.ndv) if cstats is not None else 1.0
            )
            height = getattr(index, "height", 1)
            cost = left.est_cost + max(1.0, left.est_rows) * (
                height * p.index_node_cost
                + avg_match * (p.random_page_cost + p.cpu_tuple_cost)
            )
            other_equis = [
                Comparison(CompareOp.EQ, lk, rk)
                for lk, rk, c in equi
                if c is not conj
            ]
            full_residual = make_and(
                [e for e in ([residual] + other_equis) if e is not None]
            )
            node = IndexNLJoinPlan(
                left=left,
                inner_table=table.name,
                inner_alias=right_source.alias,
                inner_index=index.name,
                inner_column=right_key.name,
                outer_key=left_key,
                inner_filter=inner_filter,
                residual=full_residual,
            )
            node.binding = joined_binding
            node.est_rows = max(left.est_rows, 1.0) * avg_match
            node.est_cost = cost
            if best is None or cost < best.est_cost:
                best = node
                used_key_conj = conj
        del used_key_conj
        return best

    def _equi_pair(
        self, conj: Expr, left: PlanNode, right: PlanNode
    ) -> tuple[Expr, Expr] | None:
        if not isinstance(conj, Comparison) or conj.op is not CompareOp.EQ:
            return None
        a, b = conj.left, conj.right
        if not isinstance(a, ColumnRef) or not isinstance(b, ColumnRef):
            return None
        if left.binding.has(a) and right.binding.has(b):
            return (a, b)
        if left.binding.has(b) and right.binding.has(a):
            return (b, a)
        return None

    @staticmethod
    def _binding_tables(plan: PlanNode) -> list[tuple[str, list[str]]]:
        """Recover (alias, columns) groups from a plan's binding."""
        binding = plan.binding
        groups: dict[str, list[str]] = {}
        order: list[str] = []
        # RowBinding does not retain the alias partition explicitly, so we
        # rebuild it from the qualified map, preserving position order.
        by_pos: list[tuple[int, str, str]] = sorted(
            (pos, alias, name) for (alias, name), pos in binding._by_qualified.items()
        )
        for _, alias, name in by_pos:
            if alias not in groups:
                groups[alias] = []
                order.append(alias)
            groups[alias].append(name)
        return [(alias, groups[alias]) for alias in order]

    # ---------------------------------------------------- aggregation & proj

    def _plan_aggregation_and_projection(
        self, select: Select, child: PlanNode
    ) -> PlanNode:
        has_aggregates = any(
            self._find_aggregates(item.expr) for item in select.items
        ) or (select.having is not None and bool(self._find_aggregates(select.having)))
        if not select.group_by and not has_aggregates:
            if select.having is not None:
                raise PlanError("HAVING without aggregation or GROUP BY")
            return self._plan_projection(select, child)

        group_exprs = list(select.group_by)
        agg_calls: list[FuncCall] = []
        for item in select.items:
            for call in self._find_aggregates(item.expr):
                if call not in agg_calls:
                    agg_calls.append(call)
        if select.having is not None:
            for call in self._find_aggregates(select.having):
                if call not in agg_calls:
                    agg_calls.append(call)

        specs: list[AggSpec] = []
        for call in agg_calls:
            arg: Expr | None
            if not call.args or isinstance(call.args[0], Star):
                arg = None
            else:
                arg = call.args[0]
            specs.append(AggSpec(func=call.name.lower(), arg=arg, distinct=call.distinct))

        agg = AggregatePlan(child=child, group_exprs=group_exprs, aggregates=specs)
        out_names = [f"g{i}" for i in range(len(group_exprs))] + [
            f"a{i}" for i in range(len(specs))
        ]
        agg.binding = RowBinding.for_table("_agg", out_names)
        agg.est_rows = max(1.0, child.est_rows / 10.0)
        agg.est_cost = child.est_cost + child.est_rows * self.personality.cpu_tuple_cost

        substitutions: dict[Expr, Expr] = {}
        for i, gexpr in enumerate(group_exprs):
            substitutions[gexpr] = ColumnRef(f"g{i}")
        for j, call in enumerate(agg_calls):
            substitutions[call] = ColumnRef(f"a{j}")

        plan: PlanNode = agg
        if select.having is not None:
            having_expr = self._substitute(select.having, substitutions)
            inner = plan
            plan = FilterPlan(child=inner, expr=having_expr)
            plan.binding = inner.binding
            plan.est_rows = inner.est_rows / 3.0
            plan.est_cost = inner.est_cost

        exprs: list[Expr] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expr, Star):
                raise PlanError("SELECT * cannot be combined with aggregation")
            exprs.append(self._substitute(item.expr, substitutions))
            names.append(item.output_name)
        proj = ProjectPlan(child=plan, exprs=exprs, names=names)
        proj.binding = RowBinding.for_table("_out", names)
        proj.est_rows = plan.est_rows
        proj.est_cost = plan.est_cost
        return proj

    def _plan_projection(self, select: Select, child: PlanNode) -> PlanNode:
        exprs: list[Expr] = []
        names: list[str] = []
        star_only = all(isinstance(i.expr, Star) for i in select.items)
        for item in select.items:
            if isinstance(item.expr, Star):
                for alias, cols in self._binding_tables(child):
                    if item.expr.table is not None and alias != item.expr.table.lower():
                        continue
                    for col in cols:
                        exprs.append(ColumnRef(col, table=alias))
                        names.append(col)
            else:
                exprs.append(item.expr)
                names.append(item.output_name)
        if star_only and len(select.items) == 1 and select.items[0].expr.table is None:
            # Pure SELECT *: pass rows through untouched (keeps qualified
            # names resolvable for ORDER BY etc.).
            return child
        proj = ProjectPlan(child=child, exprs=exprs, names=names)
        proj.binding = RowBinding.for_table("_out", names)
        proj.est_rows = child.est_rows
        proj.est_cost = child.est_cost + child.est_rows * self.personality.cpu_tuple_cost
        return proj

    def _find_aggregates(self, expr: Expr) -> list[FuncCall]:
        out: list[FuncCall] = []
        self._collect_aggregates(expr, out)
        return out

    def _collect_aggregates(self, expr: Expr, out: list[FuncCall]) -> None:
        if isinstance(expr, FuncCall):
            if expr.name.lower() in AGGREGATE_FUNCTIONS:
                out.append(expr)
                return  # nested aggregates not allowed; don't descend
            for arg in expr.args:
                self._collect_aggregates(arg, out)
            return
        if isinstance(expr, (And, Or)):
            for child in expr.children:
                self._collect_aggregates(child, out)
        elif isinstance(expr, Not):
            self._collect_aggregates(expr.child, out)
        elif isinstance(expr, Comparison):
            self._collect_aggregates(expr.left, out)
            self._collect_aggregates(expr.right, out)
        elif isinstance(expr, Arith):
            self._collect_aggregates(expr.left, out)
            self._collect_aggregates(expr.right, out)
        elif isinstance(expr, Between):
            self._collect_aggregates(expr.expr, out)
            self._collect_aggregates(expr.low, out)
            self._collect_aggregates(expr.high, out)
        elif isinstance(expr, InList):
            self._collect_aggregates(expr.expr, out)
        elif isinstance(expr, IsNull):
            self._collect_aggregates(expr.child, out)

    def _substitute(self, expr: Expr, subs: dict[Expr, Expr]) -> Expr:
        if expr in subs:
            return subs[expr]
        if isinstance(expr, And):
            return And(tuple(self._substitute(c, subs) for c in expr.children))
        if isinstance(expr, Or):
            return Or(tuple(self._substitute(c, subs) for c in expr.children))
        if isinstance(expr, Not):
            return Not(self._substitute(expr.child, subs))
        if isinstance(expr, Comparison):
            return Comparison(
                expr.op,
                self._substitute(expr.left, subs),
                self._substitute(expr.right, subs),
            )
        if isinstance(expr, Arith):
            return Arith(
                expr.op,
                self._substitute(expr.left, subs),
                self._substitute(expr.right, subs),
            )
        if isinstance(expr, Between):
            return Between(
                self._substitute(expr.expr, subs),
                self._substitute(expr.low, subs),
                self._substitute(expr.high, subs),
                expr.negated,
            )
        if isinstance(expr, InList):
            return InList(
                self._substitute(expr.expr, subs),
                tuple(self._substitute(i, subs) for i in expr.items),
                expr.negated,
            )
        if isinstance(expr, IsNull):
            return IsNull(self._substitute(expr.child, subs))
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(self._substitute(a, subs) for a in expr.args),
                expr.distinct,
            )
        return expr
