"""Selectivity estimation for single-table predicates.

Implements the classic System-R defaults on top of the histogram
statistics: equality and ranges come from the histogram, conjunctions
multiply (independence assumption), disjunctions use
inclusion-exclusion, unknown predicates get the 1/3 default.

``estimate_selectivity`` is the ``ρ(pred)`` of the paper: both the
optimizer's access-path choice and Sieve's guard cost model call it.
"""

from __future__ import annotations

from typing import Any

from repro.expr.nodes import (
    And,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.optimizer.stats import TableStats

DEFAULT_SELECTIVITY = 1.0 / 3.0
DEFAULT_EQ_SELECTIVITY = 0.005


def expected_pages(
    rows: float,
    pages: float,
    correlation: float = 0.0,
    table_rows: float | None = None,
) -> float:
    """Expected distinct pages touched fetching ``rows`` tuples.

    Cardenas' formula for uniformly-spread tuples, interpolated toward
    the minimal (perfectly clustered) page count by the squared
    value/heap ``correlation`` — the same blend PostgreSQL's
    ``cost_index`` applies with ``pg_stats.correlation``.  The executor
    caches pages within a scan, so costing random access per *page*
    keeps the optimizer honest.
    """
    if pages <= 0 or rows <= 0:
        return 0.0
    uniform = pages * (1.0 - (1.0 - 1.0 / pages) ** rows)
    c2 = max(0.0, min(1.0, correlation)) ** 2
    if c2 <= 0.0 or not table_rows:
        return uniform
    rows_per_page = max(1.0, table_rows / pages)
    clustered = max(1.0, rows / rows_per_page)
    return c2 * min(uniform, clustered) + (1.0 - c2) * uniform


def estimate_selectivity(expr: Expr | None, stats: TableStats) -> float:
    """Estimated fraction of the table's rows satisfying ``expr``."""
    if expr is None:
        return 1.0
    sel = _estimate(expr, stats)
    return min(1.0, max(0.0, sel))


def estimate_rows(expr: Expr | None, stats: TableStats) -> float:
    """ρ(pred) as a row count."""
    return estimate_selectivity(expr, stats) * stats.row_count


def _estimate(expr: Expr, stats: TableStats) -> float:
    if isinstance(expr, And):
        sel = 1.0
        for child in expr.children:
            sel *= _estimate(child, stats)
        return sel
    if isinstance(expr, Or):
        # Inclusion-exclusion under independence, folded pairwise.
        sel = 0.0
        for child in expr.children:
            child_sel = _estimate(child, stats)
            sel = sel + child_sel - sel * child_sel
        return sel
    if isinstance(expr, Not):
        return 1.0 - _estimate(expr.child, stats)
    if isinstance(expr, Comparison):
        return _estimate_comparison(expr, stats)
    if isinstance(expr, Between):
        col = _column_of(expr.expr)
        lo = _literal_of(expr.low)
        hi = _literal_of(expr.high)
        if col is None or lo is _MISSING or hi is _MISSING:
            return DEFAULT_SELECTIVITY
        cstats = stats.column(col)
        if cstats is None:
            return DEFAULT_SELECTIVITY
        sel = cstats.selectivity_range(lo, hi)
        return 1.0 - sel if expr.negated else sel
    if isinstance(expr, InList):
        col = _column_of(expr.expr)
        values = [_literal_of(i) for i in expr.items]
        if col is None or any(v is _MISSING for v in values):
            return DEFAULT_SELECTIVITY
        cstats = stats.column(col)
        if cstats is None:
            return DEFAULT_SELECTIVITY
        sel = cstats.selectivity_in(values)
        return 1.0 - sel if expr.negated else sel
    if isinstance(expr, IsNull):
        col = _column_of(expr.child)
        if col is None:
            return DEFAULT_SELECTIVITY
        cstats = stats.column(col)
        if cstats is None or cstats.row_count == 0:
            return DEFAULT_SELECTIVITY
        return cstats.null_count / cstats.row_count
    if isinstance(expr, Literal):
        return 1.0 if expr.value else 0.0
    return DEFAULT_SELECTIVITY


def _estimate_comparison(expr: Comparison, stats: TableStats) -> float:
    col = _column_of(expr.left)
    value = _literal_of(expr.right)
    op = expr.op
    if col is None:
        # try the flipped orientation (literal op column)
        col = _column_of(expr.right)
        value = _literal_of(expr.left)
        op = expr.op.flip()
    if col is None or value is _MISSING:
        return DEFAULT_EQ_SELECTIVITY if expr.op is CompareOp.EQ else DEFAULT_SELECTIVITY
    cstats = stats.column(col)
    if cstats is None:
        return DEFAULT_EQ_SELECTIVITY if op is CompareOp.EQ else DEFAULT_SELECTIVITY
    if op is CompareOp.EQ:
        return cstats.selectivity_eq(value)
    if op is CompareOp.NE:
        return 1.0 - cstats.selectivity_eq(value)
    if op is CompareOp.LT:
        return cstats.selectivity_range(None, value, hi_inclusive=False)
    if op is CompareOp.LE:
        return cstats.selectivity_range(None, value)
    if op is CompareOp.GT:
        return cstats.selectivity_range(value, None, lo_inclusive=False)
    return cstats.selectivity_range(value, None)


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()


def _column_of(expr: Expr) -> str | None:
    if isinstance(expr, ColumnRef):
        return expr.name
    return None


def _literal_of(expr: Expr) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    return _MISSING
