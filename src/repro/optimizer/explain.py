"""EXPLAIN: render plan trees and expose structured access-path info.

Sieve's strategy selector (paper Section 5.5) "runs the EXPLAIN of
query Qi which returns ... for each relation the particular access
strategy the optimizer plans to use and the estimated selectivity".
:func:`access_summary` is that structured view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.plans import (
    BitmapOrPlan,
    CTEScanPlan,
    IndexNLJoinPlan,
    IndexScanPlan,
    PlanNode,
    SeqScanPlan,
)


@dataclass
class ExplainNode:
    name: str
    detail: str
    est_rows: float
    est_cost: float
    children: list["ExplainNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        line = f"{pad}-> {self.name}"
        if self.detail:
            line += f" [{self.detail}]"
        line += f" (rows={self.est_rows:.0f} cost={self.est_cost:.2f})"
        parts = [line]
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)


def explain_plan(plan: PlanNode) -> ExplainNode:
    """Convert a plan tree into a printable ExplainNode tree."""
    node = ExplainNode(
        name=plan.node_name,
        detail=plan.describe(),
        est_rows=plan.est_rows,
        est_cost=plan.est_cost,
    )
    for child in plan.children():
        if child is not None:
            node.children.append(explain_plan(child))
    return node


@dataclass
class TableAccess:
    """How one table reference will be accessed."""

    table: str
    alias: str
    method: str  # "seq" | "index" | "bitmap-or" | "index-nl-inner" | "cte"
    index_name: str | None
    est_rows: float
    est_cost: float


def access_summary(plan: PlanNode) -> list[TableAccess]:
    """All base-table access paths appearing in a plan tree."""
    out: list[TableAccess] = []
    _collect_access(plan, out)
    return out


def _collect_access(plan: PlanNode, out: list[TableAccess]) -> None:
    if isinstance(plan, SeqScanPlan):
        out.append(
            TableAccess(plan.table_name, plan.alias, "seq", None, plan.est_rows, plan.est_cost)
        )
    elif isinstance(plan, IndexScanPlan):
        out.append(
            TableAccess(
                plan.table_name, plan.alias, "index", plan.index_name, plan.est_rows, plan.est_cost
            )
        )
    elif isinstance(plan, BitmapOrPlan):
        out.append(
            TableAccess(
                plan.table_name,
                plan.alias,
                "bitmap-or",
                ",".join(ix for ix, _, _ in plan.arms),
                plan.est_rows,
                plan.est_cost,
            )
        )
    elif isinstance(plan, IndexNLJoinPlan):
        out.append(
            TableAccess(
                plan.inner_table,
                plan.inner_alias,
                "index-nl-inner",
                plan.inner_index,
                plan.est_rows,
                plan.est_cost,
            )
        )
    elif isinstance(plan, CTEScanPlan):
        out.append(
            TableAccess(plan.cte_name, plan.alias, "cte", None, plan.est_rows, plan.est_cost)
        )
    for child in plan.children():
        if child is not None:
            _collect_access(child, out)
