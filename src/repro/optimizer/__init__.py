"""Optimizer: statistics, cardinality estimation, planning, EXPLAIN."""

from repro.optimizer.stats import ColumnStats, TableStats, StatsCatalog, EquiDepthHistogram
from repro.optimizer.cardinality import estimate_selectivity
from repro.optimizer.planner import Planner
from repro.optimizer.explain import explain_plan, ExplainNode

__all__ = [
    "ColumnStats",
    "TableStats",
    "StatsCatalog",
    "EquiDepthHistogram",
    "estimate_selectivity",
    "Planner",
    "explain_plan",
    "ExplainNode",
]
