"""Table statistics: equi-depth histograms and NDV counts.

The paper's cost model estimates guard cardinality "using histograms
maintained by the database" (Section 4, footnote 5).  This module is
that substrate: ``ANALYZE``-style statistics built from table contents,
giving ``ρ(pred)`` estimates for equality, range and IN predicates.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.storage.table import HeapTable

DEFAULT_BUCKETS = 64


@dataclass
class EquiDepthHistogram:
    """Equal-frequency histogram over one column's sorted values.

    ``bounds`` holds bucket upper edges (inclusive); each bucket covers
    roughly ``n / len(bounds)`` rows.  ``distinct_per_bucket`` supports
    equality estimates inside a bucket.
    """

    bounds: list[Any]
    depth: float  # rows per bucket
    distinct_per_bucket: list[int]
    min_value: Any
    max_value: Any
    total: int

    @classmethod
    def build(cls, values: Sequence[Any], buckets: int = DEFAULT_BUCKETS) -> "EquiDepthHistogram | None":
        if not values:
            return None
        ordered = sorted(values)
        n = len(ordered)
        buckets = max(1, min(buckets, n))
        depth = n / buckets
        bounds: list[Any] = []
        distinct: list[int] = []
        start = 0
        for b in range(1, buckets + 1):
            end = min(n, round(b * depth))
            if end <= start:
                continue
            chunk = ordered[start:end]
            bounds.append(chunk[-1])
            distinct.append(max(1, len(set(chunk))))
            start = end
        return cls(
            bounds=bounds,
            depth=n / len(bounds),
            distinct_per_bucket=distinct,
            min_value=ordered[0],
            max_value=ordered[-1],
            total=n,
        )

    def selectivity_eq(self, value: Any) -> float:
        """Estimated fraction of rows equal to ``value``.

        A heavy-hitter value can be the upper bound of several
        consecutive buckets; all of them contribute (otherwise skewed
        columns — e.g. a dominant owner — are badly underestimated).
        """
        if self.total == 0:
            return 0.0
        try:
            if value < self.min_value or value > self.max_value:
                return 0.0
        except TypeError:
            return 0.0
        pos_lo = bisect.bisect_left(self.bounds, value)
        pos_hi = bisect.bisect_right(self.bounds, value)
        if pos_lo == pos_hi:
            # Value lies strictly inside one bucket (or past the end).
            if pos_lo >= len(self.bounds):
                pos_lo = len(self.bounds) - 1
            ndv = self.distinct_per_bucket[pos_lo]
            return (self.depth / ndv) / self.total
        rows = sum(
            self.depth / self.distinct_per_bucket[i] for i in range(pos_lo, pos_hi)
        )
        return min(1.0, rows / self.total)

    def selectivity_range(
        self,
        lo: Any = None,
        hi: Any = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of rows in the (possibly open) range."""
        if self.total == 0:
            return 0.0
        if lo is not None and hi is not None and lo == hi:
            # Degenerate point range: the equality path is strictly better
            # than interpolating a zero-width slice of a bucket.
            return self.selectivity_eq(lo) if lo_inclusive and hi_inclusive else 0.0
        lo_eff = self.min_value if lo is None else lo
        hi_eff = self.max_value if hi is None else hi
        try:
            if lo_eff > self.max_value or hi_eff < self.min_value:
                return 0.0
        except TypeError:
            return 0.0
        # Count fully-covered buckets; interpolate the partial edge buckets
        # under a uniform-within-bucket assumption for numeric columns.
        frac = 0.0
        prev_bound = self.min_value
        for i, bound in enumerate(self.bounds):
            bucket_lo, bucket_hi = prev_bound, bound
            prev_bound = bound
            if self._lt(bucket_hi, lo_eff) or self._lt(hi_eff, bucket_lo):
                continue
            coverage = self._bucket_coverage(bucket_lo, bucket_hi, lo_eff, hi_eff)
            frac += coverage * (self.depth / self.total)
        # Interpolation can miss point masses sitting exactly on bucket
        # bounds; an included endpoint contributes at least its equality
        # mass.
        if lo is not None and lo_inclusive:
            frac = max(frac, self.selectivity_eq(lo))
        if hi is not None and hi_inclusive:
            frac = max(frac, self.selectivity_eq(hi))
        # Half-open adjustments are below histogram resolution; clamp only.
        if not lo_inclusive and lo is not None:
            frac -= self.selectivity_eq(lo)
        if not hi_inclusive and hi is not None:
            frac -= self.selectivity_eq(hi)
        return min(1.0, max(0.0, frac))

    @staticmethod
    def _lt(a: Any, b: Any) -> bool:
        try:
            return a < b
        except TypeError:
            return False

    @staticmethod
    def _bucket_coverage(bucket_lo: Any, bucket_hi: Any, lo: Any, hi: Any) -> float:
        """Fraction of a bucket's value span covered by [lo, hi]."""
        if isinstance(bucket_lo, (int, float)) and isinstance(bucket_hi, (int, float)):
            span = float(bucket_hi) - float(bucket_lo)
            if span <= 0:
                return 1.0
            left = max(float(bucket_lo), float(lo)) if isinstance(lo, (int, float)) else float(bucket_lo)
            right = min(float(bucket_hi), float(hi)) if isinstance(hi, (int, float)) else float(bucket_hi)
            if right < left:
                return 0.0
            return (right - left) / span
        # Non-numeric: all-or-nothing per bucket.
        return 1.0


@dataclass
class ColumnStats:
    name: str
    row_count: int
    null_count: int
    ndv: int
    histogram: EquiDepthHistogram | None
    #: |Pearson correlation| between column value and heap position,
    #: à la PostgreSQL's ``pg_stats.correlation``: 1.0 means rows with
    #: similar values sit on the same pages, so index scans touch few
    #: pages. 0.0 (unknown/non-numeric) falls back to Cardenas.
    correlation: float = 0.0

    @property
    def min_value(self) -> Any:
        return self.histogram.min_value if self.histogram else None

    @property
    def max_value(self) -> Any:
        return self.histogram.max_value if self.histogram else None

    def selectivity_eq(self, value: Any) -> float:
        if self.histogram is None:
            return 0.0
        return self.histogram.selectivity_eq(value)

    def selectivity_range(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True) -> float:
        if self.histogram is None:
            return 0.0
        return self.histogram.selectivity_range(lo, hi, lo_inclusive, hi_inclusive)

    def selectivity_in(self, values: Sequence[Any]) -> float:
        return min(1.0, sum(self.selectivity_eq(v) for v in set(values)))


@dataclass
class TableStats:
    table_name: str
    row_count: int
    page_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


def build_table_stats(table: HeapTable, buckets: int = DEFAULT_BUCKETS) -> TableStats:
    """Scan a table once and derive statistics for every column."""
    stats = TableStats(
        table_name=table.name,
        row_count=table.row_count,
        page_count=table.page_count,
    )
    for col in table.schema:
        values = [v for v in table.column_values(col.name) if v is not None]
        nulls = table.row_count - len(values)
        histogram = EquiDepthHistogram.build(values, buckets)
        stats.columns[col.name.lower()] = ColumnStats(
            name=col.name,
            row_count=table.row_count,
            null_count=nulls,
            ndv=len(set(values)),
            histogram=histogram,
            correlation=_heap_correlation(values),
        )
    return stats


def _heap_correlation(values: list[Any]) -> float:
    """|Pearson r| between value and heap position (numeric columns)."""
    n = len(values)
    if n < 3 or not isinstance(values[0], (int, float)) or isinstance(values[0], bool):
        return 0.0
    mean_pos = (n - 1) / 2.0
    mean_val = sum(values) / n
    cov = var_pos = var_val = 0.0
    for pos, val in enumerate(values):
        dp = pos - mean_pos
        dv = val - mean_val
        cov += dp * dv
        var_pos += dp * dp
        var_val += dv * dv
    if var_pos <= 0 or var_val <= 0:
        return 0.0
    return min(1.0, abs(cov) / (var_pos * var_val) ** 0.5)


class StatsCatalog:
    """Lazily-built, staleness-aware statistics for all tables."""

    def __init__(self, staleness_ratio: float = 0.2, buckets: int = DEFAULT_BUCKETS):
        self._stats: dict[str, TableStats] = {}
        self._rows_at_build: dict[str, int] = {}
        self.staleness_ratio = staleness_ratio
        self.buckets = buckets
        # Monotonic rebuild counter: anything caching planner output
        # (the plan cache) keys on this, so implicit staleness rebuilds
        # inside :meth:`get` invalidate cached plans exactly like an
        # explicit ANALYZE.
        self.version = 0

    def analyze(self, table: HeapTable) -> TableStats:
        """Force a rebuild (the SQL ``ANALYZE`` equivalent)."""
        stats = build_table_stats(table, self.buckets)
        key = table.name.lower()
        self._stats[key] = stats
        self._rows_at_build[key] = table.row_count
        self.version += 1
        return stats

    def get(self, table: HeapTable) -> TableStats:
        """Current stats, rebuilding when row count drifted too far."""
        key = table.name.lower()
        stats = self._stats.get(key)
        if stats is None:
            return self.analyze(table)
        built_at = self._rows_at_build.get(key, 0)
        drift = abs(table.row_count - built_at)
        if built_at == 0 or drift / max(1, built_at) > self.staleness_ratio:
            return self.analyze(table)
        return stats

    def invalidate(self, table_name: str) -> None:
        self._stats.pop(table_name.lower(), None)
        self._rows_at_build.pop(table_name.lower(), None)
        self.version += 1
