"""A B+-tree secondary index.

Classic order-``M`` B+-tree with all rowids stored in the leaves and
leaf-level sibling links for range scans.  Duplicate keys are supported
by keeping a list of rowids per key entry.  Deletion is by tombstone
removal from the leaf entry (no rebalancing on underflow — acceptable
for an append-mostly workload and keeps invariants simple; lookups stay
logarithmic because the structure only ever grows by splits).

The tree reports ``height`` and counts ``node_visits`` per operation so
the execution engine can charge a realistic index-traversal cost.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.common.errors import ExecutionError

DEFAULT_ORDER = 64


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[list[int]] = []
        self.next: _Leaf | None = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[-1] holds keys >= keys[-1]
        self.keys: list[Any] = []
        self.children: list[Any] = []


class BPlusTreeIndex:
    """Secondary index mapping column values to lists of rowids."""

    kind = "btree"

    def __init__(self, name: str, table: str, column: str, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ExecutionError("B+-tree order must be >= 4")
        self.name = name
        self.table = table
        self.column = column
        self.order = order
        self._root: _Leaf | _Inner = _Leaf()
        self._height = 1
        self._entry_count = 0  # number of (key, rowid) pairs
        self.node_visits = 0  # cumulative traversal counter

    # ----------------------------------------------------------------- stats

    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self._entry_count

    # ---------------------------------------------------------------- insert

    def insert(self, key: Any, rowid: int) -> None:
        """Add one (key, rowid) entry."""
        split = self._insert(self._root, key, rowid)
        if split is not None:
            sep, right = split
            new_root = _Inner()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._entry_count += 1

    def _insert(self, node: _Leaf | _Inner, key: Any, rowid: int):
        self.node_visits += 1
        if isinstance(node, _Leaf):
            pos = bisect.bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                node.values[pos].append(rowid)
                return None
            node.keys.insert(pos, key)
            node.values.insert(pos, [rowid])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        pos = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[pos], key, rowid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(pos, sep)
        node.children.insert(pos + 1, right)
        if len(node.children) > self.order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_inner(self, inner: _Inner):
        mid = len(inner.keys) // 2
        sep = inner.keys[mid]
        right = _Inner()
        right.keys = inner.keys[mid + 1 :]
        right.children = inner.children[mid + 1 :]
        inner.keys = inner.keys[:mid]
        inner.children = inner.children[: mid + 1]
        return sep, right

    # ---------------------------------------------------------------- delete

    def delete(self, key: Any, rowid: int) -> bool:
        """Remove one (key, rowid) entry; returns True when found."""
        leaf = self._find_leaf(key)
        pos = bisect.bisect_left(leaf.keys, key)
        if pos >= len(leaf.keys) or leaf.keys[pos] != key:
            return False
        try:
            leaf.values[pos].remove(rowid)
        except ValueError:
            return False
        if not leaf.values[pos]:
            del leaf.keys[pos]
            del leaf.values[pos]
        self._entry_count -= 1
        return True

    # ---------------------------------------------------------------- search

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            self.node_visits += 1
            pos = bisect.bisect_right(node.keys, key)
            node = node.children[pos]
        self.node_visits += 1
        return node

    def search_eq(self, key: Any) -> list[int]:
        """Rowids whose key equals ``key``."""
        leaf = self._find_leaf(key)
        pos = bisect.bisect_left(leaf.keys, key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return list(leaf.values[pos])
        return []

    def search_range(
        self,
        lo: Any = None,
        hi: Any = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[int]:
        """Rowids with keys in the given (possibly half-open) range.

        ``None`` bounds are unbounded on that side.  Results stream in
        key order, walking the leaf sibling chain.
        """
        if lo is not None:
            leaf: _Leaf | None = self._find_leaf(lo)
        else:
            node = self._root
            while isinstance(node, _Inner):
                self.node_visits += 1
                node = node.children[0]
            self.node_visits += 1
            leaf = node
        while leaf is not None:
            for key, rowids in zip(leaf.keys, leaf.values):
                if lo is not None:
                    if key < lo or (not lo_inclusive and key == lo):
                        continue
                if hi is not None:
                    if key > hi or (not hi_inclusive and key == hi):
                        return
                yield from rowids
            leaf = leaf.next
            if leaf is not None:
                self.node_visits += 1

    def keys(self) -> Iterator[Any]:
        """All distinct keys in order (test/debug helper)."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        leaf: _Leaf | None = node
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    # ------------------------------------------------------------ invariants

    def check_invariants(self) -> None:
        """Validate structural invariants (used by property tests)."""
        self._check_node(self._root, None, None, depth=1)
        keys = list(self.keys())
        if keys != sorted(keys):
            raise AssertionError("leaf keys not globally sorted")

    def _check_node(self, node, lo, hi, depth) -> int:
        if isinstance(node, _Leaf):
            if depth != self._height:
                raise AssertionError("leaves at differing depths")
            for key in node.keys:
                if lo is not None and key < lo:
                    raise AssertionError(f"leaf key {key!r} below bound {lo!r}")
                if hi is not None and key >= hi:
                    raise AssertionError(f"leaf key {key!r} above bound {hi!r}")
            if node.keys != sorted(node.keys):
                raise AssertionError("leaf keys unsorted")
            return 1
        if node.keys != sorted(node.keys):
            raise AssertionError("inner keys unsorted")
        if len(node.children) != len(node.keys) + 1:
            raise AssertionError("inner fanout mismatch")
        for i, child in enumerate(node.children):
            child_lo = node.keys[i - 1] if i > 0 else lo
            child_hi = node.keys[i] if i < len(node.keys) else hi
            self._check_node(child, child_lo, child_hi, depth + 1)
        return 1
