"""Index substrate: B+-tree, hash index, and row-id bitmaps."""

from repro.index.btree import BPlusTreeIndex
from repro.index.hashindex import HashIndex
from repro.index.bitmap import RowIdBitmap

__all__ = ["BPlusTreeIndex", "HashIndex", "RowIdBitmap"]
