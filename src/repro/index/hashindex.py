"""Hash index: exact-match lookups only.

Used for columns that are only ever probed with equality (e.g. the
policy table's ``querier`` column).  The optimizer refuses to plan
range predicates against it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable


class HashIndex:
    """Equality-only secondary index."""

    kind = "hash"

    def __init__(self, name: str, table: str, column: str):
        self.name = name
        self.table = table
        self.column = column
        self._buckets: dict[Any, list[int]] = defaultdict(list)
        self._entry_count = 0
        self.node_visits = 0

    def __len__(self) -> int:
        return self._entry_count

    def insert(self, key: Any, rowid: int) -> None:
        self._buckets[key].append(rowid)
        self._entry_count += 1

    def delete(self, key: Any, rowid: int) -> bool:
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        try:
            bucket.remove(rowid)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[key]
        self._entry_count -= 1
        return True

    def search_eq(self, key: Any) -> list[int]:
        self.node_visits += 1
        return list(self._buckets.get(key, ()))

    def search_in(self, keys: Iterable[Any]) -> list[int]:
        out: list[int] = []
        for key in keys:
            out.extend(self.search_eq(key))
        return out
