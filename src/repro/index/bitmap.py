"""Row-id bitmaps (paper Section 7, Experiment 4 infrastructure).

PostgreSQL combines multiple index scans by building per-scan bitmaps,
OR-ing them in memory, and visiting each heap page once ("bitmap heap
scan").  Experiment 4 (Figure 5) attributes much of Sieve's Postgres
speedup to exactly this — one bitmap per guard, OR-ed before touching
the heap — so the engine needs a faithful bitmap for the paper's
result shapes to reproduce.

Backed by a single Python int used as a bitset: union/intersection are
one C-level operation regardless of cardinality.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Bit offsets set in each byte value — lets iteration walk the bitmap
#: bytewise instead of paying a big-int shift per set bit (which is
#: quadratic for dense maps).
_BYTE_BITS: list[tuple[int, ...]] = [
    tuple(b for b in range(8) if value >> b & 1) for value in range(256)
]


class RowIdBitmap:
    """An immutable-ish set of rowids with cheap boolean algebra."""

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0):
        self._bits = bits

    @classmethod
    def from_rowids(cls, rowids: Iterable[int]) -> "RowIdBitmap":
        """Build from rowids via a bytearray: appending one bit to a
        Python int re-allocates the whole int, so the naive
        ``bits |= 1 << rid`` loop is quadratic in the table size."""
        buf = bytearray()
        size = 0
        for rid in rowids:
            byte = rid >> 3
            if byte >= size:
                buf.extend(b"\x00" * (byte + 1 - size))
                size = byte + 1
            buf[byte] |= 1 << (rid & 7)
        return cls(int.from_bytes(bytes(buf), "little"))

    def add(self, rowid: int) -> None:
        self._bits |= 1 << rowid

    def __contains__(self, rowid: int) -> bool:
        return bool(self._bits >> rowid & 1)

    def __or__(self, other: "RowIdBitmap") -> "RowIdBitmap":
        return RowIdBitmap(self._bits | other._bits)

    def __and__(self, other: "RowIdBitmap") -> "RowIdBitmap":
        return RowIdBitmap(self._bits & other._bits)

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowIdBitmap) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def iter_sorted(self) -> Iterator[int]:
        """Rowids in ascending order — the property that makes the heap
        visit sequential-ish (each page touched once, in order).

        Walks the bitmap bytewise (one C-level conversion, then a
        256-entry offset table per non-zero byte) — linear in the
        bitmap size instead of one big-int shift per set bit."""
        bits = self._bits
        if not bits:
            return
        data = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
        byte_bits = _BYTE_BITS
        base = 0
        for byte in data:
            if byte:
                for offset in byte_bits[byte]:
                    yield base + offset
            base += 8

    def pages(self, page_size: int) -> list[int]:
        """Distinct page numbers covered, ascending."""
        seen: list[int] = []
        last = -1
        for rid in self.iter_sorted():
            page = rid // page_size
            if page != last:
                seen.append(page)
                last = page
        return seen
