"""Closed-loop load generation for the serving tier.

A *closed-loop* client submits one request, waits for its result, and
immediately submits the next — the standard way to measure a server's
capacity without modelling an arrival process: with N clients there
are at most N requests in the system, so measured throughput is the
server's sustainable rate at concurrency N and latency percentiles
are honest (no coordinated-omission artifact from a lagging open-loop
schedule).

:func:`run_closed_loop` drives a
:class:`~repro.service.SieveServer` with one thread per
:class:`ClientScript` (a (querier, purpose) plus the queries it
cycles through), for a fixed duration or request count, and returns a
:class:`LoadReport` — aggregate queries/sec plus client-observed
latency percentiles (submit → result, queue wait included).  A
rejected submission (:class:`~repro.common.errors.
ServiceOverloadedError`, i.e. backpressure) is counted and retried
after a short pause.  Unsuccessful outcomes are kept as *distinct*
counters — ``rejected`` (shed at admission), ``timed_out`` (deadline
or bounded-wait expiry), ``errored`` (any other failure) — so fault
benches can assert on the error taxonomy, not just a lump sum.

:func:`run_open_loop` is the complementary *overload* generator: it
submits on a fixed arrival schedule (aggregate ``rate_qps`` split
across the scripts) whether or not earlier requests have finished, so
offered load can exceed capacity — the regime where SLO-aware
shedding (:meth:`SieveServer.enable_slo
<repro.service.server.SieveServer.enable_slo>`) earns its keep.
Rejected arrivals are *dropped* (counted, not retried): an open-loop
client models independent arrivals, not a retry storm.

``benchmarks/bench_service_throughput.py`` sweeps worker counts with
this harness; ``benchmarks/bench_health.py`` drives the overload
burst; ``examples/concurrent_server.py`` shows it in miniature.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.common.errors import DeadlineExceededError, ServiceOverloadedError
from repro.service.server import LatencySummary, SieveServer

#: How long a client sleeps after a backpressure rejection before
#: retrying (seconds).  Long enough to let the queue drain a little,
#: short enough that a closed-loop client stays busy.
REJECTION_BACKOFF_S = 0.002


@dataclass(frozen=True)
class ClientScript:
    """One closed-loop client: a metadata context plus its queries."""

    querier: Any
    purpose: str
    sqls: Sequence[Any]

    def sql_at(self, i: int) -> Any:
        return self.sqls[i % len(self.sqls)]


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run.

    Unsuccessful requests split into three *distinct* taxa — chaos
    benches assert on each separately, so lumping them together would
    hide e.g. a hang (timeout) behind a pile of clean rejections:

    * ``rejected`` — turned away at admission (backpressure or the
      adaptive shedder); the request never entered the system;
    * ``timed_out`` — admitted but no answer within the time budget
      (a worker-side
      :class:`~repro.common.errors.DeadlineExceededError` or a
      client-side :class:`concurrent.futures.TimeoutError` on the
      bounded wait);
    * ``errored`` — admitted and answered with any *other* exception
      (execution failure, shard crash surfaced as
      ``ShardUnavailableError``, ...).

    ``failed`` remains as the sum of the admitted-but-unsuccessful
    taxa (timed_out + errored), for reports that only care whether
    admitted work succeeded.
    """

    clients: int
    duration_s: float
    completed: int
    rejected: int
    timed_out: int = 0
    errored: int = 0
    latency: LatencySummary = field(default_factory=LatencySummary)

    @property
    def failed(self) -> int:
        """Admitted requests that did not produce a result."""
        return self.timed_out + self.errored

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def offered(self) -> int:
        """Arrivals the generator produced (served + failed + shed)."""
        return self.completed + self.failed + self.rejected

    @property
    def reject_rate(self) -> float:
        """Fraction of offered load turned away at admission."""
        return self.rejected / self.offered if self.offered else 0.0

    def row(self) -> list[Any]:
        """Markdown-table row used by the throughput bench."""
        return [
            self.clients,
            f"{self.throughput_qps:,.0f}",
            f"{self.latency.p50_ms:,.2f}",
            f"{self.latency.p95_ms:,.2f}",
            f"{self.latency.p99_ms:,.2f}",
            self.rejected,
            self.failed,
        ]


def _is_timeout(exc: BaseException) -> bool:
    """Classify an admitted request's failure: time-budget exhaustion
    (either side of the future) vs a genuine error."""
    return isinstance(exc, (DeadlineExceededError, FutureTimeoutError))


def run_closed_loop(
    server: SieveServer,
    scripts: Sequence[ClientScript],
    duration_s: float | None = None,
    requests_per_client: int | None = None,
    deadline_s: float | None = None,
    result_timeout_s: float | None = None,
) -> LoadReport:
    """Drive ``server`` with one thread per script; closed loop.

    Exactly one of ``duration_s`` / ``requests_per_client`` selects
    the stopping rule.  The report's ``duration_s`` is the measured
    wall time (first submission to last completion), so
    ``throughput_qps`` is comparable across stopping rules.

    ``deadline_s`` stamps a per-request serving deadline onto each
    submission and ``result_timeout_s`` bounds the client-side wait —
    both are off by default (legacy unbounded behaviour) and exist so
    chaos/fault benches can measure a server that is allowed to hang.
    """
    if (duration_s is None) == (requests_per_client is None):
        raise ValueError("pass exactly one of duration_s / requests_per_client")
    lock = threading.Lock()
    latencies: list[float] = []
    timed_out = 0
    errored = 0
    rejected = 0
    deadline = [0.0]  # set just before the clients start

    def client_loop(script: ClientScript) -> None:
        nonlocal timed_out, errored, rejected
        local_latencies: list[float] = []
        local_timed_out = 0
        local_errored = 0
        local_rejected = 0
        i = 0
        while True:
            if requests_per_client is not None and i >= requests_per_client:
                break
            if duration_s is not None and time.perf_counter() >= deadline[0]:
                break
            sql = script.sql_at(i)
            i += 1
            start = time.perf_counter()
            try:
                future = server.submit(
                    sql, script.querier, script.purpose, deadline_s=deadline_s
                )
            except ServiceOverloadedError:
                local_rejected += 1
                time.sleep(REJECTION_BACKOFF_S)
                continue
            try:
                future.result(timeout=result_timeout_s)
            except Exception as exc:
                if _is_timeout(exc):
                    local_timed_out += 1
                else:
                    local_errored += 1
            local_latencies.append(time.perf_counter() - start)
        with lock:
            latencies.extend(local_latencies)
            timed_out += local_timed_out
            errored += local_errored
            rejected += local_rejected

    threads = [
        threading.Thread(target=client_loop, args=(script,), name=f"loadgen-{i}")
        for i, script in enumerate(scripts)
    ]
    started = time.perf_counter()
    deadline[0] = started + (duration_s or 0.0)
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return LoadReport(
        clients=len(scripts),
        duration_s=elapsed,
        completed=len(latencies) - timed_out - errored,
        timed_out=timed_out,
        errored=errored,
        rejected=rejected,
        latency=LatencySummary.of_seconds(latencies),
    )


def run_open_loop(
    server: SieveServer,
    scripts: Sequence[ClientScript],
    rate_qps: float,
    duration_s: float,
    result_timeout_s: float = 60.0,
) -> LoadReport:
    """Drive ``server`` at a fixed aggregate arrival rate; open loop.

    Each script thread submits every ``len(scripts) / rate_qps``
    seconds regardless of outstanding work, so offered load is set by
    the schedule, not the server — ``rate_qps`` above capacity *is*
    the overload.  Latency is client-observed (submit → result) over
    **served** requests only; rejections (static backpressure or the
    adaptive shedder) are counted into ``rejected`` and dropped.  The
    served-p99 / reject-rate pair is the quantity the health bench
    compares across shedding policies.
    """
    if rate_qps <= 0.0:
        raise ValueError("rate_qps must be positive")
    if not scripts:
        raise ValueError("run_open_loop needs at least one script")
    interval = len(scripts) / rate_qps
    lock = threading.Lock()
    # Appended from future done-callbacks (list.append is atomic):
    # latency is stamped the moment the worker resolves the future,
    # NOT when the client thread gets around to reaping it — reaping
    # happens after the whole submission window, which would inflate
    # every early request's latency to ~duration_s.
    latencies: list[float] = []
    timeouts: list[int] = []
    errors: list[int] = []
    rejected = 0
    reap_timeouts = 0

    def observe(future: Any, start: float) -> None:
        latencies.append(time.perf_counter() - start)
        exc = future.exception()
        if exc is not None:
            (timeouts if _is_timeout(exc) else errors).append(1)

    started_at = [0.0]

    def client_loop(index: int, script: ClientScript) -> None:
        nonlocal rejected, reap_timeouts
        pending: list[Any] = []
        local_rejected = 0
        local_reap_timeouts = 0
        # Stagger the scripts across one interval so aggregate
        # arrivals are evenly spaced, not N-at-a-time bursts.
        next_at = started_at[0] + interval * (index / len(scripts))
        deadline = started_at[0] + duration_s
        i = 0
        while True:
            now = time.perf_counter()
            if now >= deadline:
                break
            if now < next_at:
                time.sleep(min(next_at - now, deadline - now))
                continue
            next_at += interval
            sql = script.sql_at(i)
            i += 1
            start = time.perf_counter()
            try:
                future = server.submit(sql, script.querier, script.purpose)
            except ServiceOverloadedError:
                local_rejected += 1
            else:
                future.add_done_callback(
                    lambda f, s=start: observe(f, s)
                )
                pending.append(future)
        for future in pending:  # reap: keep the report's population complete
            try:
                future.result(timeout=result_timeout_s)
            except FutureTimeoutError:
                # Never resolved within the reap budget — observe()
                # has not fired, so count the hang here.
                local_reap_timeouts += 1
            except Exception:
                pass  # observe() already counted it
        with lock:
            rejected += local_rejected
            reap_timeouts += local_reap_timeouts

    threads = [
        threading.Thread(target=client_loop, args=(i, script), name=f"openloop-{i}")
        for i, script in enumerate(scripts)
    ]
    started_at[0] = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started_at[0]
    observed_failed = len(timeouts) + len(errors)
    return LoadReport(
        clients=len(scripts),
        duration_s=elapsed,
        completed=len(latencies) - observed_failed,
        timed_out=len(timeouts) + reap_timeouts,
        errored=len(errors),
        rejected=rejected,
        latency=LatencySummary.of_seconds(latencies),
    )
