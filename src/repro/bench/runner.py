"""Measuring one enforcement engine on one query.

Captures wall-clock time *and* the deterministic counter diff, so
benches can report both (the paper reports milliseconds; the shapes
are asserted on cost units, which don't depend on interpreter noise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.db.counters import CounterSet


@dataclass
class EngineRun:
    engine: str
    wall_ms: float
    cost_units: float
    rows: int
    counters: dict[str, int] = field(default_factory=dict)
    timed_out: bool = False

    def row(self) -> list[Any]:
        label = f"{self.wall_ms:,.1f}"
        if self.timed_out:
            label += "+"
        return [self.engine, label, f"{self.cost_units:,.0f}", self.rows]


def measure_engine(
    name: str,
    db,
    run: Callable[[], Any],
    repeats: int = 1,
    soft_timeout_s: float | None = None,
    warmup: bool = False,
) -> EngineRun:
    """Run ``run`` ``repeats`` times; report average warm wall time and
    the per-run counter diff (like the paper's warm-performance runs).

    ``warmup=True`` executes once unmeasured first — this is how the
    paper reports "warm performance": one-time work (guard generation,
    statistics) happens offline, not inside the measured query.

    ``soft_timeout_s`` mimics the paper's TO marker: runs are never
    interrupted, but a run exceeding the limit is flagged (reported
    with a ``+`` suffix, matching the paper's ``t+`` notation).
    """
    if warmup:
        run()
    wall_total = 0.0
    result_rows = 0
    before = db.counters.snapshot()
    timed_out = False
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        wall_total += elapsed
        if soft_timeout_s is not None and elapsed > soft_timeout_s:
            timed_out = True
        result_rows = len(result) if result is not None else 0
    diff = db.counters.diff(before)
    per_run = {k: v // max(1, repeats) for k, v in diff.items()}
    return EngineRun(
        engine=name,
        wall_ms=(wall_total / max(1, repeats)) * 1000.0,
        cost_units=CounterSet.cost_of(per_run),
        rows=result_rows,
        counters=per_run,
        timed_out=timed_out,
    )
