"""Benchmark result persistence and formatting.

Every experiment writes a Markdown table plus the raw data as JSON to
``benchmarks/results/`` so experiment write-ups can reference
regenerated numbers, and prints the table so it shows up in bench
logs.

Output format (per :func:`write_result` call with name ``<name>``):

* ``benchmarks/results/<name>.md`` — ``# <title>``, a GitHub-Markdown
  table (floats rendered ``{:,.2f}`` by :func:`format_table`), and an
  optional ``notes`` paragraph stating the paper's expected shape so a
  reader can judge the run without the paper at hand.
* ``benchmarks/results/<name>.json`` — the bench's ``data`` argument
  serialized with ``json.dumps(indent=2, default=str)`` (anything
  non-JSON-native, e.g. Decimals or dataclasses' reprs, becomes a
  string).  By convention ``data`` is a list with one element per
  swept configuration, either

  - a list/tuple ordered exactly as the Markdown table's columns
    (older benches, e.g. ``fig6_scalability.json``), or
  - an object keyed by metric name (newer benches, e.g.
    ``session_cache.json`` with keys ``policies``, ``cold_ms``,
    ``warm_ms``, ``cold_cost``, ``warm_cost``, ``speedup``,
    ``hit_rate``).

  Wall-clock metrics are suffixed ``_ms`` and are hardware-dependent;
  deterministic metrics (``*_cost`` in
  :attr:`~repro.db.counters.CounterSet.cost_units`, counters, ratios)
  are what cross-run comparisons and assertions should use.

The README's "Benchmark output format" section is the user-facing
summary of this contract; keep the two in sync.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A GitHub-Markdown table."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    head = "| " + " | ".join(headers) + " |"
    sep = "| " + " | ".join("---" for _ in headers) + " |"
    body = ["| " + " | ".join(fmt(v) for v in row) + " |" for row in rows]
    return "\n".join([head, sep, *body])


def write_result(
    name: str,
    title: str,
    table: str,
    data: Any = None,
    notes: str = "",
) -> pathlib.Path:
    """Persist one experiment's output; returns the markdown path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    md_path = RESULTS_DIR / f"{name}.md"
    parts = [f"# {title}", "", table]
    if notes:
        parts += ["", notes]
    text = "\n".join(parts) + "\n"
    md_path.write_text(text)
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(data, indent=2, default=str))
    print(f"\n{text}")
    return md_path
