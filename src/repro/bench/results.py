"""Benchmark result persistence and formatting.

Every experiment writes a Markdown table plus the raw data as JSON to
``benchmarks/results/`` so EXPERIMENTS.md can reference regenerated
numbers, and prints the table so it shows up in bench logs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A GitHub-Markdown table."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    head = "| " + " | ".join(headers) + " |"
    sep = "| " + " | ".join("---" for _ in headers) + " |"
    body = ["| " + " | ".join(fmt(v) for v in row) + " |" for row in rows]
    return "\n".join([head, sep, *body])


def write_result(
    name: str,
    title: str,
    table: str,
    data: Any = None,
    notes: str = "",
) -> pathlib.Path:
    """Persist one experiment's output; returns the markdown path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    md_path = RESULTS_DIR / f"{name}.md"
    parts = [f"# {title}", "", table]
    if notes:
        parts += ["", notes]
    text = "\n".join(parts) + "\n"
    md_path.write_text(text)
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(data, indent=2, default=str))
    print(f"\n{text}")
    return md_path
