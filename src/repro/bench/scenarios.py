"""Cached benchmark scenarios.

Building a bench-scale campus (tens of thousands of events, thousands
of policies) takes seconds; every bench module shares the same cached
worlds within a pytest session.  Scale constants are chosen so the
whole `pytest benchmarks/ --benchmark-only` run finishes in minutes on
a laptop while preserving the paper's result shapes (EXPERIMENTS.md
documents the scale-down ratios).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from repro.common.rng import make_rng
from repro.core.middleware import Sieve
from repro.datasets.mall import MallConfig, MallDataset, generate_mall
from repro.datasets.policies import (
    PURPOSES,
    CampusPolicies,
    PolicyGenConfig,
    generate_campus_policies,
)
from repro.datasets.tippers import (
    TippersConfig,
    TippersDataset,
    WIFI_TABLE,
    generate_tippers,
)
from repro.policy.model import ObjectCondition, Policy
from repro.policy.store import PolicyStore

# Bench scale (paper scale in parentheses): 800 devices (36,436),
# 40 days (~90), ~30k events (3.9M).
BENCH_DEVICES = 800
BENCH_DAYS = 40


@dataclass
class BenchWorld:
    dataset: TippersDataset
    campus: CampusPolicies
    store: PolicyStore
    sieve: Sieve

    @property
    def db(self):
        return self.dataset.db


@lru_cache(maxsize=4)
def bench_tippers(personality: str = "mysql", seed: int = 7) -> BenchWorld:
    """The shared campus world for one personality."""
    dataset = generate_tippers(
        TippersConfig(
            seed=seed,
            n_devices=BENCH_DEVICES,
            days=BENCH_DAYS,
            personality=personality,
        )
    )
    campus = generate_campus_policies(dataset, PolicyGenConfig(seed=seed + 1))
    store = PolicyStore(dataset.db, dataset.groups)
    store.insert_many(campus.policies)
    sieve = Sieve(dataset.db, store)
    return BenchWorld(dataset=dataset, campus=campus, store=store, sieve=sieve)


@lru_cache(maxsize=2)
def bench_mall(personality: str = "postgres", seed: int = 13) -> MallDataset:
    return generate_mall(
        MallConfig(seed=seed, n_customers=900, days=25, personality=personality)
    )


def policies_for_querier(
    dataset: TippersDataset,
    querier: Any,
    count: int,
    purpose: str = "analytics",
    seed: int = 31,
) -> list[Policy]:
    """Synthesize exactly ``count`` policies naming one querier.

    Used by the cumulative-policy-set sweeps (Experiments 4-5): the
    paper selects queriers with >=300 (TIPPERS) / >=1,200 (Mall)
    policies and grows the set in increments.

    The structure mirrors the paper's corpus: a querier's policies
    come from a bounded *community* (students of the same classes /
    building region), so owners repeat (~6 policies each — the paper's
    mean partition is 7) and conditions share canonical time windows
    (class slots) and the community's APs — exactly the sharing that
    makes guard grouping effective.
    """
    rng = make_rng(seed, f"per-querier-{querier}-{count}")
    community_size = max(3, count // 6)
    community = rng.sample(dataset.devices, min(community_size, len(dataset.devices)))
    # Canonical "class slot" windows shared across the community.
    slots = [(480 + 90 * i, 480 + 90 * i + rng.choice((50, 80, 110))) for i in range(8)]
    days = dataset.config.days
    date_slots = [
        (s, min(days - 1, s + rng.choice((7, 14))))
        for s in range(0, max(1, days - 7), max(1, days // 5))
    ]
    out: list[Policy] = []
    for _ in range(count):
        owner = rng.choice(community)
        conditions = [ObjectCondition("owner", "=", owner)]
        kind = rng.random()
        if kind < 0.45:
            lo, hi = rng.choice(slots)
            conditions.append(ObjectCondition("ts_time", ">=", lo, "<=", hi))
        elif kind < 0.7 and date_slots:
            d1, d2 = rng.choice(date_slots)
            conditions.append(ObjectCondition("ts_date", ">=", d1, "<=", d2))
        elif kind < 0.9:
            home = dataset.region_aps[dataset.affinity_region[owner]]
            conditions.append(ObjectCondition("wifiAP", "=", rng.choice(home)))
        # else: owner-only policy
        out.append(
            Policy(
                owner=owner,
                querier=querier,
                purpose=purpose,
                table=WIFI_TABLE,
                object_conditions=tuple(conditions),
            )
        )
    return out


def mall_policies_for_shop(
    mall: MallDataset, shop: int, count: int, seed: int = 47
) -> list[Policy]:
    """Exactly ``count`` policies naming one shop as querier (Exp. 5).

    A shop's policies come from its *customer community* — primarily
    the customers whose favourite shops include it — so owners repeat
    and guard partitions group, as in the campus corpus.
    """
    rng = make_rng(seed, f"mall-shop-{shop}-{count}")
    querier = mall.shop_querier(shop)
    visitors = sorted(
        c for c, favorites in mall.favorite_shops.items() if shop in favorites
    )
    everyone = sorted(mall.customer_kind)
    community_size = max(20, count // 6)
    community = list(visitors[:community_size])
    filler = [c for c in everyone if c not in set(community)]
    rng.shuffle(filler)
    community.extend(filler[: max(0, community_size - len(community))])
    days = mall.config.days
    out: list[Policy] = []
    for _ in range(count):
        owner = rng.choice(community)
        conditions = [ObjectCondition("owner", "=", owner)]
        if rng.random() < 0.5:
            start = rng.randrange(600, 1200)
            conditions.append(
                ObjectCondition("ts_time", ">=", start, "<=", min(1439, start + rng.randrange(60, 240)))
            )
        else:
            start = rng.randrange(0, max(1, days - 4))
            conditions.append(
                ObjectCondition("ts_date", ">=", start, "<=", min(days - 1, start + rng.randrange(2, 10)))
            )
        out.append(
            Policy(
                owner=owner,
                querier=querier,
                purpose="any",
                table="WiFi_Connectivity",
                object_conditions=tuple(conditions),
            )
        )
    return out


def designated_querier(world: BenchWorld, profile: str = "faculty", rank: int = 0):
    """A benchmark querier of the given profile with a healthy corpus."""
    return world.campus.designated_queriers[profile][rank]
