"""Benchmark support: scenario caches, engine runners, result reporting."""

from repro.bench.scenarios import bench_tippers, bench_mall, policies_for_querier
from repro.bench.runner import measure_engine, EngineRun
from repro.bench.results import write_result, format_table

__all__ = [
    "bench_tippers",
    "bench_mall",
    "policies_for_querier",
    "measure_engine",
    "EngineRun",
    "write_result",
    "format_table",
]
