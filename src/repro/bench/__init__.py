"""Benchmark support: scenario caches, engine runners, load
generation (closed- and open-loop), result reporting."""

from repro.bench.scenarios import bench_tippers, bench_mall, policies_for_querier
from repro.bench.loadgen import ClientScript, LoadReport, run_closed_loop, run_open_loop
from repro.bench.runner import measure_engine, EngineRun
from repro.bench.results import write_result, format_table

__all__ = [
    "ClientScript",
    "LoadReport",
    "bench_tippers",
    "bench_mall",
    "policies_for_querier",
    "measure_engine",
    "EngineRun",
    "run_closed_loop",
    "run_open_loop",
    "write_result",
    "format_table",
]
