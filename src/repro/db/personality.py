"""DBMS personalities.

The paper layers Sieve over MySQL and PostgreSQL and leans on features
that differ between them (Sections 5.3, Experiments 4-5):

* **MySQL** honours ``FORCE INDEX``/``USE INDEX()`` hints and uses one
  access path per table reference; Sieve therefore rewrites guarded
  expressions as a UNION of per-guard forced index scans.
* **PostgreSQL** ignores hints but can OR multiple index scans through
  in-memory bitmaps (BitmapOr + bitmap heap scan), visiting each heap
  page once — which is where the larger speedups in Experiments 4-5
  come from.

A :class:`Personality` captures exactly those behavioural switches for
the bundled engine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Personality:
    name: str
    honors_index_hints: bool
    supports_bitmap_or: bool
    # Cost-model knobs used by the planner when comparing access paths.
    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    bitmap_page_cost: float = 2.0
    cpu_tuple_cost: float = 0.01
    cpu_predicate_cost: float = 0.0025
    index_node_cost: float = 0.005

    def __str__(self) -> str:
        return self.name


MYSQL = Personality(name="mysql", honors_index_hints=True, supports_bitmap_or=False)
POSTGRES = Personality(name="postgres", honors_index_hints=False, supports_bitmap_or=True)

# SQLite (the bundled real backend, repro.backend.sqlite): it *parses*
# index hints (INDEXED BY / NOT INDEXED), but its optimizer also ORs
# multiple index scans natively (the "OR optimization", SQLite's
# BitmapOr analogue) — measured on the campus workload, the
# PostgreSQL-shaped rewrite (one SELECT, guard disjunction, no hints)
# beats both the hinted UNION shape and a forced linear scan, so the
# middleware treats SQLite as a bitmap-OR engine when shaping rewrites.
SQLITE = Personality(name="sqlite", honors_index_hints=False, supports_bitmap_or=True)

PERSONALITIES = {"mysql": MYSQL, "postgres": POSTGRES, "sqlite": SQLITE}


def personality_by_name(name: str) -> Personality:
    try:
        return PERSONALITIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown personality {name!r}; choose from {sorted(PERSONALITIES)}"
        ) from None
