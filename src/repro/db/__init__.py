"""Database facade: engine + optimizer + counters behind one object."""

from repro.db.counters import CounterSet
from repro.db.personality import Personality, MYSQL, POSTGRES
from repro.db.database import Database, connect

__all__ = ["CounterSet", "Personality", "MYSQL", "POSTGRES", "Database", "connect"]
