"""Deterministic execution counters (paper Section 7 methodology).

Section 7 reports query latencies; wall-clock timings of a pure-Python
engine are noisy and hardware dependent, so the paper's *shapes* (who
wins, where crossovers fall — Figures 3-6, Tables 6-11) are asserted
on these counters instead.  ``cost_units`` aggregates them with
PostgreSQL-inspired weights: sequential page = 1.0, random page = 4.0,
bitmap heap page = 2.0 (between the two, since bitmap heap visits are
page-ordered), plus CPU terms for per-tuple work, predicate and policy
evaluations, and UDF invocations (the Δ operator of Section 5.2).

``guard_cache_hits`` / ``guard_cache_misses`` track the session guard
cache (:mod:`repro.core.cache`); they carry zero cost weight — cache
bookkeeping is not an engine cost — but let benches assert hit rates
deterministically.

``plan_cache_hits`` / ``plan_cache_misses`` track the prepared-query
plan cache (:class:`repro.core.cache.PlanCache`): a hit means an
execution reused a memoized post-rewrite, post-plan artifact and
skipped parse → strategy → rewrite → plan entirely.  Zero cost weight
for the same reason as the guard cache — cache bookkeeping is not
enforcement work, and the executed plan charges the exact same
engine counters either way — but benches and the serving tier's
stats assert hit rates on them deterministically.

``batches`` counts row batches formed by the vectorized executor's
scan nodes, and ``expr_cache_hits`` / ``expr_cache_misses`` track the
Database's compiled-expression cache (:mod:`repro.expr.codegen`).
All three carry zero cost weight — batching and compilation caching
are engine mechanics, not simulated I/O or per-tuple work, and the
per-tuple counters (``tuples_scanned``, ``predicate_evals``,
``policy_evals``) are charged identically by both executors so
``cost_units`` stays execution-mode independent.

``backend_queries`` / ``backend_rows`` count rewritten statements
shipped to an external execution backend (:mod:`repro.backend`) and
the rows it returned.  They also carry zero cost weight: the backend
is a real engine whose cost shows up as wall time, not as bundled
engine page/CPU charges.

``service_*`` counters track the concurrent serving tier
(:mod:`repro.service`): admitted/rejected/failed requests, scheduler
batches, and two accumulated wall-time totals in integer microseconds
— ``service_queue_wait_us`` (submit → worker pickup) and
``service_exec_us`` (worker pickup → result).  The time totals are the
one deliberate exception to the no-wall-clock rule: queueing delay
*is* the phenomenon the service tier measures, there is no
deterministic proxy for it, and they carry zero cost weight so
``cost_units`` stays hardware-independent.  The server updates them
under its own lock (plain ``+=`` from many workers would lose
increments).

``audit_records`` / ``audit_flushes`` track the audit tier
(:mod:`repro.audit`): decision records chained into an
:class:`~repro.audit.AuditLog` and buffer flushes that chained them
(a direct, unbuffered append counts as a flush of one).  Zero cost
weight — audit is accounting *about* enforcement, not enforcement
work — and deliberately excluded from the enforcement counters the
differential suites compare, so an audited run's enforcement deltas
are bit-identical to an unaudited run's.

``cluster_*`` counters track the sharded cluster tier
(:mod:`repro.cluster`), charged to the *coordinator's* database (the
one holding the base policy corpus) under the coordinator's lock:
``cluster_requests`` (requests routed to a shard),
``cluster_unavailable`` (requests refused because the owning shard is
down — :class:`~repro.common.errors.ShardUnavailableError`
backpressure), ``cluster_policy_writes`` /
``cluster_policy_fanout`` (admin write operations routed, and the
total shard deliveries they scattered to — a group policy fans out to
every shard holding a member, so fanout ≥ writes), and
``cluster_rebalance_moves`` (queriers migrated by hash-ring changes).
All zero cost weight: routing is coordination, not engine work — the
per-query engine cost lands on each shard's own counters, whose sum
the differential suite holds identical to a single server's.

The fault-tolerance tier (:mod:`repro.faults` plus the coordinator's
resilient request path) adds: ``service_deadline_timeouts`` (queued
requests a worker refused because their deadline had already passed),
``cluster_retries`` (transient shard failures retried with jittered
backoff), ``cluster_hedges`` / ``cluster_hedge_wins`` (hedged
duplicate reads issued after the hedge delay, and how many resolved
first — safe to duplicate because queries are read-only),
``cluster_deadline_timeouts`` (coordinator-side waits converted into
:class:`~repro.common.errors.DeadlineExceededError`),
``cluster_scatter_aborts`` (two-phase policy scatters rolled back in
prepare — no shard observed the write), ``cluster_shard_rebuilds``
(crashed shards the supervisor rebuilt from the authoritative store),
and ``faults_injected`` (faults a :class:`~repro.faults.FaultInjector`
actually fired).  All zero cost weight: fault handling is
coordination, and the chaos differential suite proves the *answers*
under faults stay row-identical to the fault-free oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CostWeights:
    seq_page: float = 1.0
    random_page: float = 4.0
    bitmap_page: float = 2.0
    cpu_tuple: float = 0.01
    cpu_predicate: float = 0.0025
    cpu_policy: float = 0.0025
    index_node: float = 0.005
    udf_invocation: float = 0.5
    udf_policy: float = 0.001


@dataclass
class CounterSet:
    """Mutable counters accumulated during query execution."""

    pages_sequential: int = 0
    pages_random: int = 0
    pages_bitmap: int = 0
    tuples_scanned: int = 0
    tuples_output: int = 0
    predicate_evals: int = 0
    policy_evals: int = 0
    index_node_visits: int = 0
    udf_invocations: int = 0
    udf_policy_evals: int = 0
    guard_cache_hits: int = 0
    guard_cache_misses: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    batches: int = 0
    expr_cache_hits: int = 0
    expr_cache_misses: int = 0
    backend_queries: int = 0
    backend_rows: int = 0
    service_requests: int = 0
    service_batches: int = 0
    service_rejections: int = 0
    service_failures: int = 0
    service_queue_wait_us: int = 0
    service_exec_us: int = 0
    cluster_requests: int = 0
    cluster_unavailable: int = 0
    cluster_policy_writes: int = 0
    cluster_policy_fanout: int = 0
    cluster_rebalance_moves: int = 0
    service_deadline_timeouts: int = 0
    cluster_retries: int = 0
    cluster_hedges: int = 0
    cluster_hedge_wins: int = 0
    cluster_deadline_timeouts: int = 0
    cluster_scatter_aborts: int = 0
    cluster_shard_rebuilds: int = 0
    faults_injected: int = 0
    audit_records: int = 0
    audit_flushes: int = 0
    weights: CostWeights = field(default_factory=CostWeights)

    _COUNTER_NAMES = (
        "pages_sequential",
        "pages_random",
        "pages_bitmap",
        "tuples_scanned",
        "tuples_output",
        "predicate_evals",
        "policy_evals",
        "index_node_visits",
        "udf_invocations",
        "udf_policy_evals",
        "guard_cache_hits",
        "guard_cache_misses",
        "plan_cache_hits",
        "plan_cache_misses",
        "batches",
        "expr_cache_hits",
        "expr_cache_misses",
        "backend_queries",
        "backend_rows",
        "service_requests",
        "service_batches",
        "service_rejections",
        "service_failures",
        "service_queue_wait_us",
        "service_exec_us",
        "cluster_requests",
        "cluster_unavailable",
        "cluster_policy_writes",
        "cluster_policy_fanout",
        "cluster_rebalance_moves",
        "service_deadline_timeouts",
        "cluster_retries",
        "cluster_hedges",
        "cluster_hedge_wins",
        "cluster_deadline_timeouts",
        "cluster_scatter_aborts",
        "cluster_shard_rebuilds",
        "faults_injected",
        "audit_records",
        "audit_flushes",
    )

    def reset(self) -> None:
        for name in self._COUNTER_NAMES:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self._COUNTER_NAMES}

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        return {
            name: getattr(self, name) - before.get(name, 0)
            for name in self._COUNTER_NAMES
        }

    @property
    def cost_units(self) -> float:
        w = self.weights
        return (
            self.pages_sequential * w.seq_page
            + self.pages_random * w.random_page
            + self.pages_bitmap * w.bitmap_page
            + self.tuples_scanned * w.cpu_tuple
            + self.predicate_evals * w.cpu_predicate
            + self.policy_evals * w.cpu_policy
            + self.index_node_visits * w.index_node
            + self.udf_invocations * w.udf_invocation
            + self.udf_policy_evals * w.udf_policy
        )

    @staticmethod
    def cost_of(snapshot_diff: dict[str, int], weights: CostWeights | None = None) -> float:
        """Cost units of a snapshot diff (for per-query accounting)."""
        w = weights or CostWeights()
        temp = CounterSet(weights=w)
        for name, value in snapshot_diff.items():
            if name in CounterSet._COUNTER_NAMES:
                setattr(temp, name, value)
        return temp.cost_units

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{name}={getattr(self, name)}" for name in self._COUNTER_NAMES]
        parts.append(f"cost_units={self.cost_units:.2f}")
        return "CounterSet(" + ", ".join(parts) + ")"
