"""The Database facade.

One object bundles catalog, statistics, planner, executor, UDF registry
and counters — the "existing DBMS" that Sieve layers on.  Construct it
with a personality to get MySQL-like (hint-obeying) or PostgreSQL-like
(bitmap-OR) behaviour::

    db = connect(personality="mysql")
    db.create_table("t", Schema.of(("id", ColumnType.INT), ...))
    db.insert("t", rows)
    db.create_index("t", "id")
    result = db.execute("SELECT * FROM t WHERE id = 7")
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import ExecutionError
from repro.db.counters import CounterSet
from repro.db.personality import MYSQL, Personality, personality_by_name
from repro.engine.executor import Executor, QueryResult
from repro.engine.plans import PlanNode
from repro.engine.vector import VectorizedExecutor
from repro.expr.codegen import CompiledExprCache
from repro.obs.tracing import span
from repro.optimizer.explain import ExplainNode, TableAccess, access_summary, explain_plan
from repro.optimizer.planner import PlannedQuery, Planner
from repro.optimizer.stats import StatsCatalog, TableStats
from repro.sql.ast import Query
from repro.sql.parser import parse_query
from repro.sql.statements import (
    AnalyzeStatement,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    Statement,
    UpdateStatement,
    parse_statement,
)
from repro.storage.catalog import Catalog
from repro.storage.schema import ColumnType, Schema
from repro.storage.table import DEFAULT_PAGE_SIZE, HeapTable


class Database:
    """An embedded relational database with a pluggable personality."""

    def __init__(
        self,
        personality: Personality = MYSQL,
        page_size: int = DEFAULT_PAGE_SIZE,
        vectorized: bool = True,
        codegen: bool = True,
    ):
        self.personality = personality
        self.page_size = page_size
        self.catalog = Catalog()
        self.stats = StatsCatalog()
        self.counters = CounterSet()
        # Engine mode: ``vectorized`` routes queries through the batch
        # executor (exotic nodes still fall back per subtree) and
        # ``codegen`` compiles expressions to generated source instead
        # of closure trees.  Both default on; turn both off to get the
        # original tuple-at-a-time interpreter — the differential
        # oracle and the benchmarks' baseline.
        self.vectorized = vectorized
        self.codegen = codegen
        self._fn_cache = CompiledExprCache()
        self._udfs: dict[str, Callable[..., Any]] = {}
        # Bumped on every catalog / UDF-registry change; combined with
        # the stats version into :attr:`plan_version`, the fingerprint
        # cached plans are validated against.
        self.schema_version = 0

    @property
    def plan_version(self) -> tuple[int, int]:
        """Fingerprint of everything planner output depends on besides
        the query itself: (catalog+UDF version, statistics version)."""
        return (self.schema_version, self.stats.version)

    # ------------------------------------------------------------------ DDL

    def create_table(
        self, name: str, schema: Schema, page_size: int | None = None
    ) -> HeapTable:
        table = self.catalog.create_table(
            name, schema, page_size=page_size or self.page_size
        )
        self.schema_version += 1
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.stats.invalidate(name)
        self.schema_version += 1

    def create_index(self, table: str, column: str, kind: str = "btree", name: str | None = None):
        index = self.catalog.create_index(table, column, kind=kind, name=name)
        self.schema_version += 1
        return index

    def analyze(self, table: str | None = None) -> None:
        """Rebuild statistics (for one table or all)."""
        if table is not None:
            self.stats.analyze(self.catalog.table(table))
            return
        for name in self.catalog.table_names():
            self.stats.analyze(self.catalog.table(name))

    # ------------------------------------------------------------------ DML

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.catalog.insert_rows(table, rows)

    def insert_row(self, table: str, row: Sequence[Any]) -> int:
        return self.catalog.insert_row(table, row)

    def delete_row(self, table: str, rowid: int) -> None:
        self.catalog.delete_row(table, rowid)

    def update_row(self, table: str, rowid: int, row: Sequence[Any]) -> None:
        self.catalog.update_row(table, rowid, row)

    # ----------------------------------------------------------------- UDFs

    def create_function(self, name: str, fn: Callable[..., Any]) -> None:
        """Register a UDF; every invocation is counted."""
        counters = self.counters

        def counted(*args: Any) -> Any:
            counters.udf_invocations += 1
            return fn(*args)

        self._udfs[name.lower()] = counted
        # Compiled expressions bind UDF callables at compile time;
        # (re-)registering a name must drop them.
        self._fn_cache.clear()
        self.schema_version += 1

    def has_function(self, name: str) -> bool:
        return name.lower() in self._udfs

    def function(self, name: str) -> Callable[..., Any]:
        """The counted wrapper for a registered UDF (backends re-register
        these so UDF invocation counters stay engine-agnostic)."""
        return self._udfs[name.lower()]

    def functions(self) -> dict[str, Callable[..., Any]]:
        """All registered UDFs by lowercase name (counted wrappers)."""
        return dict(self._udfs)

    def drop_function(self, name: str) -> None:
        self._udfs.pop(name.lower(), None)
        self._fn_cache.clear()
        self.schema_version += 1

    # ---------------------------------------------------------------- query

    def _planner(self) -> Planner:
        return Planner(
            self.catalog,
            self.stats,
            self.personality,
            udf_names=frozenset(self._udfs),
        )

    def plan(self, query: str | Query) -> PlannedQuery:
        ast = parse_query(query) if isinstance(query, str) else query
        return self._planner().plan(ast)

    def execute(self, query: str | Query) -> QueryResult:
        """Execute any supported statement.

        SELECT/WITH return their result rows; DML and DDL return a
        one-row summary (``affected`` count).
        """
        if isinstance(query, str):
            statement = parse_statement(query)
            if not isinstance(statement, Query):
                return self._execute_statement(statement)
            query = statement
        planned = self.plan(query)
        with span("run", vectorized=self.vectorized):
            return self.run_plan(planned)

    def run_plan(
        self,
        planned: PlannedQuery,
        vectorized: bool | None = None,
        codegen: bool | None = None,
    ) -> QueryResult:
        """Execute an already-planned query, optionally overriding the
        engine mode (``None`` keeps the database default) — the hook
        the engine benchmarks use to time tuple vs vectorized
        execution of one plan without re-planning."""
        use_vectorized = self.vectorized if vectorized is None else vectorized
        use_codegen = self.codegen if codegen is None else codegen
        executor_cls = VectorizedExecutor if use_vectorized else Executor
        executor = executor_cls(
            self.catalog,
            self.counters,
            self._udfs,
            plan_subquery=self._plan_subquery,
            fn_cache=self._fn_cache,
            use_codegen=use_codegen,
        )
        return executor.run(planned.root, planned.cte_plans)

    # ----------------------------------------------------------- statements

    def _execute_statement(self, statement: Statement) -> QueryResult:
        from repro.expr.eval import ExprCompiler, RowBinding

        def summary(count: int) -> QueryResult:
            return QueryResult(columns=["affected"], rows=[(count,)])

        if isinstance(statement, CreateTableStatement):
            columns = [
                (name, ColumnType[type_name]) for name, type_name in statement.columns
            ]
            self.create_table(statement.table, Schema.of(*columns))
            return summary(0)
        if isinstance(statement, CreateIndexStatement):
            self.create_index(
                statement.table, statement.column, kind=statement.kind,
                name=statement.name,
            )
            return summary(0)
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.table)
            return summary(0)
        if isinstance(statement, AnalyzeStatement):
            self.analyze(statement.table)
            return summary(0)

        table = self.catalog.table(statement.table)
        schema = table.schema
        if isinstance(statement, InsertStatement):
            columns = statement.columns or schema.names
            positions = [schema.index_of(c) for c in columns]
            if statement.source is not None:
                values = [list(row) for row in self.execute(statement.source).rows]
            else:
                compiler = ExprCompiler(RowBinding(), udfs=self._udfs)
                values = [
                    [compiler.compile(e)(()) for e in row] for row in statement.rows
                ]
            count = 0
            for value_row in values:
                if len(value_row) != len(positions):
                    raise ExecutionError(
                        f"INSERT arity {len(value_row)} != column count {len(positions)}"
                    )
                full = [None] * len(schema)
                for pos, value in zip(positions, value_row):
                    full[pos] = value
                self.insert_row(statement.table, full)
                count += 1
            return summary(count)

        binding = RowBinding.for_table(statement.table, schema.names)
        compiler = ExprCompiler(binding, udfs=self._udfs, counters=self.counters)
        predicate = (
            compiler.compile(statement.where) if statement.where is not None else None
        )
        if isinstance(statement, DeleteStatement):
            doomed = [
                rowid
                for rowid, row in table.scan()
                if predicate is None or predicate(row)
            ]
            for rowid in doomed:
                self.delete_row(statement.table, rowid)
            return summary(len(doomed))
        if isinstance(statement, UpdateStatement):
            assignment_fns = [
                (schema.index_of(column), compiler.compile(expr))
                for column, expr in statement.assignments
            ]
            updates: list[tuple[int, list]] = []
            for rowid, row in table.scan():
                if predicate is not None and not predicate(row):
                    continue
                new_row = list(row)
                for pos, fn in assignment_fns:
                    new_row[pos] = fn(row)
                updates.append((rowid, new_row))
            for rowid, new_row in updates:
                self.update_row(statement.table, rowid, new_row)
            return summary(len(updates))
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def _plan_subquery(self, query_ast: Any) -> PlanNode:
        planned = self._planner().plan(query_ast)
        if planned.cte_plans:
            raise ExecutionError("WITH inside scalar subqueries is not supported")
        return planned.root

    # -------------------------------------------------------------- explain

    def explain(self, query: str | Query) -> ExplainNode:
        planned = self.plan(query)
        return explain_plan(planned.root)

    def explain_access(self, query: str | Query) -> list[TableAccess]:
        """Structured access-path summary (Sieve's strategy input)."""
        planned = self.plan(query)
        summary = access_summary(planned.root)
        for cte_plan in planned.cte_plans.values():
            summary.extend(access_summary(cte_plan))
        return summary

    # ------------------------------------------------------------- metrics

    def table_stats(self, table: str) -> TableStats:
        return self.stats.get(self.catalog.table(table))

    def reset_counters(self) -> None:
        self.counters.reset()


def connect(
    personality: str | Personality = "mysql",
    page_size: int = DEFAULT_PAGE_SIZE,
    vectorized: bool = True,
    codegen: bool = True,
) -> Database:
    """Create a fresh in-memory database with the given personality.

    ``vectorized=False, codegen=False`` selects the original
    tuple-at-a-time closure interpreter (the differential oracle)."""
    if isinstance(personality, str):
        personality = personality_by_name(personality)
    return Database(
        personality=personality,
        page_size=page_size,
        vectorized=vectorized,
        codegen=codegen,
    )
