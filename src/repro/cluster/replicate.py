"""Data-tier replication for shard bring-up.

Sieve's cluster partitions the *policy* corpus by querier; the *data*
relations are replicated to every shard (any shard must be able to
execute any of its queriers' queries, and the datasets are the shared
substrate policies protect).  :func:`replicate_database` clones a
bundled-engine :class:`~repro.db.database.Database` — schema, rows,
indexes, statistics, engine mode — into a fresh instance a shard can
own outright, so shard execution never contends with (or corrupts)
another shard's heaps.

Sieve-internal relations (``sieve_policies`` / ``sieve_object_
conditions`` — the base store's persistence, which stays on the
coordinator — and ``sieve_guarded_expressions`` / ``sieve_guards`` /
``sieve_guard_partitions``, which each shard's own
:class:`~repro.core.guard_store.GuardStore` re-creates for its
partition) are deliberately *not* copied.  UDFs are not copied either:
counted wrappers are bound to the source database's counters, and the
only middleware UDF (Δ) is re-registered by each shard's Sieve against
its own engine.

Rows are copied in scan order, which equals insertion order while the
source has no deleted rows — the dataset generators only insert, so a
replica's page layout (and therefore its page counters) is identical
to the source's.  A source with heap holes would replicate compacted;
the differential suite's counter identity assumes hole-free sources.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.guard_store import GE_TABLE, GUARD_TABLE, PARTITION_TABLE
from repro.db.database import Database
from repro.index.hashindex import HashIndex
from repro.policy.store import CONDITION_TABLE, POLICY_TABLE

#: Middleware-owned relations that must not follow the data to shards.
SIEVE_INTERNAL_TABLES = frozenset(
    name.lower()
    for name in (POLICY_TABLE, CONDITION_TABLE, GE_TABLE, GUARD_TABLE, PARTITION_TABLE)
)


def replicate_database(source: Database, skip_tables: Iterable[str] = ()) -> Database:
    """A deep copy of ``source``'s data tier for one shard.

    Copies every table (schema, rows, per-table page size), every
    index (kind and name preserved), and rebuilds statistics; skips
    the Sieve-internal tables plus any extra ``skip_tables``.
    """
    skip = SIEVE_INTERNAL_TABLES | {name.lower() for name in skip_tables}
    clone = Database(
        personality=source.personality,
        page_size=source.page_size,
        vectorized=source.vectorized,
        codegen=source.codegen,
    )
    for name in source.catalog.table_names():
        if name.lower() in skip:
            continue
        heap = source.catalog.table(name)
        clone.create_table(name, heap.schema, page_size=heap.page_size)
        clone.insert(name, (row for _rowid, row in heap.scan()))
        for index in source.catalog.indexes_on(name):
            kind = "hash" if isinstance(index, HashIndex) else "btree"
            clone.create_index(name, index.column, kind=kind, name=index.name)
    clone.analyze()
    return clone
