"""The sharded cluster tier: querier-partitioned scatter-gather serving.

``repro/cluster`` scales the serving tier horizontally: a
:class:`SieveCluster` coordinator consistent-hash routes each request
to one of N :class:`ClusterShard`\\ s, each owning a
querier-partitioned view of the policy corpus
(:meth:`PolicyStore.partition
<repro.policy.store.PolicyStore.partition>`), shard-local guard and
rewrite caches, and a private execution engine (replicated bundled
database or shipped backend) under its own
:class:`~repro.service.SieveServer`.  Policy writes route through the
coordinator to the owning shard — group policies scatter to every
shard holding a member — and online shard add/remove rebalances with
hash-ring stability: only migrated queriers' cached guards are
invalidated.  ``tests/test_cluster_differential.py`` proves the whole
tier is semantically invisible versus one server over the full
corpus; see ``docs/ARCHITECTURE.md`` ("Cluster tier").

The tier is also *crash-tolerant* (see ``docs/ARCHITECTURE.md`` §13):
request deadlines propagate coordinator → admission → shard worker;
an opt-in :class:`RetryPolicy` adds jittered-backoff retries and
hedged reads; policy writes go through an epoch-fenced two-phase
scatter (abort is atomic, a mid-scatter crash fences the stale shard
out of routing); and :meth:`SieveCluster.supervise` rebuilds crashed
shards from the authoritative store.
``tests/test_chaos_differential.py`` drives randomized
:mod:`repro.faults` plans against all of it.
"""

from repro.common.errors import (
    ClusterError,
    DeadlineExceededError,
    PolicyScatterError,
    ShardUnavailableError,
)
from repro.cluster.coordinator import (
    ClusterShard,
    ClusterStats,
    RebalanceReport,
    RetryPolicy,
    ShardRebuild,
    ShardSpec,
    SieveCluster,
)
from repro.cluster.replicate import SIEVE_INTERNAL_TABLES, replicate_database
from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash

__all__ = [
    "ClusterError",
    "ClusterShard",
    "ClusterStats",
    "DEFAULT_VNODES",
    "DeadlineExceededError",
    "HashRing",
    "PolicyScatterError",
    "RebalanceReport",
    "RetryPolicy",
    "SIEVE_INTERNAL_TABLES",
    "ShardRebuild",
    "ShardSpec",
    "ShardUnavailableError",
    "SieveCluster",
    "replicate_database",
    "stable_hash",
]
