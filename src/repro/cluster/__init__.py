"""The sharded cluster tier: querier-partitioned scatter-gather serving.

``repro/cluster`` scales the serving tier horizontally: a
:class:`SieveCluster` coordinator consistent-hash routes each request
to one of N :class:`ClusterShard`\\ s, each owning a
querier-partitioned view of the policy corpus
(:meth:`PolicyStore.partition
<repro.policy.store.PolicyStore.partition>`), shard-local guard and
rewrite caches, and a private execution engine (replicated bundled
database or shipped backend) under its own
:class:`~repro.service.SieveServer`.  Policy writes route through the
coordinator to the owning shard — group policies scatter to every
shard holding a member — and online shard add/remove rebalances with
hash-ring stability: only migrated queriers' cached guards are
invalidated.  ``tests/test_cluster_differential.py`` proves the whole
tier is semantically invisible versus one server over the full
corpus; see ``docs/ARCHITECTURE.md`` ("Cluster tier").
"""

from repro.common.errors import ClusterError, ShardUnavailableError
from repro.cluster.coordinator import (
    ClusterShard,
    ClusterStats,
    RebalanceReport,
    ShardSpec,
    SieveCluster,
)
from repro.cluster.replicate import SIEVE_INTERNAL_TABLES, replicate_database
from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash

__all__ = [
    "ClusterError",
    "ClusterShard",
    "ClusterStats",
    "DEFAULT_VNODES",
    "HashRing",
    "RebalanceReport",
    "SIEVE_INTERNAL_TABLES",
    "ShardSpec",
    "ShardUnavailableError",
    "SieveCluster",
    "replicate_database",
    "stable_hash",
]
