"""Consistent hashing — the cluster tier's querier → shard map.

The coordinator must route every request for one querier to the shard
owning that querier's policy partition, and a shard count change must
not reshuffle the whole corpus (a naive ``hash(q) % N`` moves ~all
queriers when N changes, invalidating every shard's warm guard
state).  A consistent-hash ring gives both properties:

* each shard contributes ``vnodes`` *virtual points* on a 64-bit
  ring; a querier routes to the first point clockwise of its own
  hash;
* **stability** — adding a shard moves a querier only if the *new*
  shard's points land between the querier and its old owner, so keys
  move only *onto* the added shard (never between survivors), and
  removing a shard moves only that shard's keys.  Expected movement
  is 1/N of the corpus (``tests/test_cluster.py`` pins both as
  hypothesis properties);
* **balance** — many virtual points per shard smooth the arc lengths,
  bounding max/mean shard load.

Hashing is :func:`hashlib.blake2b` over ``repr(key)`` — deterministic
across processes and runs (Python's built-in ``hash`` is salted per
process, which would make every restart a full rebalance).

:class:`HashRing` is treated as an **immutable value** by the
coordinator: :meth:`with_node` / :meth:`without_node` return new
rings, so a routing swap is one atomic reference assignment and
partition ownership predicates can safely close over the ring they
were created with.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterable, Sequence

from repro.common.errors import ClusterError

#: Virtual points per shard.  128 keeps max/mean shard load under
#: ~1.6 for realistic querier counts while ring construction stays
#: sub-millisecond.
DEFAULT_VNODES = 128


def stable_hash(value: Any) -> int:
    """A process-independent 64-bit hash of any repr-stable value.

    ``repr`` keeps distinct types distinct (``1`` vs ``"1"``), and
    blake2b is deterministic where ``hash(str)`` is per-process
    salted.
    """
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """An immutable consistent-hash ring over named shard nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ClusterError("vnodes must be positive")
        self.vnodes = vnodes
        self._nodes: frozenset[str] = frozenset()
        self._points: list[tuple[int, str]] = []  # sorted (hash, node)
        for node in nodes:
            self._insert(node)

    # ------------------------------------------------------------- building

    def _insert(self, node: str) -> None:
        if node in self._nodes:
            raise ClusterError(f"shard {node!r} is already on the ring")
        self._nodes = self._nodes | {node}
        for i in range(self.vnodes):
            point = (stable_hash(("vnode", node, i)), node)
            bisect.insort(self._points, point)

    def with_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` added; self is unchanged."""
        ring = HashRing(vnodes=self.vnodes)
        ring._nodes = self._nodes
        ring._points = list(self._points)
        ring._insert(node)
        return ring

    def without_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` removed; self is unchanged."""
        if node not in self._nodes:
            raise ClusterError(f"shard {node!r} is not on the ring")
        ring = HashRing(vnodes=self.vnodes)
        ring._nodes = self._nodes - {node}
        ring._points = [p for p in self._points if p[1] != node]
        return ring

    # -------------------------------------------------------------- routing

    def route(self, key: Any) -> str:
        """The shard owning ``key``: first ring point clockwise of the
        key's hash (wrapping past zero)."""
        if not self._points:
            raise ClusterError("cannot route on an empty ring")
        h = stable_hash(("key", key))
        # First point with hash >= h; "" sorts before any node name, so
        # an exact hash collision still routes to that point's node.
        idx = bisect.bisect_left(self._points, (h, ""))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    def moved_keys(self, other: "HashRing", keys: Iterable[Any]) -> frozenset:
        """Keys whose owner differs between this ring and ``other``."""
        return frozenset(k for k in keys if self.route(k) != other.route(k))

    # -------------------------------------------------------- introspection

    @property
    def nodes(self) -> frozenset[str]:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def load(self, keys: Sequence[Any]) -> dict[str, int]:
        """Keys per shard — the balance metric the properties bound."""
        out = {node: 0 for node in self._nodes}
        for key in keys:
            out[self.route(key)] += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(nodes={sorted(self._nodes)}, vnodes={self.vnodes})"
