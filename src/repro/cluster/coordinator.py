"""The sharded cluster coordinator: scatter-gather serving at N shards.

One :class:`SieveCluster` fronts N :class:`ClusterShard`\\ s.  Each
shard owns the full vertical slice of the serving stack for *its*
queriers — a partition-scoped policy view
(:meth:`~repro.policy.store.PolicyStore.partition`), its own
guard/rewrite caches and guard store, its own execution engine (a
replicated bundled-engine database or a shipped
:class:`~repro.backend.Backend`), and its own
:class:`~repro.service.SieveServer` worker pool.  The coordinator owns
only the routing table (a :class:`~repro.cluster.ring.HashRing`) and
the base :class:`~repro.policy.store.PolicyStore`:

.. code-block:: text

    cluster.submit(sql, querier, purpose)          # → Future
        │ route: ring.route(querier) → shard      (read-locked swap point;
        ▼         down shard → ShardUnavailableError backpressure)
    shard.server.submit(...)                       # per-shard admission,
        │                                          # batching, backpressure
        ▼
    shard Sieve: partition snapshot → shard guard cache → rewrite
        → shard engine (replica / backend)         # 1/N corpus per shard

    cluster.insert_policy(p)                       # admin write path
        │ owning shards: route(querier), or — for a group policy —
        ▼ every shard holding a member (scatter)
    base store write → partition event relay       # only owning shards'
                                                   # epochs advance

Scaling argument: policy filtering, guard caching, snapshot rebuilds
and Δ registration on each shard touch ~1/N of the corpus, and corpus
*churn* costs each shard only its share (foreign mutations do not even
re-stamp a shard's cache).  The differential guarantee — proven by
``tests/test_cluster_differential.py`` — is that none of this is
observable: for every (querier, purpose, query), cluster rows *and*
per-request enforcement counters are identical to one
:class:`~repro.service.SieveServer` over the whole corpus.

**Online rebalancing** (:meth:`SieveCluster.add_shard` /
:meth:`SieveCluster.remove_shard`) uses the ring's stability property
— a shard change moves only ~1/N of the queriers — and a three-phase
protocol that never produces a wrong answer mid-flight:

1. *grow*: partitions whose membership changes are widened to the
   union of old and new ownership (a partition holding extra queriers
   is still exactly correct for each of them);
2. *swap*: the ring reference is replaced under the routing write
   lock — new requests follow the new assignment atomically;
3. *drain + shrink*: each shard that lost queriers waits for its
   already-admitted requests for those queriers to finish
   (:meth:`~repro.service.SieveServer.wait_quiesced` — terminating
   even under load, since such requests stop arriving after the
   swap), then shrinks its partition and drops exactly the migrated
   queriers' cached guards/rewrites.  Unmigrated queriers keep their
   warm state — the property ``benchmarks/bench_cluster.py`` asserts.

**Crash tolerance** (the fault tier, all opt-in — without a
:class:`RetryPolicy`, deadline, or injector the request path is the
legacy fail-fast one above):

* **deadlines** — ``submit(..., deadline_s=)`` (or a cluster
  ``default_deadline_s``) stamps an absolute deadline that rides the
  request into the shard's admission queue; expired queued work is
  refused typed (:class:`~repro.common.errors.DeadlineExceededError`)
  and the coordinator's waits are bounded by the same budget.
* **retries + hedged reads** — :meth:`SieveCluster.execute` retries
  *transient* failures (shard down, admission full) with
  seeded-jitter backoff, and can hedge a slow read with a duplicate
  to the owning shard (safe: queries are read-only).
* **epoch-fenced two-phase policy scatter** — prepare on every owning
  shard, then the base-store write as the single commit point; an
  abort is atomic (no shard observed anything), and a shard crashing
  mid-scatter is *fenced out of routing* (``policy_fence <
  expected_fence`` → typed refusal) rather than left silently serving
  stale policy.
* **supervision** — :meth:`SieveCluster.supervise` rebuilds crashed
  shards (fresh partition view + guard store from the authoritative
  base store, same data replica) and rejoins them through the health
  tier's recovery hold.

``tests/test_chaos_differential.py`` drives seeded
:class:`~repro.faults.FaultPlan`\\ s against all of it and holds the
fail-closed contract: row-identical answers or typed errors, never a
silent partial/stale answer.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.audit import AuditLog, DecisionRecord, merge_records
from repro.common.concurrency import RWLock
from repro.common.errors import (
    ClusterError,
    DeadlineExceededError,
    PolicyScatterError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ShardUnavailableError,
)
from repro.common.rng import make_rng
from repro.core.cost_model import SieveCostModel
from repro.core.middleware import Sieve
from repro.cluster.replicate import replicate_database
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.db.database import Database
from repro.obs.histogram import LatencyHistogram
from repro.obs.slo import SLO, BurnRateMonitor, SLOSample
from repro.obs.tracing import SlowQueryLog, Tracer
from repro.policy.model import Policy
from repro.policy.store import PolicyStore
from repro.service.admission import SessionKey
from repro.service.server import LatencySummary, ServiceStats, SieveServer

DEFAULT_WORKERS_PER_SHARD = 2
#: How long a rebalance waits for a shard's migrated-key stragglers.
DEFAULT_REBALANCE_TIMEOUT_S = 30.0

_CLUSTER_COUNTERS = (
    "cluster_requests",
    "cluster_unavailable",
    "cluster_policy_writes",
    "cluster_policy_fanout",
    "cluster_rebalance_moves",
    "cluster_retries",
    "cluster_hedges",
    "cluster_hedge_wins",
    "cluster_deadline_timeouts",
    "cluster_scatter_aborts",
    "cluster_shard_rebuilds",
    "faults_injected",
)

#: Failures the coordinator's resilient path may transparently retry:
#: all three say "this attempt never produced an answer" — routing hit
#: a down shard, admission was full, or the server was not accepting.
#: Everything else (ExecutionError, PolicyError, a worker-side
#: DeadlineExceededError...) is the *request's* outcome and propagates.
_TRANSIENT_ERRORS = (
    ShardUnavailableError,
    ServiceOverloadedError,
    ServiceStoppedError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Opt-in coordinator-side resilience knobs.

    Without one (the default), the cluster keeps its legacy
    fail-fast contract: one routing attempt, errors propagate
    immediately — pinned by
    ``tests/test_cluster.py::test_cluster_shard_failure_is_explicit_backpressure``.
    With one, :meth:`SieveCluster.execute
    <repro.cluster.coordinator.SieveCluster.execute>` retries
    *transient* failures (shard down, admission full, server stopping)
    with exponential backoff jittered by a seeded RNG — deterministic
    across runs, decorrelated across retries — and, when
    ``hedge_delay_s`` is set, issues a hedged duplicate of a slow read
    to the owning shard after that delay, letting whichever answer
    lands first win.  Hedging is safe because queries are read-only;
    the duplicate costs engine work, never correctness.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.005
    max_backoff_s: float = 0.1
    #: Issue a duplicate read after this long without an answer
    #: (None = never hedge).
    hedge_delay_s: float | None = None
    #: Seed for the jitter RNG (streams decorrelated via make_rng).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ClusterError("max_attempts must be positive")
        if self.base_backoff_s < 0.0 or self.max_backoff_s < 0.0:
            raise ClusterError("backoff bounds must be non-negative")
        if self.hedge_delay_s is not None and self.hedge_delay_s < 0.0:
            raise ClusterError("hedge_delay_s must be non-negative")


@dataclass(frozen=True)
class ShardRebuild:
    """One supervisor rebuild: which shard, how long, to what fence."""

    name: str
    #: Base-store epoch the rebuilt shard is current to (its fences).
    fence: int
    duration_s: float


@dataclass
class ShardSpec:
    """What a shard needs from the outside: an engine of its own.

    ``db`` is the shard's private data replica (see
    :func:`~repro.cluster.replicate.replicate_database`); ``backend``
    optionally ships execution to a real DBMS mirrored *from that
    replica* (e.g. ``SqliteBackend().ship(db)``).  ``name`` defaults
    to a coordinator-assigned ``shard-<i>``.
    """

    db: Database
    backend: Any = None
    name: str | None = None


class ClusterShard:
    """One shard: partition view + Sieve + server over a private engine."""

    def __init__(
        self,
        name: str,
        spec: ShardSpec,
        store: PolicyStore,
        owns: Callable[[Any], bool],
        workers: int,
        max_pending: int,
        max_batch: int,
        cost_model: SieveCostModel | None = None,
        audit: bool = False,
        tracer: Tracer | None = None,
    ):
        self.name = name
        self.db = spec.db
        self.backend = spec.backend
        self.partition = store.partition(owns, name=name)
        # Per-shard audit chain, chain id = shard name: decisions made
        # here chain here, on this shard's own counters, so chains stay
        # lock-disjoint across shards and merge without re-hashing.
        self.audit_log = AuditLog(chain_id=name) if audit else None
        self.sieve = Sieve(
            self.db,
            self.partition,
            cost_model=cost_model,
            backend=self.backend,
            audit=self.audit_log,
        )
        if tracer is not None:
            # Cluster-wide tracing: every shard's sieve.query roots
            # deliver into the coordinator's shared tracer ring.
            self.sieve.enable_tracing(tracer=tracer)
        self.server = SieveServer(
            self.sieve, workers=workers, max_pending=max_pending, max_batch=max_batch
        )
        #: Flipped by fault injection / decommissioning; the
        #: coordinator refuses to route to an unavailable shard.
        self.available = True
        #: Set by :meth:`SieveCluster.crash_shard` — the shard process
        #: is dead (server killed, relay detached) and must be rebuilt
        #: by the supervisor, not merely restored.
        self.crashed = False
        #: Epoch fencing for the two-phase policy scatter: the base
        #: epoch of the last committed write this shard *applied*
        #: (``policy_fence``) vs the last it *owes*
        #: (``expected_fence``).  Routing refuses a shard whose applied
        #: fence trails its owed fence — it would serve stale policy.
        self.policy_fence = 0
        self.expected_fence = 0

    def cached_queriers(self) -> set[Any]:
        """Queriers with warm state in any shard-local tier (guard
        cache, rewrite cache, or persisted guard store) — the
        candidates a rebalance checks for migration-driven
        invalidation."""
        out = {key[0] for key in self.sieve.guard_cache.keys()}
        if self.sieve.rewrite_cache is not None:
            out |= self.sieve.rewrite_cache.queriers()
        if self.sieve.plan_cache is not None:
            out |= self.sieve.plan_cache.queriers()
        out |= {e.querier for e in self.sieve.guard_store.cached_expressions()}
        return out

    def invalidate_querier(self, querier: Any) -> int:
        """Drop one migrated querier's state from every shard tier."""
        dropped = self.sieve.guard_cache.invalidate(querier=querier)
        if self.sieve.rewrite_cache is not None:
            dropped += self.sieve.rewrite_cache.invalidate(querier=querier)
        if self.sieve.plan_cache is not None:
            dropped += self.sieve.plan_cache.invalidate(querier=querier)
        dropped += self.sieve.guard_store.invalidate(querier=querier)
        return dropped


def _merge_cache_stats(snapshots: Iterable[dict[str, float] | None]) -> dict[str, float]:
    agg: dict[str, float] = {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "invalidations": 0,
        "coalesced": 0,
    }
    for snap in snapshots:
        if not snap:
            continue
        for key in agg:
            agg[key] += snap.get(key, 0)
    lookups = agg["hits"] + agg["misses"]
    agg["hit_rate"] = agg["hits"] / lookups if lookups else 0.0
    return agg


def _merge_latency(
    stats: "list[ServiceStats]", hist_attr: str, summary_attr: str
) -> LatencySummary:
    """Exact cross-shard latency merge.

    When every shard carries its log-bucketed
    :class:`~repro.obs.histogram.LatencyHistogram`, the merge adds
    bucket counts — the merged quantiles are *identical* to a single
    histogram over the union population (no count-weighted
    approximation).  Falls back to :meth:`LatencySummary.merge
    <repro.service.server.LatencySummary.merge>` for hand-built
    summaries without histograms.
    """
    hists = [getattr(s, hist_attr, None) for s in stats]
    if stats and all(h is not None for h in hists):
        return LatencySummary.of_histogram(LatencyHistogram.merge(hists))
    return LatencySummary.merge([getattr(s, summary_attr) for s in stats])


@dataclass
class ClusterStats:
    """Cluster-level aggregation of every shard's accounting.

    Counts are exact sums; ``latency`` / ``queue_wait`` merge the
    per-shard latency *histograms* bucket-for-bucket (exact — see
    :func:`_merge_latency`; the count-weighted
    :meth:`LatencySummary.merge
    <repro.service.server.LatencySummary.merge>` remains the fallback
    for stats without histograms); ``guard_cache`` /
    ``rewrite_cache`` / ``plan_cache`` aggregate the shards'
    :class:`~repro.core.cache.CacheStats` snapshots with the hit rate
    recomputed over the summed traffic.  ``partition_policies`` is the
    per-shard policy-partition size — the 1/N corpus share the bench
    asserts — ``per_shard`` retains each shard's full
    :class:`~repro.service.ServiceStats`, and ``health`` /
    ``reroutes`` carry the coordinator's tracked per-shard verdicts
    and active routing detours (:meth:`SieveCluster.health_tick`).
    """

    shards: int
    requests: int
    batches: int
    rejections: int
    failures: int
    pending: int
    latency: LatencySummary = field(default_factory=LatencySummary)
    queue_wait: LatencySummary = field(default_factory=LatencySummary)
    guard_cache: dict[str, float] = field(default_factory=dict)
    rewrite_cache: dict[str, float] = field(default_factory=dict)
    plan_cache: dict[str, float] = field(default_factory=dict)
    partition_policies: dict[str, int] = field(default_factory=dict)
    per_shard: dict[str, ServiceStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    health: dict[str, str] = field(default_factory=dict)
    reroutes: dict[str, str] = field(default_factory=dict)

    @classmethod
    def merge(
        cls,
        per_shard: dict[str, ServiceStats],
        partition_policies: dict[str, int],
        counters: dict[str, int],
        health: dict[str, str] | None = None,
        reroutes: dict[str, str] | None = None,
    ) -> "ClusterStats":
        stats = list(per_shard.values())
        return cls(
            shards=len(stats),
            requests=sum(s.requests for s in stats),
            batches=sum(s.batches for s in stats),
            rejections=sum(s.rejections for s in stats),
            failures=sum(s.failures for s in stats),
            pending=sum(s.pending for s in stats),
            latency=_merge_latency(stats, "latency_hist", "latency"),
            queue_wait=_merge_latency(stats, "queue_wait_hist", "queue_wait"),
            guard_cache=_merge_cache_stats(s.guard_cache for s in stats),
            rewrite_cache=_merge_cache_stats(s.rewrite_cache for s in stats),
            plan_cache=_merge_cache_stats(s.plan_cache for s in stats),
            partition_policies=dict(partition_policies),
            per_shard=dict(per_shard),
            counters=dict(counters),
            health=dict(health or {}),
            reroutes=dict(reroutes or {}),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (dashboards, the cluster metrics body)."""
        return {
            "shards": self.shards,
            "requests": self.requests,
            "batches": self.batches,
            "rejections": self.rejections,
            "failures": self.failures,
            "pending": self.pending,
            "latency": self.latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "guard_cache": dict(self.guard_cache),
            "rewrite_cache": dict(self.rewrite_cache),
            "plan_cache": dict(self.plan_cache),
            "partition_policies": dict(self.partition_policies),
            "per_shard": {
                name: stats.to_dict() for name, stats in self.per_shard.items()
            },
            "counters": dict(self.counters),
            "health": dict(self.health),
            "reroutes": dict(self.reroutes),
        }


@dataclass(frozen=True)
class RebalanceReport:
    """What one ring change did, for assertions and dashboards."""

    added: str | None
    removed: str | None
    #: Routable queriers whose owner changed (≈ 1/N of the universe).
    moved_queriers: frozenset
    #: Size of the routable-querier universe the fraction is over.
    universe: int
    #: Cache/guard-store entries dropped — migrated queriers only.
    invalidated_entries: int
    #: True when every affected shard drained its stragglers in time.
    drained: bool

    @property
    def moved_fraction(self) -> float:
        return len(self.moved_queriers) / self.universe if self.universe else 0.0


class SieveCluster:
    """Consistent-hash-routed scatter-gather serving over N shards.

    Usage::

        store = PolicyStore(db, groups); store.insert_many(policies)
        cluster = SieveCluster.replicated(db, store, n_shards=4)
        with cluster:
            rows = cluster.execute(sql, querier, purpose).rows
            cluster.insert_policy(policy)          # routed admin write
            report = cluster.add_shard(cluster.replica_spec())
        print(cluster.stats().latency.p95_ms)

    Query routing raises
    :class:`~repro.common.errors.ShardUnavailableError` when the
    owning shard is down (explicit backpressure, mirroring
    ``ServiceOverloadedError``) — fault injection via
    :meth:`fail_shard` / :meth:`restore_shard`.  ``cluster_*``
    counters are charged to the *coordinator's* database (the one
    holding the base policy store).  Like the underlying servers, a
    stopped cluster cannot be restarted.
    """

    def __init__(
        self,
        store: PolicyStore,
        specs: Sequence[ShardSpec],
        workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
        vnodes: int = DEFAULT_VNODES,
        max_pending: int = 1024,
        max_batch: int = 16,
        rebalance_timeout: float = DEFAULT_REBALANCE_TIMEOUT_S,
        cost_model: SieveCostModel | None = None,
        audit: bool = False,
        retry_policy: RetryPolicy | None = None,
        default_deadline_s: float | None = None,
        fault_injector: Any = None,
        fence_gate: bool = True,
    ):
        if not specs:
            raise ClusterError("a cluster needs at least one shard")
        if default_deadline_s is not None and default_deadline_s <= 0.0:
            raise ClusterError("default_deadline_s must be positive")
        self.store = store
        #: Resilience (all opt-in; None/True defaults keep the legacy
        #: fail-fast, unfenced-write-free behavior bit-identical):
        self.retry_policy = retry_policy
        self.default_deadline_s = default_deadline_s
        #: Shared :class:`~repro.faults.FaultInjector` (chaos runs).
        self.fault_injector = fault_injector
        if fault_injector is not None and fault_injector.counters is None:
            fault_injector.counters = store.db.counters
        #: When True (default), routing refuses shards behind the
        #: committed policy fence (fail-closed) and the two-phase
        #: scatter refuses to commit a write an owning shard would
        #: miss.  False reverts to the naive one-phase scatter — the
        #: deliberate mixed-epoch bug the chaos suite's teeth test
        #: proves it can catch.
        self.fence_gate = fence_gate
        self._retry_rng = make_rng(
            retry_policy.seed if retry_policy is not None else 0, "cluster-retry"
        )
        self._retry_lock = threading.Lock()
        #: Stable shard index for fault-plan addressing (clock skew is
        #: keyed by creation order, not by mutable sorted position).
        self._fault_index: dict[str, int] = {}
        self.audit_enabled = audit
        self.workers_per_shard = workers_per_shard
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.rebalance_timeout = rebalance_timeout
        self.cost_model = cost_model
        self._counters = store.db.counters
        self._counter_lock = threading.Lock()
        # Cluster-level observability (None = off); enable_tracing()
        # shares one Tracer across every shard.
        self.tracer: Tracer | None = None
        self.slow_query_log: SlowQueryLog | None = None
        self._route_lock = RWLock()  # readers: routing; writer: ring swap
        self._admin_lock = threading.RLock()  # serializes rebalances
        self._shard_seq = 0
        self._started = False
        self._stopped = False
        # Health-aware routing state (configure_health() arms it).
        # _reroutes maps degraded-shard → fallback-shard and is read on
        # the routing hot path (mutated only under the route write
        # lock); the rest is touched only under the admin lock.
        self._reroutes: dict[str, str] = {}
        self._health_slo: SLO | None = None
        self._health_clock: Callable[[], float] = time.monotonic
        self._recovery_hold_s = 0.0
        self._shard_monitors: dict[str, BurnRateMonitor] = {}
        self._shard_status: dict[str, str] = {}
        self._healthy_since: dict[str, float] = {}

        ring = HashRing(vnodes=vnodes)
        named: list[tuple[str, ShardSpec]] = []
        for spec in specs:
            name = self._claim_name(spec, ring)
            ring = ring.with_node(name)
            named.append((name, spec))
        self._ring = ring
        #: Retained specs: the supervisor rebuilds a crashed shard over
        #: the same data replica/backend (a restart on the same volume).
        self._specs: dict[str, ShardSpec] = dict(named)
        self._shards: dict[str, ClusterShard] = {
            name: self._build_shard(name, spec, ring) for name, spec in named
        }

    @classmethod
    def replicated(
        cls,
        db: Database,
        store: PolicyStore,
        n_shards: int,
        backend_factory: Callable[[Database], Any] | None = None,
        **kwargs: Any,
    ) -> "SieveCluster":
        """Build an N-shard cluster whose shards each execute on a
        fresh replica of ``db``'s data tier.

        ``backend_factory(replica_db)`` optionally ships each replica
        to a real DBMS (e.g. ``lambda d: SqliteBackend().ship(d)``);
        without one, shards run the bundled engine.
        """
        if n_shards <= 0:
            raise ClusterError("n_shards must be positive")
        specs = []
        for _ in range(n_shards):
            replica = replicate_database(db)
            backend = backend_factory(replica) if backend_factory else None
            specs.append(ShardSpec(db=replica, backend=backend))
        return cls(store, specs, **kwargs)

    # ------------------------------------------------------------- plumbing

    def _claim_name(self, spec: ShardSpec, ring: HashRing) -> str:
        if spec.name is not None:
            if spec.name in ring:
                raise ClusterError(f"shard name {spec.name!r} is already in use")
            return spec.name
        # Auto-assigned names skip over any caller-supplied ones so a
        # mixed named/unnamed spec list can never collide.
        while f"shard-{self._shard_seq}" in ring:
            self._shard_seq += 1
        name = f"shard-{self._shard_seq}"
        self._shard_seq += 1
        return name

    def _build_shard(self, name: str, spec: ShardSpec, ring: HashRing) -> ClusterShard:
        # The ownership predicate closes over one immutable ring value;
        # rebalances install new predicates explicitly, so an in-flight
        # snapshot can never observe a half-swapped assignment.
        shard = ClusterShard(
            name,
            spec,
            self.store,
            owns=lambda q, r=ring, n=name: r.route(q) == n,
            workers=self.workers_per_shard,
            max_pending=self.max_pending,
            max_batch=self.max_batch,
            cost_model=self.cost_model,
            audit=self.audit_enabled,
            tracer=self.tracer,
        )
        self._wire_faults(name, shard)
        return shard

    def _wire_faults(self, name: str, shard: ClusterShard) -> None:
        """Install the shared injector (and the shard's planned clock
        skew) on a newly built shard's server."""
        injector = self.fault_injector
        if injector is None:
            return
        index = self._fault_index.setdefault(name, len(self._fault_index))
        shard.server.fault_injector = injector
        shard.server.clock_skew_s = injector.skew_s(index)

    def enable_tracing(
        self, tracer: Tracer | None = None, slow_query_ms: float | None = None
    ) -> Tracer:
        """Attach one shared span tracer across the whole cluster
        (idempotent).  Routing opens a ``cluster.route`` root per
        request; the owning shard's ``sieve.query`` root joins the
        same trace id (carried through admission), so one trace id
        correlates coordinator routing with shard-side execution.
        Shards added later inherit the tracer automatically.
        ``slow_query_ms`` retains slow span trees cluster-wide."""
        if self.tracer is None:
            self.tracer = tracer if tracer is not None else Tracer()
            with self._route_lock.read_locked():
                shards = list(self._shards.values())
            for shard in shards:
                shard.sieve.enable_tracing(tracer=self.tracer)
        if slow_query_ms is not None and self.slow_query_log is None:
            self.slow_query_log = SlowQueryLog(threshold_ms=slow_query_ms)
            self.tracer.on_finish(self.slow_query_log.observe)
        return self.tracer

    def _tick(self, counter: str, amount: int = 1) -> None:
        with self._counter_lock:
            setattr(self._counters, counter, getattr(self._counters, counter) + amount)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "SieveCluster":
        with self._admin_lock:
            if self._stopped:
                raise ClusterError("a stopped cluster cannot be restarted")
            if not self._started:
                self._started = True
                for shard in self._shards.values():
                    shard.server.start()
        return self

    def stop(self, drain: bool = True) -> None:
        with self._admin_lock:
            self._stopped = True
            for shard in self._shards.values():
                shard.available = False
                shard.server.stop(drain=drain)
            for shard in self._shards.values():
                # Unhook the partitions from the base store so a dead
                # cluster's views stop observing (and being pinned by)
                # its mutation events.
                shard.partition.detach()

    def __enter__(self) -> "SieveCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop(drain=True)

    # -------------------------------------------------------------- routing

    @property
    def shard_names(self) -> list[str]:
        with self._route_lock.read_locked():
            return sorted(self._shards)

    def shard(self, name: str) -> ClusterShard:
        with self._route_lock.read_locked():
            try:
                return self._shards[name]
            except KeyError:
                raise ClusterError(f"unknown shard {name!r}") from None

    def route(self, querier: Any) -> str:
        """The shard name currently owning ``querier``."""
        with self._route_lock.read_locked():
            return self._ring.route(querier)

    def _checked_shard_locked(self, querier: Any) -> ClusterShard:
        """Owning shard for a routable request.  Caller must hold the
        routing read lock *across the admission call too*: the
        rebalance protocol's drain phase only waits for requests
        already queued, so route-then-enqueue must be atomic against a
        ring swap (the swap takes the write lock).

        Health-aware detour: a shard :meth:`health_tick` flagged is
        deprioritized — its queriers land on the fallback shard whose
        partition was widened to own them (``_reroutes``, installed
        and cleared under the route write lock like a ring swap), so
        rerouted answers stay row-identical."""
        name = self._ring.route(querier)
        shard = self._shards[self._reroutes.get(name, name)]
        if not shard.available:
            self._tick("cluster_unavailable")
            raise ShardUnavailableError(
                f"shard {shard.name!r} owning querier {querier!r} is unavailable"
            )
        # Epoch fence (fail-closed): a shard that owes a committed
        # policy write it never applied — its relay died mid-epoch —
        # would serve *stale policy*, the one failure mode worse than
        # no answer.  Refuse until the supervisor rebuilds it.
        if self.fence_gate and shard.policy_fence < shard.expected_fence:
            self._tick("cluster_unavailable")
            raise ShardUnavailableError(
                f"shard {shard.name!r} is behind the committed policy fence "
                f"(applied {shard.policy_fence} < owed {shard.expected_fence}); "
                "awaiting supervisor rebuild"
            )
        return shard

    # ------------------------------------------------------------- requests

    def _apply_shard_fault(self, fault: Any) -> None:
        """Actuate one planned shard fault (chaos runs): ``crash`` kills
        the addressed shard's process, ``slow`` pads its service times,
        ``drop_relay`` silently detaches its policy-event relay."""
        with self._route_lock.read_locked():
            names = sorted(self._shards)
        if not names:
            return
        name = names[fault.shard % len(names)]
        self.fault_injector.record(fault.kind)
        if fault.kind == "crash":
            self.crash_shard(name)
        elif fault.kind == "slow":
            self.shard(name).server.inject_delay_s = fault.delay_s
        elif fault.kind == "drop_relay":
            self.drop_relay(name)

    def _absolute_deadline(self, deadline_s: float | None) -> float | None:
        """Relative budget (explicit, else the cluster default) → an
        absolute perf_counter deadline shared by retries and hedges."""
        budget = deadline_s if deadline_s is not None else self.default_deadline_s
        return None if budget is None else time.perf_counter() + budget

    def _routed_submit(
        self,
        sql: Any,
        querier: Any,
        purpose: str,
        with_info: bool,
        deadline: float | None = None,
    ) -> "Future[Any]":
        """Route-and-admit under one read lock.  With tracing on, the
        routing runs inside a ``cluster.route`` root span whose trace
        id rides the admitted request — the shard worker's
        ``sieve.query`` root then reuses it, correlating coordinator
        and shard sides of one request."""
        fault_tag = None
        injector = self.fault_injector
        if injector is not None:
            # Advance the fault clock and actuate due shard faults
            # BEFORE taking the routing read lock: crash/slow/restore
            # go through admin entry points that take locks themselves.
            fault_tag, due = injector.next_request()
            for fault in due:
                self._apply_shard_fault(fault)
        if self.tracer is None:
            with self._route_lock.read_locked():
                shard = self._checked_shard_locked(querier)
                return shard.server.admit(
                    sql, querier, purpose, with_info=with_info,
                    deadline=deadline, fault_tag=fault_tag,
                )
        with self.tracer.trace("cluster.route", querier=str(querier)) as root:
            with self._route_lock.read_locked():
                shard = self._checked_shard_locked(querier)
                future = shard.server.admit(
                    sql, querier, purpose, with_info=with_info,
                    deadline=deadline, fault_tag=fault_tag,
                )
            root.set(shard=shard.name)
            return future

    def submit(
        self, sql: Any, querier: Any, purpose: str, deadline_s: float | None = None
    ) -> "Future[Any]":
        """Route one query to its owning shard; future resolves to the
        :class:`~repro.engine.executor.QueryResult`.  ``deadline_s``
        (default: the cluster's ``default_deadline_s``) rides the
        request so an expired queued request is refused typed by the
        shard worker instead of executed late."""
        future = self._routed_submit(
            sql, querier, purpose, with_info=False,
            deadline=self._absolute_deadline(deadline_s),
        )
        self._tick("cluster_requests")
        return future

    def submit_with_info(
        self, sql: Any, querier: Any, purpose: str, deadline_s: float | None = None
    ) -> "Future[Any]":
        future = self._routed_submit(
            sql, querier, purpose, with_info=True,
            deadline=self._absolute_deadline(deadline_s),
        )
        self._tick("cluster_requests")
        return future

    def execute(
        self,
        sql: Any,
        querier: Any,
        purpose: str,
        timeout: float | None = None,
        deadline_s: float | None = None,
    ) -> Any:
        """Blocking execute.  Fail-fast by default; with a
        :class:`RetryPolicy` and/or a deadline the resilient path
        engages — transparent retries of transient failures, optional
        hedged reads, and a typed
        :class:`~repro.common.errors.DeadlineExceededError` instead of
        an unbounded wait."""
        if (
            self.retry_policy is None
            and deadline_s is None
            and self.default_deadline_s is None
        ):
            # Legacy fail-fast path, bit-identical to before the fault
            # tier existed: one attempt, errors propagate immediately.
            return self.submit(sql, querier, purpose).result(timeout=timeout)
        deadline = self._absolute_deadline(deadline_s)
        if deadline is None and timeout is not None:
            deadline = time.perf_counter() + timeout
        return self._resilient_result(
            sql, querier, purpose, with_info=False, deadline=deadline
        )

    def execute_with_info(
        self,
        sql: Any,
        querier: Any,
        purpose: str,
        timeout: float | None = None,
        deadline_s: float | None = None,
    ) -> Any:
        if (
            self.retry_policy is None
            and deadline_s is None
            and self.default_deadline_s is None
        ):
            return self.submit_with_info(sql, querier, purpose).result(timeout=timeout)
        deadline = self._absolute_deadline(deadline_s)
        if deadline is None and timeout is not None:
            deadline = time.perf_counter() + timeout
        return self._resilient_result(
            sql, querier, purpose, with_info=True, deadline=deadline
        )

    # ------------------------------------------------------ resilient path

    def _resilient_result(
        self,
        sql: Any,
        querier: Any,
        purpose: str,
        with_info: bool,
        deadline: float | None,
    ) -> Any:
        """Retry loop around :meth:`_one_attempt`: transient failures
        (shard down, admission full, server stopping) retry with
        seeded-jitter exponential backoff until the policy's attempt
        budget or the deadline runs out; every other outcome — rows, or
        a typed non-transient error — propagates on first occurrence."""
        policy = self.retry_policy
        max_attempts = policy.max_attempts if policy is not None else 1
        attempt = 0
        last_exc: Exception | None = None
        while True:
            if deadline is not None and time.perf_counter() >= deadline:
                self._tick("cluster_deadline_timeouts")
                raise DeadlineExceededError(
                    f"deadline exhausted after {attempt} attempt(s) for "
                    f"querier {querier!r}"
                ) from last_exc
            if attempt > 0:
                self._tick("cluster_retries")
                self._backoff_sleep(attempt, deadline)
            try:
                return self._one_attempt(sql, querier, purpose, with_info, deadline)
            except _TRANSIENT_ERRORS as exc:
                attempt += 1
                last_exc = exc
                if attempt >= max_attempts:
                    raise

    def _deadline_exhausted(self, querier: Any) -> DeadlineExceededError:
        self._tick("cluster_deadline_timeouts")
        return DeadlineExceededError(
            f"cluster wait for querier {querier!r} exhausted its deadline"
        )

    def _backoff_sleep(self, attempt: int, deadline: float | None) -> None:
        policy = self.retry_policy
        if policy is None:
            return
        base = policy.base_backoff_s * (2 ** (attempt - 1))
        with self._retry_lock:
            jitter = self._retry_rng.uniform(0.5, 1.5)
        delay = min(policy.max_backoff_s, base * jitter)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.perf_counter()))
        if delay > 0.0:
            time.sleep(delay)

    def _one_attempt(
        self,
        sql: Any,
        querier: Any,
        purpose: str,
        with_info: bool,
        deadline: float | None,
    ) -> Any:
        """One routed submit plus a bounded, optionally hedged wait."""
        future = self._routed_submit(
            sql, querier, purpose, with_info, deadline=deadline
        )
        self._tick("cluster_requests")
        policy = self.retry_policy
        hedge_delay = policy.hedge_delay_s if policy is not None else None
        if hedge_delay is None:
            if deadline is None:
                return future.result()
            try:
                return future.result(
                    timeout=max(0.0, deadline - time.perf_counter())
                )
            except FutureTimeoutError:
                raise self._deadline_exhausted(querier) from None
        # Hedged wait: give the primary ``hedge_delay`` seconds, then
        # duplicate the read to the owning shard and take whichever
        # answers first.  Safe — queries are read-only; the duplicate
        # costs engine work, never correctness.
        wait_s = hedge_delay
        if deadline is not None:
            wait_s = min(wait_s, max(0.0, deadline - time.perf_counter()))
        try:
            return future.result(timeout=wait_s)
        except FutureTimeoutError:
            pass
        if deadline is not None and time.perf_counter() >= deadline:
            raise self._deadline_exhausted(querier)
        hedge: "Future[Any] | None" = None
        try:
            hedge = self._routed_submit(
                sql, querier, purpose, with_info, deadline=deadline
            )
            self._tick("cluster_requests")
            self._tick("cluster_hedges")
        except _TRANSIENT_ERRORS:
            hedge = None  # the primary may still answer; keep waiting
        waiters = [future] if hedge is None else [future, hedge]
        while True:
            remaining = (
                None if deadline is None else deadline - time.perf_counter()
            )
            if remaining is not None and remaining <= 0.0:
                raise self._deadline_exhausted(querier)
            done, _ = wait_futures(
                waiters, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                raise self._deadline_exhausted(querier)
            failure: BaseException | None = None
            for settled in done:
                exc = settled.exception()
                if exc is None:
                    if hedge is not None and settled is hedge:
                        self._tick("cluster_hedge_wins")
                    return settled.result()
                failure = exc
            waiters = [f for f in waiters if f not in done]
            if not waiters:
                # Both attempts failed; surface the (typed) failure —
                # the retry loop above decides whether it is transient.
                raise failure

    def execute_many(
        self,
        sqls: Iterable[Any],
        querier: Any,
        purpose: str,
        timeout: float | None = None,
    ) -> list[Any]:
        """One querier's batch — single-shard by construction, served
        with :meth:`SieveServer.execute_many
        <repro.service.server.SieveServer.execute_many>` ordering
        semantics (``result[i]`` answers ``sqls[i]``)."""
        if self.tracer is None:
            with self._route_lock.read_locked():
                shard = self._checked_shard_locked(querier)
                futures = [shard.server.submit(sql, querier, purpose) for sql in sqls]
        else:
            # One routing root covers the whole batch; every admitted
            # request carries its trace id, so the batch's N shard-side
            # executions all correlate back to this one route.
            with self.tracer.trace("cluster.route", querier=str(querier)) as root:
                with self._route_lock.read_locked():
                    shard = self._checked_shard_locked(querier)
                    futures = [
                        shard.server.submit(sql, querier, purpose) for sql in sqls
                    ]
                root.set(shard=shard.name, batch=len(futures))
        self._tick("cluster_requests", len(futures))
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------- policy writes

    def owning_shards(self, querier: Any) -> list[str]:
        """Shards that observe a policy naming ``querier`` — the
        scatter set of a policy write.

        For a user identity: its ring owner.  For a group identity:
        every shard holding a member (their PQM filters consult the
        group's policies) *plus* the ring owner of the group identity
        itself, which serves any request issued under the group's own
        name.  Mirrors :meth:`PolicyPartition.owns_querier
        <repro.policy.store.PolicyPartition.owns_querier>` exactly.
        """
        with self._route_lock.read_locked():
            ring = self._ring
            targets = {ring.route(querier)}
            if querier in self.store.groups:
                targets |= {ring.route(m) for m in self.store.groups.members_of(querier)}
            return sorted(targets)

    def _shard_can_apply(self, shard: ClusterShard) -> bool:
        """Can this shard observe a base-store write right now?  The
        hazards are a dead process (``crashed`` / killed server) and a
        detached event relay — a merely ``fail_shard``-ed shard still
        applies writes fine (its partition stays attached), matching
        the pre-fence behavior."""
        return (
            not shard.crashed
            and not shard.server.killed
            and not shard.partition.detached
        )

    def _abort_scatter(self, reason: str) -> "PolicyScatterError":
        self._tick("cluster_scatter_aborts")
        return PolicyScatterError(f"policy scatter aborted in prepare: {reason}")

    def _scatter_policy_write(
        self, targets: Sequence[str], apply: Callable[[], Any]
    ) -> Any:
        """Epoch-fenced two-phase policy scatter.

        *Prepare*: every owning shard must be able to apply the write
        (process alive, relay attached) — any that cannot aborts the
        whole write with :class:`~repro.common.errors.PolicyScatterError`
        **before** the base store is touched, so an abort is atomic:
        no shard, and no partition, ever observes a rolled-back write.

        *Commit*: the base-store mutation (``apply()``) is the single
        commit point — live partitions relay it synchronously on this
        thread — after which every owning shard's fences advance to the
        new epoch.  A shard that died *between* prepare and the commit
        point (the injected ``commit``-phase fault) misses the relay:
        its ``expected_fence`` advances but its ``policy_fence`` does
        not, and the routing fence gate refuses it (fail-closed) until
        the supervisor rebuilds it from the authoritative store.

        With ``fence_gate=False`` the prepare phase is skipped — the
        legacy naive scatter, kept as the deliberate mixed-epoch bug
        the chaos suite's teeth test must catch.
        """
        injector = self.fault_injector
        write_no = injector.next_write() if injector is not None else None
        with self._admin_lock:  # scatters serialize with rebalance/supervise
            with self._route_lock.read_locked():
                shards = {
                    name: self._shards[name]
                    for name in targets
                    if name in self._shards
                }
                all_names = sorted(self._shards)
            if self.fence_gate:
                if injector is not None and injector.scatter_fault(
                    write_no, "prepare"
                ):
                    raise self._abort_scatter(
                        f"injected prepare fault (write {write_no})"
                    )
                for name in sorted(shards):
                    if not self._shard_can_apply(shards[name]):
                        raise self._abort_scatter(
                            f"owning shard {name!r} cannot apply the write "
                            "(crashed or relay detached)"
                        )
            # A commit-phase fault crashes its victim here — after
            # prepare passed, before the commit point — so the victim
            # genuinely misses the write (the mid-scatter crash the
            # fence exists for).
            if injector is not None:
                fault = injector.scatter_fault(write_no, "commit")
                if fault is not None and all_names:
                    self.crash_shard(all_names[fault.shard % len(all_names)])
            stamped = apply()  # ← commit point: base write + live relay
            fence = self.store.epoch
            with self._route_lock.read_locked():
                for name in targets:
                    shard = self._shards.get(name)
                    if shard is None:
                        continue
                    shard.expected_fence = fence
                    if self._shard_can_apply(shard):
                        shard.policy_fence = fence
            return stamped

    def insert_policy(self, policy: Policy) -> Policy:
        """Route one policy insert through the coordinator.

        The write lands in the base store (single source of truth) via
        the two-phase scatter (:meth:`_scatter_policy_write`);
        partition event relay delivers it to exactly the owning
        shards — ``cluster_policy_fanout`` records the scatter width.
        """
        targets = self.owning_shards(policy.querier)
        stamped = self._scatter_policy_write(
            targets, lambda: self.store.insert(policy)
        )
        self._tick("cluster_policy_writes")
        self._tick("cluster_policy_fanout", len(targets))
        return stamped

    def insert_policies(self, policies: Iterable[Policy]) -> int:
        count = 0
        for policy in policies:
            self.insert_policy(policy)
            count += 1
        return count

    def delete_policy(self, policy_id: int) -> None:
        policy = self.store.get(policy_id)
        targets = self.owning_shards(policy.querier)
        self._scatter_policy_write(targets, lambda: self.store.delete(policy_id))
        self._tick("cluster_policy_writes")
        self._tick("cluster_policy_fanout", len(targets))

    def update_policy(self, policy: Policy) -> Policy:
        old = self.store.get(policy.id)
        targets = sorted(
            set(self.owning_shards(old.querier))
            | set(self.owning_shards(policy.querier))
        )
        stamped = self._scatter_policy_write(
            targets, lambda: self.store.update(policy)
        )
        self._tick("cluster_policy_writes")
        self._tick("cluster_policy_fanout", len(targets))
        return stamped

    # ------------------------------------------------------ fault injection

    def fail_shard(self, name: str) -> None:
        """Mark a shard down: routing to it raises
        :class:`~repro.common.errors.ShardUnavailableError` until
        :meth:`restore_shard` (its queued work still drains)."""
        self.shard(name).available = False

    def restore_shard(self, name: str) -> None:
        self.shard(name).available = True

    def slow_shard(self, name: str, delay_s: float) -> None:
        """Fault injection: pad every request ``name`` serves by
        ``delay_s`` (0 heals it).  The shard still answers correctly —
        just slowly enough to burn its latency SLO, which is exactly
        the failure mode :meth:`health_tick` detects and routes
        around."""
        if delay_s < 0.0:
            raise ClusterError("delay_s must be non-negative")
        self.shard(name).server.inject_delay_s = delay_s

    def crash_shard(self, name: str) -> None:
        """Fault injection: the shard *process* dies.

        Harsher than :meth:`fail_shard` (a routing verdict over an
        intact shard): the server is killed — queued requests fail with
        :class:`~repro.common.errors.ShardUnavailableError`, workers
        exit after their current batch — the policy-event relay
        detaches (the shard will MISS subsequent policy writes), and
        routing refuses the shard.  Recovery is a supervisor rebuild
        (:meth:`supervise`), not :meth:`restore_shard`: the dead
        process's partition view and caches are gone for good."""
        shard = self.shard(name)
        shard.crashed = True
        shard.available = False
        shard.server.kill()
        shard.partition.detach()

    def drop_relay(self, name: str) -> None:
        """Fault injection: the shard's policy-event relay dies while
        its serving stack stays up — a *partial* process failure.

        The nastiest fault this tier models: the shard keeps answering
        (fast, confidently) from a partition that silently stops
        observing base-store writes.  Nothing fails until the next
        policy write, when the two-phase scatter's prepare finds the
        detached relay and aborts — or, with ``fence_gate=False``, when
        nothing does, and the chaos suite's divergence detector must
        catch the stale answers (the teeth test)."""
        self.shard(name).partition.detach()

    # ----------------------------------------------------------- supervision

    def _needs_rebuild(self, shard: ClusterShard) -> bool:
        """Crashed process, killed server, detached relay, or a
        shrunken worker pool (a crashed worker thread never comes
        back) — states :meth:`restore_shard` cannot fix because
        shard-local state (partition view, caches, worker pool) is
        unrecoverable.  A merely ``fail_shard``-ed shard is intact and
        NOT rebuilt."""
        return (
            shard.crashed
            or shard.server.killed
            or shard.partition.detached
            or shard.server.lost_workers > 0
        )

    def supervise(self) -> list[ShardRebuild]:
        """One supervisor pass: detect dead/degenerate shards and
        rebuild each from the coordinator's authoritative state.

        A rebuild constructs a *fresh* :class:`ClusterShard` over the
        retained :class:`ShardSpec` — same data replica/backend (a
        restart on the same volume) but a brand-new policy partition
        view filtered from the authoritative base store, a new guard
        store and guard/rewrite caches, and a new worker pool — then
        swaps it in under the routing write lock with its fences set to
        the current base epoch (it is, by construction, policy-current).
        The husk's relay is detached and its pool killed.

        Rejoin goes through the existing health machinery: the rebuilt
        shard is immediately routable, and if health-aware routing had
        installed a detour for it, the recovery hold
        (:meth:`configure_health`) keeps the detour until the shard has
        stayed healthy for the hold window — rebuilds get no shortcut
        around the hysteresis.  Call it periodically (there is no
        background thread, matching :meth:`health_tick`)."""
        with self._admin_lock:
            if self._stopped or not self._started:
                return []
            with self._route_lock.read_locked():
                shards = dict(self._shards)
            rebuilds: list[ShardRebuild] = []
            for name, husk in shards.items():
                if not self._needs_rebuild(husk):
                    continue
                started = time.perf_counter()
                replacement = self._build_shard(name, self._specs[name], self._ring)
                replacement.server.start()
                fence = self.store.epoch
                replacement.policy_fence = fence
                replacement.expected_fence = fence
                with self._route_lock.write_locked():
                    self._shards[name] = replacement
                # Retire the husk: whatever was still alive of it must
                # not keep observing the base store or serving.
                husk.available = False
                husk.crashed = True
                husk.server.kill()
                husk.partition.detach()
                # Its burn-rate history belongs to the dead process.
                self._shard_monitors.pop(name, None)
                self._healthy_since.pop(name, None)
                self._tick("cluster_shard_rebuilds")
                rebuilds.append(
                    ShardRebuild(
                        name=name,
                        fence=fence,
                        duration_s=time.perf_counter() - started,
                    )
                )
            return rebuilds

    # ----------------------------------------------------------- health/SLO

    def configure_health(
        self,
        slo: SLO,
        recovery_hold_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "SieveCluster":
        """Arm health-aware routing: one per-shard
        :class:`~repro.obs.slo.BurnRateMonitor` over ``slo``, actuated
        by :meth:`health_tick`.

        ``recovery_hold_s`` is the hysteresis window — a flagged shard
        must stay clear for this long before its reroute is lifted
        (default: the SLO's short window).  Recovery is *time-based*
        by necessity: a rerouted-away shard receives no traffic, so
        its burn signal decays to zero as the windows drain rather
        than by serving proof.  ``clock`` is injectable for
        deterministic tests (samples are re-stamped with it)."""
        if recovery_hold_s is not None and recovery_hold_s < 0.0:
            raise ClusterError("recovery_hold_s must be non-negative")
        with self._admin_lock:
            self._health_slo = slo
            self._health_clock = clock
            self._recovery_hold_s = (
                recovery_hold_s if recovery_hold_s is not None else slo.short_window_s
            )
            self._shard_monitors = {}
            self._shard_status = {}
            self._healthy_since = {}
        return self

    def _shard_monitor(self, name: str, shard: ClusterShard) -> BurnRateMonitor:
        monitor = self._shard_monitors.get(name)
        if monitor is None:
            slo = self._health_slo
            clock = self._health_clock

            def source(
                server: SieveServer = shard.server,
                threshold: float | None = slo.latency_ms,
                read_clock: Callable[[], float] = clock,
            ) -> SLOSample:
                sample = server.slo_sample(threshold)
                # Re-stamp with the cluster's clock so injected test
                # clocks line up with the monitor's window arithmetic.
                return SLOSample(
                    now=read_clock(),
                    requests=sample.requests,
                    failures=sample.failures,
                    over_latency=sample.over_latency,
                )

            monitor = self._shard_monitors[name] = BurnRateMonitor(
                slo, source=source, clock=clock
            )
        return monitor

    def health_tick(self, now: float | None = None) -> dict[str, str]:
        """One health-control-loop iteration (call it periodically —
        there is no background thread, matching the serving tier's
        piggybacked ticking).

        Per shard: unavailable/stopped → ``unhealthy``; burn-rate
        alert firing → ``degraded``; else ``healthy``.  Actuation:
        every non-healthy shard gets a reroute onto a healthy fallback
        (partition widened *before* the routing swap, the rebalance
        grow-then-swap order, so no request ever sees a narrow
        partition); a rerouted shard that has stayed healthy for
        ``recovery_hold_s`` has its detour lifted (drain → shrink →
        invalidate, the rebalance phase-3 discipline).  Returns the
        tracked status per shard."""
        with self._admin_lock:
            if self._health_slo is None:
                raise ClusterError("configure_health() must run before health_tick()")
            if now is None:
                now = self._health_clock()
            with self._route_lock.read_locked():
                shards = dict(self._shards)
            for name in list(self._shard_monitors):
                if name not in shards:
                    self._shard_monitors.pop(name, None)
                    self._healthy_since.pop(name, None)
            statuses: dict[str, str] = {}
            for name, shard in shards.items():
                monitor = self._shard_monitor(name, shard)
                if not shard.available or not shard.server.running:
                    statuses[name] = "unhealthy"
                    continue
                state = monitor.tick(now=now)
                statuses[name] = (
                    "degraded"
                    if (state.fast_firing or state.slow_firing)
                    else "healthy"
                )
            for name, status in statuses.items():
                if status == "healthy":
                    self._healthy_since.setdefault(name, now)
                else:
                    self._healthy_since.pop(name, None)
            self._shard_status = statuses
            for name, status in statuses.items():
                if status != "healthy" and name not in self._reroutes:
                    self._install_reroute(name, statuses)
            for name in list(self._reroutes):
                since = self._healthy_since.get(name)
                if (
                    statuses.get(name) == "healthy"
                    and since is not None
                    and now - since >= self._recovery_hold_s
                ):
                    self._clear_reroute(name)
            return dict(statuses)

    def _set_fallback_ownership(self, fallback: str, covered: set[str]) -> None:
        """Point a fallback's partition at its base queriers plus those
        of every shard in ``covered`` (the reroute analogue of the
        rebalance grow/shrink predicates)."""
        shard = self._shards[fallback]
        if covered:
            shard.partition.set_ownership(
                lambda q, n=fallback, r=self._ring, c=frozenset(covered): (
                    r.route(q) == n or r.route(q) in c
                )
            )
        else:
            shard.partition.set_ownership(
                lambda q, n=fallback, r=self._ring: r.route(q) == n
            )

    def _pick_fallback(self, degraded: str, statuses: dict[str, str]) -> str | None:
        """A healthy, non-rerouted shard to stand in for ``degraded``
        (preferring one not already covering another detour)."""
        candidates = [
            name
            for name in sorted(statuses)
            if name != degraded
            and statuses[name] == "healthy"
            and name not in self._reroutes
        ]
        free = [name for name in candidates if name not in self._reroutes.values()]
        choices = free or candidates
        return choices[0] if choices else None

    def _install_reroute(self, name: str, statuses: dict[str, str]) -> None:
        fallback = self._pick_fallback(name, statuses)
        if fallback is None:
            return  # no healthy stand-in; routing keeps its verdict as-is
        covered = {d for d, f in self._reroutes.items() if f == fallback} | {name}
        # Grow before swap: the fallback owns the detoured queriers'
        # policies before any of their requests can reach it.
        self._set_fallback_ownership(fallback, covered)
        with self._route_lock.write_locked():
            self._reroutes[name] = fallback

    def _clear_reroute(self, name: str) -> None:
        with self._route_lock.write_locked():
            fallback = self._reroutes.pop(name, None)
        if fallback is None or fallback not in self._shards:
            return
        shard = self._shards[fallback]
        ring = self._ring
        # New requests for the recovered shard's queriers now land on
        # it again; drain the fallback's stragglers for them, then
        # shrink its partition and drop their migrated cached state —
        # on timeout keep the widened ownership (stragglers stay
        # correct; a later tick retries the shrink via reinstall).
        drained = shard.server.wait_quiesced(
            lambda key, n=name, r=ring: r.route(key[0]) == n,
            timeout=self.rebalance_timeout,
        )
        if not drained:
            with self._route_lock.write_locked():
                self._reroutes[name] = fallback
            return
        covered = {d for d, f in self._reroutes.items() if f == fallback}
        self._set_fallback_ownership(fallback, covered)
        for querier in {
            q for q in shard.cached_queriers() if ring.route(q) == name
        }:
            shard.invalidate_querier(querier)

    def _clear_all_reroutes(self) -> None:
        """Lift every detour (rebalances recompute ownership from the
        ring alone; the next health_tick re-detours against the new
        assignment if a shard is still flagged)."""
        for name in list(self._reroutes):
            self._clear_reroute(name)

    def reroutes(self) -> dict[str, str]:
        """Active detours: degraded shard → fallback serving for it."""
        with self._route_lock.read_locked():
            return dict(self._reroutes)

    def shard_health(self) -> dict[str, str]:
        """The coordinator's tracked verdict per live shard (shards
        never ticked default to ``healthy``)."""
        statuses = self._shard_status  # atomic reference, swapped whole
        with self._route_lock.read_locked():
            return {name: statuses.get(name, "healthy") for name in self._shards}

    def health_registry(self) -> Any:
        """A fresh :class:`~repro.obs.health.HealthRegistry` over the
        current shard set (rebuilt per call — rebalances change the
        component list)."""
        from repro.obs.health import cluster_health

        return cluster_health(self)

    def health(self) -> Any:
        """The cluster :class:`~repro.obs.health.HealthReport` with the
        cluster-aware roll-up: dead shards cap the verdict at
        ``degraded`` while any shard still serves."""
        from repro.obs.health import HealthReport, rollup_cluster

        report = self.health_registry().report()
        return HealthReport(
            status=rollup_cluster(report.components), components=report.components
        )

    def health_json(self) -> dict[str, Any]:
        """JSON-ready :meth:`health` (the ``/health`` endpoint body)."""
        return self.health().to_dict()

    # ----------------------------------------------------------- rebalance

    def routable_queriers(self) -> set[Any]:
        """The querier universe routing decisions range over: every
        user identity with direct policies plus every member of a
        group that has policies (group identities themselves are not
        routed — their policies follow the members)."""
        out: set[Any] = set()
        groups = self.store.groups
        for q in self.store.queriers():
            if q in groups:
                out |= set(groups.members_of(q))
            else:
                out.add(q)
        return out

    def replica_spec(self, backend_factory: Callable[[Database], Any] | None = None) -> ShardSpec:
        """A fresh :class:`ShardSpec` replicating the coordinator's
        data tier — the usual argument to :meth:`add_shard`."""
        db = replicate_database(self.store.db)
        return ShardSpec(db=db, backend=backend_factory(db) if backend_factory else None)

    def add_shard(self, spec: ShardSpec, workers: int | None = None) -> RebalanceReport:
        """Online scale-out: join one shard, migrating ~1/(N+1) of the
        queriers onto it (hash-ring stability — no querier moves
        between surviving shards)."""
        with self._admin_lock:
            if self._stopped:
                raise ClusterError("cluster is stopped")
            old_ring = self._ring
            name = self._claim_name(spec, old_ring)
            new_ring = old_ring.with_node(name)
            shard = ClusterShard(
                name,
                spec,
                self.store,
                owns=lambda q, r=new_ring, n=name: r.route(q) == n,
                workers=workers or self.workers_per_shard,
                max_pending=self.max_pending,
                max_batch=self.max_batch,
                cost_model=self.cost_model,
                audit=self.audit_enabled,
                tracer=self.tracer,
            )
            self._specs[name] = spec
            self._wire_faults(name, shard)
            if self._started:
                shard.server.start()
            return self._apply_assignment(
                old_ring, new_ring, joining=shard, leaving=None
            )

    def remove_shard(self, name: str) -> RebalanceReport:
        """Online scale-in: decommission one shard, migrating exactly
        its queriers onto the survivors (no survivor-to-survivor
        movement), then drain and stop it."""
        with self._admin_lock:
            if self._stopped:
                raise ClusterError("cluster is stopped")
            if name not in self._shards:
                raise ClusterError(f"unknown shard {name!r}")
            if len(self._shards) == 1:
                raise ClusterError("cannot remove the last shard")
            old_ring = self._ring
            new_ring = old_ring.without_node(name)
            return self._apply_assignment(
                old_ring, new_ring, joining=None, leaving=self._shards[name]
            )

    def _apply_assignment(
        self,
        old_ring: HashRing,
        new_ring: HashRing,
        joining: ClusterShard | None,
        leaving: ClusterShard | None,
    ) -> RebalanceReport:
        """Grow → swap → drain → shrink (see the module docstring)."""
        # Health detours widen partitions with predicates closed over
        # the *old* ring; lift them first (the next health_tick
        # re-detours against the new assignment if still warranted).
        self._clear_all_reroutes()
        survivors = [
            shard
            for shard in self._shards.values()
            if leaving is None or shard.name != leaving.name
        ]
        # Phase 1 — grow: survivors own the union of old and new
        # assignments, so requests admitted under either ring resolve
        # their full policy set (extra queriers are harmless).
        for shard in survivors:
            shard.partition.set_ownership(
                lambda q, n=shard.name, o=old_ring, r=new_ring: o.route(q) == n
                or r.route(q) == n
            )
        # Phase 2 — swap: atomic reference replacement; the leaving
        # shard stops receiving *new* traffic in the same critical
        # section.
        with self._route_lock.write_locked():
            if joining is not None:
                self._shards[joining.name] = joining
            self._ring = new_ring
            if leaving is not None:
                leaving.available = False
        # Phase 3 — drain stragglers, then shrink + invalidate.  A
        # shard that fails to drain within the timeout keeps its
        # *widened* (old ∪ new) ownership: stragglers stay exactly
        # correct, at the cost of the shard observing migrated
        # queriers' mutations until a later rebalance shrinks it —
        # never shrink under a live straggler, which would silently
        # serve it an emptied policy view.
        shard_drained: dict[str, bool] = {}
        affected = list(survivors) if leaving is None else [*survivors, leaving]
        for shard in affected:
            shard_drained[shard.name] = shard.server.wait_quiesced(
                lambda key, n=shard.name, r=new_ring: r.route(key[0]) != n,
                timeout=self.rebalance_timeout,
            )
        drained = all(shard_drained.values())
        invalidated = 0
        for shard in survivors:
            if not shard_drained[shard.name]:
                continue
            doomed = {
                q
                for q in shard.cached_queriers()
                if new_ring.route(q) != shard.name
            }
            shard.partition.set_ownership(
                lambda q, n=shard.name, r=new_ring: r.route(q) == n
            )
            for querier in doomed:
                invalidated += shard.invalidate_querier(querier)
        if leaving is not None:
            leaving.server.stop(drain=True)
            leaving.partition.detach()
            with self._route_lock.write_locked():
                del self._shards[leaving.name]
            self._specs.pop(leaving.name, None)
        universe = self.routable_queriers()
        moved = old_ring.moved_keys(new_ring, universe)
        self._tick("cluster_rebalance_moves", len(moved))
        return RebalanceReport(
            added=joining.name if joining is not None else None,
            removed=leaving.name if leaving is not None else None,
            moved_queriers=moved,
            universe=len(universe),
            invalidated_entries=invalidated,
            drained=drained,
        )

    # ----------------------------------------------------------------- audit

    def audit_logs(self) -> dict[str, AuditLog]:
        """The live per-shard decision chains (cluster built with
        ``audit=True``); chain id = shard name."""
        with self._route_lock.read_locked():
            shards = list(self._shards.values())
        return {
            shard.name: shard.audit_log
            for shard in shards
            if shard.audit_log is not None
        }

    def merged_audit_records(self) -> "list[DecisionRecord]":
        """One deterministic, verifiability-preserving merged log.

        Each per-shard chain is verified against its live head, then
        records interleave by ``(chain, seq)`` — see
        :func:`~repro.audit.merge_records`.  The merge is re-checkable
        with :func:`~repro.audit.verify_merged` because every record
        keeps its shard chain id: the merged sequence re-partitions
        into the original intact chains.
        """
        return merge_records(self.audit_logs().values())

    # ------------------------------------------------------------ accounting

    def partition_sizes(self) -> dict[str, int]:
        """Policies per shard partition — the ~1/N corpus share."""
        with self._route_lock.read_locked():
            shards = list(self._shards.values())
        return {shard.name: len(shard.partition) for shard in shards}

    def stats(self) -> ClusterStats:
        with self._route_lock.read_locked():
            shards = list(self._shards.values())
        per_shard = {shard.name: shard.server.stats() for shard in shards}
        partition_policies = {shard.name: len(shard.partition) for shard in shards}
        with self._counter_lock:
            counters = {
                name: getattr(self._counters, name) for name in _CLUSTER_COUNTERS
            }
        return ClusterStats.merge(
            per_shard,
            partition_policies,
            counters,
            health=self.shard_health(),
            reroutes=self.reroutes(),
        )

    # -------------------------------------------------------------- metrics

    def metrics_registry(self) -> Any:
        """The cluster's :class:`~repro.obs.metrics.MetricsRegistry`
        (built lazily, once): coordinator engine counters, merged
        serving summaries and per-shard labelled gauges."""
        registry = getattr(self, "_metrics_registry", None)
        if registry is None:
            from repro.obs.export import cluster_registry

            registry = self._metrics_registry = cluster_registry(self)
        return registry

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition of :meth:`metrics_registry`."""
        from repro.obs.export import to_prometheus

        return to_prometheus(self.metrics_registry())

    def metrics_json(self) -> dict[str, Any]:
        """The JSON snapshot of :meth:`metrics_registry`."""
        from repro.obs.export import to_json

        return to_json(self.metrics_registry())
