"""SQL AST nodes.

The dialect covers what the paper's queries and Sieve's rewrites need:
SELECT (DISTINCT) with expressions and aliases, FROM with base tables,
derived tables and INNER JOIN ... ON, index-usage hints on table refs
(FORCE/USE/IGNORE INDEX), WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, WITH
CTEs, and UNION [ALL] / EXCEPT / INTERSECT set operations.  Scalar and
IN subqueries appear as expression nodes (see ``repro.expr``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.expr.nodes import Expr


@dataclass
class IndexHint:
    """MySQL-style index usage hint attached to a table reference.

    ``kind`` is FORCE / USE / IGNORE.  ``USE INDEX ()`` with no names is
    the paper's way of telling the optimizer to avoid all indexes
    (Section 5.5, LinearScan strategy).
    """

    kind: str  # "FORCE" | "USE" | "IGNORE"
    index_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.kind = self.kind.upper()
        if self.kind not in ("FORCE", "USE", "IGNORE"):
            raise ValueError(f"bad hint kind {self.kind!r}")


@dataclass
class TableRef:
    """A base-table (or CTE) reference with optional alias and hint."""

    name: str
    alias: str | None = None
    hint: IndexHint | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class DerivedTable:
    """A parenthesised subquery in FROM, always aliased."""

    query: "Query"
    alias: str


FromItem = Union[TableRef, DerivedTable]


@dataclass
class JoinClause:
    """An explicit INNER JOIN; the engine treats all joins as inner."""

    item: FromItem
    condition: Expr | None  # None for CROSS JOIN


@dataclass
class SelectItem:
    expr: Expr
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        # ColumnRef falls back to its bare column name, everything else
        # to its printed form.
        from repro.expr.nodes import ColumnRef

        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return str(self.expr)


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class Select:
    """One SELECT block."""

    items: list[SelectItem]
    from_items: list[FromItem] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

    def __str__(self) -> str:
        from repro.sql.printer import to_sql

        return to_sql(self)


@dataclass
class SetOp:
    """A set operation over two select cores."""

    op: str  # "UNION" | "EXCEPT" | "INTERSECT"
    left: "SelectCore"
    right: "SelectCore"
    all: bool = False  # UNION ALL

    def __post_init__(self) -> None:
        self.op = self.op.upper()
        if self.op == "MINUS":  # Oracle spelling used in the paper
            self.op = "EXCEPT"
        if self.op not in ("UNION", "EXCEPT", "INTERSECT"):
            raise ValueError(f"bad set op {self.op!r}")


SelectCore = Union[Select, SetOp]


@dataclass
class CTE:
    name: str
    query: "Query"


@dataclass
class Query:
    """A full statement: optional WITH list plus a select core."""

    body: SelectCore
    ctes: list[CTE] = field(default_factory=list)

    def __str__(self) -> str:
        from repro.sql.printer import to_sql

        return to_sql(self)
