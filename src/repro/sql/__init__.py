"""SQL front end: lexer, AST, parser, and SQL printer."""

from repro.sql.ast import (
    CTE,
    DerivedTable,
    IndexHint,
    JoinClause,
    OrderItem,
    Query,
    Select,
    SelectItem,
    SetOp,
    TableRef,
)
from repro.sql.parser import parse_query, parse_expression
from repro.sql.printer import to_sql

__all__ = [
    "CTE",
    "DerivedTable",
    "IndexHint",
    "JoinClause",
    "OrderItem",
    "Query",
    "Select",
    "SelectItem",
    "SetOp",
    "TableRef",
    "parse_query",
    "parse_expression",
    "to_sql",
]
