"""SQL front end: lexer, AST, parser, and SQL printer."""

from repro.sql.ast import (
    CTE,
    DerivedTable,
    IndexHint,
    JoinClause,
    OrderItem,
    Query,
    Select,
    SelectItem,
    SetOp,
    TableRef,
)
from repro.sql.parser import parse_query, parse_expression
from repro.sql.printer import (
    ANSI_DIALECT,
    DEFAULT_DIALECT,
    MYSQL_DIALECT,
    SQLITE_DIALECT,
    Dialect,
    dialect_by_name,
    print_expr,
    to_sql,
)

__all__ = [
    "CTE",
    "DerivedTable",
    "IndexHint",
    "JoinClause",
    "OrderItem",
    "Query",
    "Select",
    "SelectItem",
    "SetOp",
    "TableRef",
    "parse_query",
    "parse_expression",
    "to_sql",
    "print_expr",
    "Dialect",
    "dialect_by_name",
    "ANSI_DIALECT",
    "DEFAULT_DIALECT",
    "MYSQL_DIALECT",
    "SQLITE_DIALECT",
]
