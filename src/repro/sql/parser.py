"""Recursive-descent SQL parser.

Grammar (informal)::

    query        := [WITH cte ("," cte)*] select_core
    cte          := ident AS "(" query ")"
    select_core  := select_block ((UNION [ALL] | EXCEPT | MINUS | INTERSECT) select_block)*
    select_block := SELECT [DISTINCT] items FROM from_list
                    [WHERE expr] [GROUP BY exprs] [HAVING expr]
                    [ORDER BY order_items] [LIMIT n]
                  | "(" select_core ")"
    from_list    := from_item ("," from_item | [INNER|CROSS] JOIN from_item [ON expr])*
    from_item    := ident [[AS] alias] [index_hint] | "(" query ")" [AS] alias
    index_hint   := (FORCE | USE | IGNORE) INDEX "(" [ident ("," ident)*] ")"
                  | INDEXED BY ident | NOT INDEXED

Expressions follow standard precedence: OR < AND < NOT < comparison /
BETWEEN / IN / LIKE < additive < multiplicative < unary.
"""

from __future__ import annotations

from repro.common.errors import ParseError
from repro.expr.nodes import (
    And,
    Arith,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
    ScalarSubquery,
    Star,
)
from repro.sql.ast import (
    CTE,
    DerivedTable,
    FromItem,
    IndexHint,
    JoinClause,
    OrderItem,
    Query,
    Select,
    SelectCore,
    SelectItem,
    SetOp,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARE_OPS = {
    "=": CompareOp.EQ,
    "!=": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


def parse_query(text: str) -> Query:
    """Parse a full SQL statement into a Query AST."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used by tests and policy tooling)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        # Parameter slot assignment: each `?` takes the next ordinal;
        # `:name` reuses the slot of its first occurrence.
        self._param_count = 0
        self._param_slots: dict[str, int] = {}

    # ------------------------------------------------------------- utilities

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        token = self._cur
        self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> bool:
        if self._cur.is_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(f"expected {word.upper()}, found {self._cur}", self._cur.position)

    def _accept_punct(self, char: str) -> bool:
        if self._cur.type is TokenType.PUNCT and self._cur.value == char:
            self._advance()
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            raise ParseError(f"expected {char!r}, found {self._cur}", self._cur.position)

    def _expect_ident(self) -> str:
        if self._cur.type is TokenType.IDENT:
            return self._advance().value
        raise ParseError(f"expected identifier, found {self._cur}", self._cur.position)

    def expect_eof(self) -> None:
        if self._cur.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input: {self._cur}", self._cur.position)

    # ------------------------------------------------------------ statements

    def parse_query(self) -> Query:
        ctes: list[CTE] = []
        if self._accept_keyword("with"):
            while True:
                name = self._expect_ident()
                self._expect_keyword("as")
                self._expect_punct("(")
                inner = self.parse_query()
                self._expect_punct(")")
                ctes.append(CTE(name, inner))
                if not self._accept_punct(","):
                    break
        body = self._parse_select_core()
        return Query(body=body, ctes=ctes)

    def _parse_select_core(self) -> SelectCore:
        left = self._parse_select_block()
        while True:
            if self._cur.is_keyword("union"):
                self._advance()
                use_all = self._accept_keyword("all")
                right = self._parse_select_block()
                left = SetOp("UNION", left, right, all=use_all)
            elif self._cur.is_keyword("except", "minus"):
                op = self._advance().value
                right = self._parse_select_block()
                left = SetOp(op.upper(), left, right)
            elif self._cur.is_keyword("intersect"):
                self._advance()
                right = self._parse_select_block()
                left = SetOp("INTERSECT", left, right)
            else:
                return left

    def _parse_select_block(self) -> SelectCore:
        if self._cur.type is TokenType.PUNCT and self._cur.value == "(":
            self._advance()
            inner = self._parse_select_core()
            self._expect_punct(")")
            return inner
        return self._parse_select()

    def _parse_select(self) -> Select:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        select = Select(items=items, distinct=distinct)
        if self._accept_keyword("from"):
            self._parse_from_list(select)
        if self._accept_keyword("where"):
            select.where = self.parse_expr()
        if self._cur.is_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            select.group_by.append(self.parse_expr())
            while self._accept_punct(","):
                select.group_by.append(self.parse_expr())
        if self._accept_keyword("having"):
            select.having = self.parse_expr()
        if self._cur.is_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            select.order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                select.order_by.append(self._parse_order_item())
        if self._accept_keyword("limit"):
            token = self._advance()
            if token.type is not TokenType.NUMBER:
                raise ParseError("LIMIT expects a number", token.position)
            select.limit = int(token.value)
        return select

    def _parse_select_item(self) -> SelectItem:
        if self._cur.type is TokenType.OPERATOR and self._cur.value == "*":
            self._advance()
            return SelectItem(Star())
        # qualified star: ident . *
        if (
            self._cur.type is TokenType.IDENT
            and self._peek().type is TokenType.PUNCT
            and self._peek().value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            table = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return SelectItem(Star(table=table))
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, ascending)

    # ------------------------------------------------------------------ FROM

    def _parse_from_list(self, select: Select) -> None:
        select.from_items.append(self._parse_from_item())
        while True:
            if self._accept_punct(","):
                select.from_items.append(self._parse_from_item())
                continue
            if self._cur.is_keyword("inner", "cross", "join"):
                is_cross = self._cur.is_keyword("cross")
                if self._cur.is_keyword("inner", "cross"):
                    self._advance()
                self._expect_keyword("join")
                item = self._parse_from_item()
                condition = None
                if self._accept_keyword("on"):
                    condition = self.parse_expr()
                elif not is_cross:
                    raise ParseError("JOIN requires ON (only inner joins supported)",
                                     self._cur.position)
                select.joins.append(JoinClause(item, condition))
                continue
            return

    def _parse_from_item(self) -> FromItem:
        if self._cur.type is TokenType.PUNCT and self._cur.value == "(":
            self._advance()
            inner = self.parse_query()
            self._expect_punct(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return DerivedTable(inner, alias)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        hint = self._parse_index_hint()
        return TableRef(name, alias, hint)

    def _parse_index_hint(self) -> IndexHint | None:
        # SQLite dialect spellings, mapped onto the canonical hint
        # forms so either dialect's output parses back to the same AST:
        # INDEXED BY name == FORCE INDEX (name); NOT INDEXED == USE INDEX ().
        if self._cur.is_keyword("indexed") and self._peek().is_keyword("by"):
            self._advance()
            self._advance()
            return IndexHint("FORCE", (self._expect_ident(),))
        if self._cur.is_keyword("not") and self._peek().is_keyword("indexed"):
            self._advance()
            self._advance()
            return IndexHint("USE", ())
        if not self._cur.is_keyword("force", "use", "ignore"):
            return None
        # guard against USE/FORCE as something else: must be followed by INDEX
        if not self._peek().is_keyword("index"):
            return None
        kind = self._advance().value.upper()
        self._expect_keyword("index")
        self._expect_punct("(")
        names: list[str] = []
        if not (self._cur.type is TokenType.PUNCT and self._cur.value == ")"):
            names.append(self._expect_ident())
            while self._accept_punct(","):
                names.append(self._expect_ident())
        self._expect_punct(")")
        return IndexHint(kind, tuple(names))

    # ----------------------------------------------------------- expressions

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        parts = [self._parse_and()]
        while self._accept_keyword("or"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def _parse_and(self) -> Expr:
        parts = [self._parse_not()]
        while self._accept_keyword("and"):
            parts.append(self._parse_not())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        if self._cur.type is TokenType.OPERATOR and self._cur.value in _COMPARE_OPS:
            op = _COMPARE_OPS[self._advance().value]
            right = self._parse_additive()
            return Comparison(op, left, right)
        negated = False
        if self._cur.is_keyword("not") and self._peek().is_keyword("between", "in", "like"):
            self._advance()
            negated = True
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._accept_keyword("in"):
            return self._parse_in_rhs(left, negated)
        if self._accept_keyword("is"):
            is_not = self._accept_keyword("not")
            self._expect_keyword("null")
            result: Expr = IsNull(left)
            if is_not:
                result = Not(result)
            return result
        if negated:
            raise ParseError("dangling NOT", self._cur.position)
        return left

    def _parse_in_rhs(self, left: Expr, negated: bool) -> Expr:
        self._expect_punct("(")
        if self._cur.is_keyword("select", "with"):
            sub = self.parse_query()
            self._expect_punct(")")
            return InSubquery(left, sub, negated=negated)
        items = [self.parse_expr()]
        while self._accept_punct(","):
            items.append(self.parse_expr())
        self._expect_punct(")")
        return InList(left, tuple(items), negated=negated)

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._cur.type is TokenType.OPERATOR and self._cur.value in ("+", "-"):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = Arith(op, left, right)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._cur.type is TokenType.OPERATOR and self._cur.value in ("*", "/", "%"):
            op = self._advance().value
            right = self._parse_unary()
            left = Arith(op, left, right)
        return left

    def _parse_unary(self) -> Expr:
        if self._cur.type is TokenType.OPERATOR and self._cur.value == "-":
            self._advance()
            inner = self._parse_unary()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return Arith("-", Literal(0), inner)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._cur
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.type is TokenType.PARAM:
            self._advance()
            if token.value:
                slot = self._param_slots.get(token.value)
                if slot is None:
                    slot = self._param_count
                    self._param_slots[token.value] = slot
                    self._param_count += 1
                return Param(slot, token.value)
            slot = self._param_count
            self._param_count += 1
            return Param(slot)
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._cur.is_keyword("select", "with"):
                sub = self.parse_query()
                self._expect_punct(")")
                return ScalarSubquery(sub)
            inner = self.parse_expr()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENT:
            return self._parse_name_or_call()
        raise ParseError(f"unexpected token {token}", token.position)

    def _parse_name_or_call(self) -> Expr:
        name = self._advance().value
        if self._cur.type is TokenType.PUNCT and self._cur.value == "(":
            self._advance()
            distinct = self._accept_keyword("distinct")
            args: list[Expr] = []
            if self._cur.type is TokenType.OPERATOR and self._cur.value == "*":
                self._advance()
                args.append(Star())
            elif not (self._cur.type is TokenType.PUNCT and self._cur.value == ")"):
                args.append(self.parse_expr())
                while self._accept_punct(","):
                    args.append(self.parse_expr())
            self._expect_punct(")")
            return FuncCall(name, tuple(args), distinct=distinct)
        if self._accept_punct("."):
            column = self._expect_ident()
            return ColumnRef(column, table=name)
        return ColumnRef(name)
