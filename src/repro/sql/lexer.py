"""SQL tokenizer.

Produces a flat token list consumed by the recursive-descent parser.
Keywords are recognised case-insensitively; identifiers may be quoted
with double quotes or backticks (MySQL style).  String literals use
single quotes with ``''`` escaping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ParseError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "in", "between", "is", "null", "distinct",
    "union", "all", "except", "minus", "intersect", "join", "inner", "cross",
    "on", "with", "force", "use", "ignore", "index", "indexed", "asc", "desc", "true",
    "false", "case", "when", "then", "else", "end", "exists", "like",
    "insert", "into", "values", "delete", "update", "set", "create",
    "table", "drop", "analyze", "using",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words

    def __str__(self) -> str:
        return f"{self.value!r}"


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),."


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text, raising ParseError on malformed input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            nl = text.find("\n", i)
            i = n if nl == -1 else nl + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch in ('"', "`"):
            end = text.find(ch, i + 1)
            if end == -1:
                raise ParseError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            # allow exponents like 1e-5
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] in "_$"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, "!=" if op == "<>" else op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        if ch == "?":
            # Positional parameter; value is empty, slot assigned by parser.
            tokens.append(Token(TokenType.PARAM, "", i))
            i += 1
            continue
        if ch == ":":
            start = i
            i += 1
            if i < n and (text[i].isalpha() or text[i] == "_"):
                name_start = i
                while i < n and (text[i].isalnum() or text[i] == "_"):
                    i += 1
                tokens.append(Token(TokenType.PARAM, text[name_start:i], start))
                continue
            raise ParseError("expected parameter name after ':'", start)
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``start``; '' escapes a quote."""
    out: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise ParseError("unterminated string literal", start)
