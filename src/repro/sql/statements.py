"""Non-SELECT statements: DML (INSERT/UPDATE/DELETE) and DDL.

Grammar::

    insert  := INSERT INTO ident ["(" cols ")"] VALUES tuple ("," tuple)*
             | INSERT INTO ident ["(" cols ")"] query
    delete  := DELETE FROM ident [WHERE expr]
    update  := UPDATE ident SET ident "=" expr ("," ident "=" expr)* [WHERE expr]
    create  := CREATE TABLE ident "(" ident type ("," ident type)* ")"
             | CREATE [UNIQUE] INDEX [ident] ON ident "(" ident ")" [USING (BTREE|HASH)]
    drop    := DROP TABLE ident
    analyze := ANALYZE [ident]

Statements are parsed by :func:`parse_statement`, which falls through
to :func:`repro.sql.parser.parse_query` for SELECT/WITH.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.common.errors import ParseError
from repro.expr.nodes import Expr
from repro.sql.ast import Query
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import _Parser

TYPE_NAMES = {
    "int": "INT",
    "integer": "INT",
    "float": "FLOAT",
    "double": "FLOAT",
    "real": "FLOAT",
    "varchar": "VARCHAR",
    "text": "VARCHAR",
    "string": "VARCHAR",
    "bool": "BOOL",
    "boolean": "BOOL",
    "time": "TIME",
    "date": "DATE",
}


@dataclass
class InsertStatement:
    table: str
    columns: list[str] = field(default_factory=list)  # empty = schema order
    rows: list[list[Expr]] = field(default_factory=list)
    source: Query | None = None  # INSERT INTO ... SELECT


@dataclass
class DeleteStatement:
    table: str
    where: Expr | None = None


@dataclass
class UpdateStatement:
    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Expr | None = None


@dataclass
class CreateTableStatement:
    table: str
    columns: list[tuple[str, str]] = field(default_factory=list)  # (name, TYPE)


@dataclass
class CreateIndexStatement:
    table: str
    column: str
    name: str | None = None
    kind: str = "btree"


@dataclass
class DropTableStatement:
    table: str


@dataclass
class AnalyzeStatement:
    table: str | None = None


Statement = Union[
    Query,
    InsertStatement,
    DeleteStatement,
    UpdateStatement,
    CreateTableStatement,
    CreateIndexStatement,
    DropTableStatement,
    AnalyzeStatement,
]


def parse_statement(text: str) -> Statement:
    """Parse any supported statement (SELECT falls through to Query)."""
    parser = _StatementParser(tokenize(text))
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


class _StatementParser(_Parser):
    def parse_statement(self) -> Statement:
        if self._cur.is_keyword("insert"):
            return self._parse_insert()
        if self._cur.is_keyword("delete"):
            return self._parse_delete()
        if self._cur.is_keyword("update"):
            return self._parse_update()
        if self._cur.is_keyword("create"):
            return self._parse_create()
        if self._cur.is_keyword("drop"):
            return self._parse_drop()
        if self._cur.is_keyword("analyze"):
            return self._parse_analyze()
        return self.parse_query()

    # ------------------------------------------------------------------ DML

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident()
        columns: list[str] = []
        if self._cur.type is TokenType.PUNCT and self._cur.value == "(":
            self._advance()
            columns.append(self._expect_ident())
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        if self._cur.is_keyword("select", "with"):
            return InsertStatement(table, columns, source=self.parse_query())
        self._expect_keyword("values")
        rows: list[list[Expr]] = [self._parse_value_tuple()]
        while self._accept_punct(","):
            rows.append(self._parse_value_tuple())
        return InsertStatement(table, columns, rows=rows)

    def _parse_value_tuple(self) -> list[Expr]:
        self._expect_punct("(")
        values = [self.parse_expr()]
        while self._accept_punct(","):
            values.append(self.parse_expr())
        self._expect_punct(")")
        return values

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident()
        where = self.parse_expr() if self._accept_keyword("where") else None
        return DeleteStatement(table, where)

    def _parse_update(self) -> UpdateStatement:
        self._expect_keyword("update")
        table = self._expect_ident()
        self._expect_keyword("set")
        assignments: list[tuple[str, Expr]] = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self._accept_keyword("where") else None
        return UpdateStatement(table, assignments, where)

    def _parse_assignment(self) -> tuple[str, Expr]:
        column = self._expect_ident()
        token = self._advance()
        if token.type is not TokenType.OPERATOR or token.value != "=":
            raise ParseError("expected '=' in SET assignment", token.position)
        return column, self.parse_expr()

    # ------------------------------------------------------------------ DDL

    def _parse_create(self) -> Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            table = self._expect_ident()
            self._expect_punct("(")
            columns = [self._parse_column_def()]
            while self._accept_punct(","):
                columns.append(self._parse_column_def())
            self._expect_punct(")")
            return CreateTableStatement(table, columns)
        if self._accept_keyword("index"):
            name: str | None = None
            if self._cur.type is TokenType.IDENT and not self._cur.is_keyword("on"):
                name = self._expect_ident()
            self._expect_keyword("on")
            table = self._expect_ident()
            self._expect_punct("(")
            column = self._expect_ident()
            self._expect_punct(")")
            kind = "btree"
            if self._accept_keyword("using"):
                kind_token = self._expect_ident()
                kind = kind_token.lower()
                if kind not in ("btree", "hash"):
                    raise ParseError(f"unknown index kind {kind!r}")
            return CreateIndexStatement(table, column, name, kind)
        raise ParseError(f"expected TABLE or INDEX after CREATE, found {self._cur}",
                         self._cur.position)

    def _parse_column_def(self) -> tuple[str, str]:
        name = self._expect_ident()
        type_token = self._expect_ident()
        type_name = TYPE_NAMES.get(type_token.lower())
        if type_name is None:
            raise ParseError(f"unknown column type {type_token!r}")
        return name, type_name

    def _parse_drop(self) -> DropTableStatement:
        self._expect_keyword("drop")
        self._expect_keyword("table")
        return DropTableStatement(self._expect_ident())

    def _parse_analyze(self) -> AnalyzeStatement:
        self._expect_keyword("analyze")
        if self._cur.type is TokenType.IDENT:
            return AnalyzeStatement(self._expect_ident())
        return AnalyzeStatement()
