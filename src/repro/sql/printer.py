"""AST -> SQL text, parameterized by a target :class:`Dialect`.

Round-trips with the parser (``parse(to_sql(q))`` is structurally equal
to ``q``), which the property tests verify — for every dialect whose
constructs the parser accepts.  The default dialect prints index hints
in MySQL's ``FORCE INDEX (name, ...)`` syntax, matching the paper's
rewrites; the SQLite dialect prints ``INDEXED BY name`` / ``NOT
INDEXED`` instead and drops hints SQLite cannot express (``IGNORE
INDEX``, multi-index ``FORCE``).  Backends (``repro.backend``) pick the
dialect their engine understands; everything else in the rewriter and
middleware stays dialect-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.nodes import (
    Arith,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    And,
    Param,
    ScalarSubquery,
    Star,
)
from repro.sql.ast import (
    CTE,
    DerivedTable,
    FromItem,
    IndexHint,
    JoinClause,
    OrderItem,
    Query,
    Select,
    SelectCore,
    SelectItem,
    SetOp,
    TableRef,
)


@dataclass(frozen=True)
class Dialect:
    """How one target engine spells the constructs that differ.

    * ``hint_style`` — ``"mysql"`` (``FORCE/USE/IGNORE INDEX (...)``),
      ``"sqlite"`` (``INDEXED BY name`` / ``NOT INDEXED``), or
      ``"none"`` (hints silently dropped, e.g. PostgreSQL, which has
      no hint syntax at all).
    * ``bool_literals`` — whether the engine accepts ``True``/``False``
      keywords; when False they render as ``1``/``0`` (SQLite).
    * ``set_op_parens`` — whether compound-select operands may be
      parenthesised.  SQLite's grammar forbids ``(SELECT ...) UNION
      ...``, but its compound operators are left-associative, so
      left-nested chains (the only shape the rewriter emits, and what
      the parser folds to) print flat without changing meaning;
      right-nested set operations are inexpressible and raise.
    """

    name: str
    hint_style: str = "mysql"  # "mysql" | "sqlite" | "none"
    bool_literals: bool = True
    set_op_parens: bool = True

    def render_hint(self, hint: IndexHint) -> str | None:
        """The hint's SQL text in this dialect, or None to drop it."""
        if self.hint_style == "mysql":
            names = ", ".join(hint.index_names)
            return f"{hint.kind} INDEX ({names})"
        if self.hint_style == "sqlite":
            # SQLite's analogue of USE INDEX () ("avoid all indexes").
            if hint.kind == "USE" and not hint.index_names:
                return "NOT INDEXED"
            # INDEXED BY names exactly one index; multi-index FORCE and
            # IGNORE INDEX have no SQLite spelling — drop them (hints
            # are performance advice, never semantics).
            if hint.kind == "FORCE" and len(hint.index_names) == 1:
                return f"INDEXED BY {hint.index_names[0]}"
            return None
        return None

    def render_literal(self, literal: Literal) -> str:
        value = literal.value
        if isinstance(value, bool):
            if self.bool_literals:
                return str(value)
            return "1" if value else "0"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if value is None:
            return "NULL"
        return str(value)

    def normalize(self, hint: IndexHint | None) -> IndexHint | None:
        """The hint as it survives a print/parse round trip in this
        dialect (None when :meth:`render_hint` drops it)."""
        if hint is None or self.render_hint(hint) is None:
            return None
        return hint


MYSQL_DIALECT = Dialect(name="mysql")
SQLITE_DIALECT = Dialect(
    name="sqlite", hint_style="sqlite", bool_literals=False, set_op_parens=False
)
ANSI_DIALECT = Dialect(name="ansi", hint_style="none")
DEFAULT_DIALECT = MYSQL_DIALECT

DIALECTS = {d.name: d for d in (MYSQL_DIALECT, SQLITE_DIALECT, ANSI_DIALECT)}


def dialect_by_name(name: str) -> Dialect:
    try:
        return DIALECTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dialect {name!r}; choose from {sorted(DIALECTS)}"
        ) from None


def to_sql(node: Query | SelectCore | Expr, dialect: Dialect = DEFAULT_DIALECT) -> str:
    """Render a Query, Select/SetOp, or expression as SQL text."""
    if isinstance(node, Query):
        return _print_query(node, dialect)
    if isinstance(node, (Select, SetOp)):
        return _print_core(node, dialect)
    return print_expr(node, dialect)


def _print_query(query: Query, dialect: Dialect) -> str:
    parts: list[str] = []
    if query.ctes:
        ctes = ", ".join(
            f"{c.name} AS ({_print_query(c.query, dialect)})" for c in query.ctes
        )
        parts.append(f"WITH {ctes}")
    parts.append(_print_core(query.body, dialect))
    return " ".join(parts)


def _print_core(core: SelectCore, dialect: Dialect) -> str:
    if isinstance(core, SetOp):
        op = core.op + (" ALL" if core.all else "")
        left = _print_operand(core.left, dialect, left_side=True)
        right = _print_operand(core.right, dialect, left_side=False)
        return f"{left} {op} {right}"
    return _print_select(core, dialect)


def _print_operand(core: SelectCore, dialect: Dialect, left_side: bool) -> str:
    # Parenthesise nested set operations to preserve associativity —
    # except in dialects whose grammar forbids it (SQLite), where
    # left-nested chains print flat (the grammar is left-associative,
    # so the reading is unchanged).
    if isinstance(core, SetOp):
        if dialect.set_op_parens:
            return f"({_print_core(core, dialect)})"
        if left_side:
            return _print_core(core, dialect)
        raise ValueError(
            f"dialect {dialect.name!r} cannot express right-nested set operations"
        )
    return _print_select(core, dialect)


def _print_select(select: Select, dialect: Dialect) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_print_item(i, dialect) for i in select.items))
    if select.from_items or select.joins:
        parts.append("FROM")
        from_parts = [_print_from_item(f, dialect) for f in select.from_items]
        parts.append(", ".join(from_parts))
        for join in select.joins:
            parts.append(_print_join(join, dialect))
    if select.where is not None:
        parts.append(f"WHERE {print_expr(select.where, dialect)}")
    if select.group_by:
        parts.append(
            "GROUP BY " + ", ".join(print_expr(e, dialect) for e in select.group_by)
        )
    if select.having is not None:
        parts.append(f"HAVING {print_expr(select.having, dialect)}")
    if select.order_by:
        parts.append(
            "ORDER BY " + ", ".join(_print_order(o, dialect) for o in select.order_by)
        )
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    return " ".join(parts)


def _print_item(item: SelectItem, dialect: Dialect) -> str:
    text = print_expr(item.expr, dialect)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _print_from_item(item: FromItem, dialect: Dialect) -> str:
    if isinstance(item, DerivedTable):
        return f"({_print_query(item.query, dialect)}) AS {item.alias}"
    assert isinstance(item, TableRef)
    text = item.name
    if item.alias:
        text += f" AS {item.alias}"
    if item.hint is not None:
        rendered = dialect.render_hint(item.hint)
        if rendered is not None:
            text += f" {rendered}"
    return text


def _print_join(join: JoinClause, dialect: Dialect) -> str:
    if join.condition is None:
        return f"CROSS JOIN {_print_from_item(join.item, dialect)}"
    condition = print_expr(join.condition, dialect)
    return f"INNER JOIN {_print_from_item(join.item, dialect)} ON {condition}"


def _print_order(item: OrderItem, dialect: Dialect) -> str:
    return f"{print_expr(item.expr, dialect)} {'ASC' if item.ascending else 'DESC'}"


# --------------------------------------------------------------- expressions


def print_expr(expr: Expr, dialect: Dialect = DEFAULT_DIALECT) -> str:
    """Render one expression tree in the given dialect.

    This is the *only* expression renderer: every node's ``__str__``
    delegates here with the default dialect, so there is exactly one
    spelling per construct.  Other dialects diverge only where the
    engine's grammar requires it (boolean literals, and subqueries
    whose bodies must recurse with the dialect).  Unknown node types
    raise so a new node cannot silently print wrong in any dialect.
    """
    if isinstance(expr, Literal):
        return dialect.render_literal(expr)
    if isinstance(expr, Param):
        # Positional params print in slot order (the parser assigns
        # ordinals textually), so templates round-trip in every dialect.
        return f":{expr.name}" if expr.name else "?"
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, Comparison):
        left = print_expr(expr.left, dialect)
        right = print_expr(expr.right, dialect)
        return f"{left} {expr.op.value} {right}"
    if isinstance(expr, Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{print_expr(expr.expr, dialect)} {word} "
            f"{print_expr(expr.low, dialect)} AND {print_expr(expr.high, dialect)}"
        )
    if isinstance(expr, InList):
        word = "NOT IN" if expr.negated else "IN"
        inner = ", ".join(print_expr(i, dialect) for i in expr.items)
        return f"{print_expr(expr.expr, dialect)} {word} ({inner})"
    if isinstance(expr, And):
        return "(" + " AND ".join(print_expr(c, dialect) for c in expr.children) + ")"
    if isinstance(expr, Or):
        return "(" + " OR ".join(print_expr(c, dialect) for c in expr.children) + ")"
    if isinstance(expr, Not):
        return f"NOT ({print_expr(expr.child, dialect)})"
    if isinstance(expr, FuncCall):
        inner = ", ".join(print_expr(a, dialect) for a in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, Arith):
        left = print_expr(expr.left, dialect)
        right = print_expr(expr.right, dialect)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, IsNull):
        return f"{print_expr(expr.child, dialect)} IS NULL"
    if isinstance(expr, ScalarSubquery):
        return f"({_print_query(expr.select, dialect)})"
    if isinstance(expr, InSubquery):
        word = "NOT IN" if expr.negated else "IN"
        return f"{print_expr(expr.expr, dialect)} {word} ({_print_query(expr.select, dialect)})"
    raise TypeError(f"print_expr: unhandled expression node {type(expr).__name__}")
