"""AST -> SQL text.

Round-trips with the parser (``parse(to_sql(q))`` is structurally equal
to ``q``), which the property tests verify.  Index hints print in
MySQL's ``FORCE INDEX (name, ...)`` syntax, matching the paper's
rewrites.
"""

from __future__ import annotations

from repro.expr.nodes import Expr
from repro.sql.ast import (
    CTE,
    DerivedTable,
    FromItem,
    JoinClause,
    OrderItem,
    Query,
    Select,
    SelectCore,
    SelectItem,
    SetOp,
    TableRef,
)


def to_sql(node: Query | SelectCore | Expr) -> str:
    """Render a Query, Select/SetOp, or expression as SQL text."""
    if isinstance(node, Query):
        return _print_query(node)
    if isinstance(node, (Select, SetOp)):
        return _print_core(node)
    return str(node)


def _print_query(query: Query) -> str:
    parts: list[str] = []
    if query.ctes:
        ctes = ", ".join(f"{c.name} AS ({_print_query(c.query)})" for c in query.ctes)
        parts.append(f"WITH {ctes}")
    parts.append(_print_core(query.body))
    return " ".join(parts)


def _print_core(core: SelectCore) -> str:
    if isinstance(core, SetOp):
        op = core.op + (" ALL" if core.all else "")
        return f"{_print_operand(core.left)} {op} {_print_operand(core.right)}"
    return _print_select(core)


def _print_operand(core: SelectCore) -> str:
    # Parenthesise nested set operations to preserve associativity.
    if isinstance(core, SetOp):
        return f"({_print_core(core)})"
    return _print_select(core)


def _print_select(select: Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_print_item(i) for i in select.items))
    if select.from_items or select.joins:
        parts.append("FROM")
        from_parts = [_print_from_item(f) for f in select.from_items]
        parts.append(", ".join(from_parts))
        for join in select.joins:
            parts.append(_print_join(join))
    if select.where is not None:
        parts.append(f"WHERE {select.where}")
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(str(e) for e in select.group_by))
    if select.having is not None:
        parts.append(f"HAVING {select.having}")
    if select.order_by:
        parts.append("ORDER BY " + ", ".join(_print_order(o) for o in select.order_by))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    return " ".join(parts)


def _print_item(item: SelectItem) -> str:
    text = str(item.expr)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _print_from_item(item: FromItem) -> str:
    if isinstance(item, DerivedTable):
        return f"({_print_query(item.query)}) AS {item.alias}"
    assert isinstance(item, TableRef)
    text = item.name
    if item.alias:
        text += f" AS {item.alias}"
    if item.hint is not None:
        names = ", ".join(item.hint.index_names)
        text += f" {item.hint.kind} INDEX ({names})"
    return text


def _print_join(join: JoinClause) -> str:
    if join.condition is None:
        return f"CROSS JOIN {_print_from_item(join.item)}"
    return f"INNER JOIN {_print_from_item(join.item)} ON {join.condition}"


def _print_order(item: OrderItem) -> str:
    return f"{item.expr} {'ASC' if item.ascending else 'DESC'}"
