"""The append-only audit log and its cluster-merge helpers.

One :class:`AuditLog` holds one hash chain.  Appends chain under a
lock (linkage is inherently serial), but the serving tier never sits
on that lock per request: :class:`~repro.service.SieveServer` workers
register a *thread-local* buffer — a plain list, lock-free because it
is thread-confined and CPython list appends are atomic — and the
middleware's hot path does one ``list.append`` of a payload dict.
The same worker thread flushes its buffer into the chain after each
admission-queue batch, so chaining cost is amortized per batch, order
within a worker is preserved, and no cross-thread handoff exists
(nothing to lose under backpressure retries: a request either reached
the middleware — and recorded exactly once — or was rejected before
it).

Hot-path cost is O(1) per request by construction: the payload is
assembled from data the middleware already computed (the rewrite's
bookkeeping, the execution's counter deltas from
:mod:`repro.db.counters`) plus one digest pass over the result rows;
hashing happens at flush time.

Cluster logs (one chain per shard, chain id = shard name) merge via
:func:`merge_records`, which verifies each per-shard chain and
interleaves records deterministically by ``(chain, seq)`` —
verifiability is preserved because the merged sequence can always be
re-partitioned by chain id and re-verified (:func:`verify_merged`).
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Sequence

from repro.audit.record import (
    GENESIS_HASH,
    DecisionRecord,
    verify_chain,
)
from repro.common.errors import ChainVerificationError


class AuditLog:
    """One append-only, hash-chained decision log.

    ``counters`` (a :class:`~repro.db.counters.CounterSet`) receives
    the zero-weight ``audit_records`` / ``audit_flushes`` bookkeeping;
    the middleware binds it to its database's counters when attaching
    the log.
    """

    def __init__(self, chain_id: str = "", counters=None):
        self.chain_id = chain_id
        self.counters = counters
        self._lock = threading.Lock()
        self._records: list[DecisionRecord] = []
        self._last_hash = GENESIS_HASH
        self._local = threading.local()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def last_hash(self) -> str:
        """The chain head — hand this to ``verify_chain(head=...)`` to
        make tail truncation detectable."""
        with self._lock:
            return self._last_hash

    # ------------------------------------------------------------- recording

    def record(self, payload: Mapping[str, Any]) -> None:
        """Record one decision payload (the middleware's entry point).

        On a registered worker thread this is a single list append;
        elsewhere the payload chains immediately (a bare ``Sieve``
        without a serving tier still gets a complete log).
        """
        buffer = getattr(self._local, "buffer", None)
        if buffer is not None:
            buffer.append(payload)
        else:
            self._chain([payload])

    def register_worker(self) -> None:
        """Give the calling thread a private buffer (idempotent).
        Called by :class:`~repro.service.SieveServer` workers on entry;
        the registering thread must also be the one flushing."""
        if getattr(self._local, "buffer", None) is None:
            self._local.buffer = []

    def flush_local(self) -> int:
        """Chain the calling thread's buffered payloads; returns how
        many were flushed.  No-op (0) for unregistered threads."""
        buffer = getattr(self._local, "buffer", None)
        if not buffer:
            return 0
        # Swap before chaining so a re-entrant record() during the
        # flush (there are none today, but cheap to be safe) cannot
        # interleave into the batch being written.
        self._local.buffer = []
        self._chain(buffer)
        return len(buffer)

    def unregister_worker(self) -> int:
        """Flush any remainder and drop the thread's buffer."""
        flushed = self.flush_local()
        self._local.buffer = None
        return flushed

    def _chain(self, payloads: Sequence[Mapping[str, Any]]) -> None:
        with self._lock:
            for payload in payloads:
                record = DecisionRecord.chained(
                    chain=self.chain_id,
                    seq=len(self._records),
                    prev_hash=self._last_hash,
                    payload=payload,
                )
                self._records.append(record)
                self._last_hash = record.record_hash
            if self.counters is not None:
                self.counters.audit_records += len(payloads)
                self.counters.audit_flushes += 1

    # --------------------------------------------------------------- reading

    def records(self) -> list[DecisionRecord]:
        """A consistent copy of the chain so far (records themselves
        are frozen and shared)."""
        with self._lock:
            return list(self._records)

    def window(self, start: int = 0, end: int | None = None) -> list[DecisionRecord]:
        """A contiguous slice of the chain, for windowed replay."""
        with self._lock:
            return self._records[start:end]

    def verify(self) -> int:
        """Verify the whole chain against the live head; returns the
        record count.  Raises
        :class:`~repro.common.errors.ChainVerificationError`."""
        with self._lock:
            records = list(self._records)
            head = self._last_hash
        return verify_chain(records, chain=self.chain_id, head=head)


def merge_records(
    logs: "Mapping[str, Sequence[DecisionRecord]] | Iterable[AuditLog]",
) -> list[DecisionRecord]:
    """Merge per-shard chains into one deterministic sequence.

    Accepts either ``{chain_id: records}`` or an iterable of
    :class:`AuditLog`.  Every input chain is verified first (for live
    logs, against their heads — so a shard's tail truncation is caught
    at merge time), then records interleave ordered by
    ``(chain, seq)``.  The merge preserves verifiability: it is a
    disjoint union of intact chains, which :func:`verify_merged`
    re-partitions and re-checks.
    """
    merged: list[DecisionRecord] = []
    if isinstance(logs, Mapping):
        for chain_id, records in logs.items():
            verify_chain(list(records), chain=chain_id)
            merged.extend(records)
    else:
        for log in logs:
            log.verify()
            merged.extend(log.records())
    merged.sort(key=lambda r: (str(r.chain), r.seq))
    return merged


def verify_merged(records: Sequence[DecisionRecord]) -> int:
    """Verify a merged log: each chain id's sub-sequence must be a
    complete, intact chain (contiguous from seq 0, unbroken linkage,
    all hashes recomputing).  Returns the total records checked."""
    by_chain: dict[str, list[DecisionRecord]] = {}
    for record in records:
        by_chain.setdefault(record.chain, []).append(record)
    total = 0
    for chain_id, chain_records in by_chain.items():
        chain_records.sort(key=lambda r: r.seq)
        total += verify_chain(chain_records, chain=chain_id)
    if total != len(records):
        raise ChainVerificationError(
            f"merged log holds {len(records)} records but only {total} verified"
        )
    return total
