"""repro.audit — the audit & explainability tier.

Three pieces, layered over the middleware without touching its
enforcement semantics:

* :mod:`repro.audit.record` — :class:`DecisionRecord`, the blake2b
  hash-chained unit of evidence (querier, purpose, policy epoch,
  strategies, guards fired, rows admitted/denied, enforcement-counter
  deltas), and :func:`verify_chain`;
* :mod:`repro.audit.log` — :class:`AuditLog`, the append-only chain
  with lock-free per-worker buffers flushed by the serving tier, plus
  :func:`merge_records` / :func:`verify_merged` for per-shard cluster
  chains;
* :mod:`repro.audit.explain` — row-level decision traces built from
  the already-materialized guard structures (surfaced as
  ``Sieve.explain_denial`` / ``Sieve.explain_admission``).

Replay lives in ``tools/replay.py``: a logged window re-executes
against its pinned policy epochs
(:meth:`~repro.policy.store.PolicyStore.snapshot_at`) and must
reproduce bit-identical decisions and counters.
"""

from repro.audit.explain import (
    ConditionTrace,
    Explanation,
    GuardTrace,
    PolicyTrace,
    explain_row,
)
from repro.audit.log import AuditLog, merge_records, verify_merged
from repro.audit.record import (
    AUDIT_COUNTERS,
    GENESIS_HASH,
    DecisionRecord,
    canonical_json,
    canonicalize,
    make_payload,
    record_hash,
    result_digest,
    verify_chain,
)

__all__ = [
    "AUDIT_COUNTERS",
    "AuditLog",
    "ConditionTrace",
    "DecisionRecord",
    "Explanation",
    "GENESIS_HASH",
    "GuardTrace",
    "PolicyTrace",
    "canonical_json",
    "canonicalize",
    "explain_row",
    "make_payload",
    "merge_records",
    "record_hash",
    "result_digest",
    "verify_chain",
    "verify_merged",
]
