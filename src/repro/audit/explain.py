"""Row-level decision explanation ("why was this row denied?").

Explanations are built from the *already-materialized* guard
structures — the same :class:`~repro.core.guards.GuardedExpression`
the rewrite enforces with, fetched through the session guard cache —
so what an explanation names is exactly what the enforcement path
evaluated, not a parallel re-derivation that could drift.

For one (querier, purpose, relation, row):

* each guard's indexable condition is evaluated on the row
  (:class:`GuardTrace`);
* each policy grouped under a matching guard has its full object-
  condition conjunction evaluated (:class:`PolicyTrace`), with the
  per-condition verdicts retained — the first failing condition is
  the paper's answer to "why not";
* the row is **admitted** iff at least one policy matches (opt-out
  default-deny, Section 3.1: no applicable policies ⇒ denied).

Derived-value conditions (scalar subqueries) are evaluated through
the bundled engine when the subquery is self-contained; a correlated
or otherwise unevaluable subquery yields ``matched=None``
(*indeterminate*) and the policy conservatively does not count as
matching — the explanation says so rather than guessing.

Note the scope: explanations cover *policy admission* of a row, the
part Sieve decides.  A query's own WHERE predicates are orthogonal
filtering and are not part of "was this row denied by access
control".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.audit.record import canonicalize
from repro.common.errors import ExecutionError, ReproError
from repro.expr.eval import ExprCompiler, RowBinding
from repro.policy.model import Policy


@dataclass(frozen=True)
class ConditionTrace:
    """One object condition's verdict on the row (None = indeterminate)."""

    condition: str
    matched: bool | None


@dataclass(frozen=True)
class PolicyTrace:
    """One policy's verdict: the conjunction of its condition traces."""

    policy_id: int
    owner: Any
    matched: bool
    conditions: tuple[ConditionTrace, ...]

    @property
    def failed_conditions(self) -> tuple[ConditionTrace, ...]:
        return tuple(c for c in self.conditions if c.matched is not True)


@dataclass(frozen=True)
class GuardTrace:
    """One guard's verdict plus the policies it groups."""

    guard_key: str
    condition: str
    matched: bool
    policies: tuple[PolicyTrace, ...]


@dataclass(frozen=True)
class Explanation:
    """The full decision trace for one (querier, purpose, table, row)."""

    querier: Any
    purpose: str
    table: str
    row: Mapping[str, Any]
    admitted: bool
    reason: str
    guards: tuple[GuardTrace, ...] = ()
    policies_considered: int = 0

    @property
    def matched_policies(self) -> tuple[int, ...]:
        """Ids of the policies that admit the row (sorted)."""
        return tuple(
            sorted(
                {
                    p.policy_id
                    for g in self.guards
                    for p in g.policies
                    if p.matched
                }
            )
        )

    @property
    def matched_guards(self) -> tuple[str, ...]:
        return tuple(g.guard_key for g in self.guards if g.matched)

    def describe(self) -> str:
        """A human-readable multi-line account of the decision."""
        lines = [
            f"{'ADMITTED' if self.admitted else 'DENIED'}: querier={self.querier!r} "
            f"purpose={self.purpose!r} table={self.table!r}",
            f"  {self.reason}",
        ]
        for guard in self.guards:
            mark = "✓" if guard.matched else "✗"
            lines.append(f"  guard {mark} [{guard.guard_key}] {guard.condition}")
            for trace in guard.policies:
                pmark = "✓" if trace.matched else "✗"
                lines.append(
                    f"    policy {pmark} #{trace.policy_id} (owner={trace.owner!r})"
                )
                for cond in trace.conditions:
                    cmark = {True: "✓", False: "✗", None: "?"}[cond.matched]
                    lines.append(f"      {cmark} {cond.condition}")
        return "\n".join(lines)


def normalize_row(
    row: "Mapping[str, Any] | Sequence[Any]", columns: Sequence[str]
) -> tuple[Any, ...]:
    """Accept a row as a mapping (any key casing) or a schema-ordered
    sequence; return the schema-ordered tuple the compiled expressions
    index into."""
    if isinstance(row, Mapping):
        lowered = {str(k).lower(): v for k, v in row.items()}
        missing = [c for c in columns if c.lower() not in lowered]
        if missing:
            raise ReproError(
                f"row is missing column(s) {missing} required to explain the decision"
            )
        return tuple(lowered[c.lower()] for c in columns)
    values = tuple(row)
    if len(values) != len(columns):
        raise ReproError(
            f"row has {len(values)} values but the relation has {len(columns)} columns"
        )
    return values


def _scalar_subquery_fn(db):
    """Evaluate self-contained scalar subqueries through the engine;
    correlated ones surface as ExecutionError → indeterminate."""
    if db is None:
        return None

    def run(select, _outer_row):
        result = db.execute(select)
        if len(result.rows) != 1 or len(result.rows[0]) != 1:
            raise ExecutionError("derived value did not produce one scalar")
        return result.rows[0][0]

    return run


def explain_row(
    *,
    querier: Any,
    purpose: str,
    table: str,
    columns: Sequence[str],
    row: "Mapping[str, Any] | Sequence[Any]",
    policies: Sequence[Policy],
    expression,
    db=None,
) -> Explanation:
    """Build the decision trace (see module docstring).

    ``expression`` is the materialized
    :class:`~repro.core.guards.GuardedExpression` (None when the
    querier holds no applicable policies — the default-deny case);
    ``policies`` is the PQM-filtered policy list it was built from.
    """
    values = normalize_row(row, columns)
    row_view = {c: v for c, v in zip(columns, values)}
    if expression is None or not policies:
        return Explanation(
            querier=querier,
            purpose=purpose,
            table=table,
            row=row_view,
            admitted=False,
            reason=(
                f"default deny: querier {querier!r} holds no applicable policies "
                f"on {table!r} for purpose {purpose!r} (opt-out semantics)"
            ),
        )

    binding = RowBinding.for_table(table, list(columns))
    compiler = ExprCompiler(binding, subquery_fn=_scalar_subquery_fn(db))
    by_id = {p.id: p for p in policies}

    def eval_expr(expr) -> bool | None:
        try:
            return bool(compiler.compile(expr)(values))
        except ReproError:
            return None  # derived/correlated condition: indeterminate

    guards: list[GuardTrace] = []
    indeterminate = 0
    for i, guard in enumerate(expression.guards):
        guard_matched = eval_expr(guard.condition.to_expr()) is True
        traces: list[PolicyTrace] = []
        for pid in sorted(guard.policy_ids):
            policy = by_id.get(pid)
            if policy is None:
                continue
            cond_traces = tuple(
                ConditionTrace(condition=str(oc), matched=eval_expr(oc.to_expr()))
                for oc in policy.object_conditions
            )
            if any(c.matched is None for c in cond_traces):
                indeterminate += 1
            traces.append(
                PolicyTrace(
                    policy_id=pid,
                    owner=policy.owner,
                    matched=all(c.matched is True for c in cond_traces),
                    conditions=cond_traces,
                )
            )
        guards.append(
            GuardTrace(
                guard_key=expression.guard_key(i),
                condition=str(guard.condition),
                matched=guard_matched,
                policies=tuple(traces),
            )
        )

    matched = sorted(
        {t.policy_id for g in guards for t in g.policies if t.matched}
    )
    admitted = bool(matched)
    if admitted:
        reason = (
            f"admitted by {len(matched)} polic{'y' if len(matched) == 1 else 'ies'} "
            f"{matched} via guard(s) "
            f"{[g.guard_key for g in guards if g.matched and any(t.matched for t in g.policies)]}"
        )
    else:
        reason = (
            f"denied: none of the {len(policies)} applicable policies' object "
            f"conditions hold on this row"
        )
        if indeterminate:
            reason += (
                f" ({indeterminate} polic{'y' if indeterminate == 1 else 'ies'} "
                f"with derived conditions could not be evaluated standalone)"
            )
    return Explanation(
        querier=querier,
        purpose=purpose,
        table=table,
        row=canonicalize(row_view),
        admitted=admitted,
        reason=reason,
        guards=tuple(guards),
        policies_considered=len(policies),
    )
