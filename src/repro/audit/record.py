"""Hash-chained decision records (the audit tier's unit of evidence).

A :class:`DecisionRecord` captures everything needed to re-check one
enforcement decision after the fact: who asked (querier, purpose),
what they asked (the SQL text), against which corpus version (the
policy epoch pinned by the request's
:class:`~repro.policy.store.PolicySnapshot`), what the middleware
decided (strategy per relation, guards materialized, Δ guard set,
denied relations), and what came out (rows admitted/denied, a digest
of the result rows, and the enforcement-counter deltas charged by the
execution).

Records form an append-only blake2b hash chain: record *i* carries
``prev_hash`` = record *i-1*'s ``record_hash``, and ``record_hash``
covers the chain id, sequence number, ``prev_hash`` and the canonical
JSON of the decision payload.  :func:`verify_chain` therefore detects
any single-record tamper, reorder, insertion, or interior truncation;
tail truncation is detected when the caller supplies the live log's
``head`` hash (an append-only file alone cannot know its own end —
the head pointer lives with the :class:`~repro.audit.log.AuditLog`).

The payload is canonical JSON (sorted keys, no whitespace) so hashing
is byte-stable across processes and a record round-trips losslessly
through :meth:`DecisionRecord.to_dict` / :meth:`DecisionRecord.from_dict`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.common.errors import ChainVerificationError

#: Hash of the empty chain — what the first record's ``prev_hash`` is.
GENESIS_HASH = "0" * 32

#: Counters whose per-request deltas a record captures.  Exactly the
#: enforcement/execution set the differential suites compare (see
#: ``tests/test_cluster_differential.py``); the serving tiers'
#: bookkeeping counters — including ``audit_*`` itself — are excluded
#: so audited and unaudited runs record identical deltas.
AUDIT_COUNTERS = (
    "pages_sequential",
    "pages_random",
    "pages_bitmap",
    "tuples_scanned",
    "tuples_output",
    "predicate_evals",
    "policy_evals",
    "index_node_visits",
    "udf_invocations",
    "udf_policy_evals",
    "backend_queries",
    "backend_rows",
)


def canonicalize(value: Any) -> Any:
    """Normalize a payload value to the canonical JSON-stable form.

    Tuples/sets become sorted-where-unordered lists, mapping keys
    become strings (JSON object keys always are), and non-JSON scalars
    fall back to ``str`` — so ``from_dict(to_dict(r)) == r`` holds and
    hashing never depends on Python-side container types.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted((canonicalize(v) for v in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    return str(value)


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Byte-stable serialization used for hashing and persistence."""
    return json.dumps(
        canonicalize(payload), sort_keys=True, separators=(",", ":"), default=str
    )


def result_digest(rows: Iterable[Sequence[Any]]) -> str:
    """Order-insensitive digest of a result's rows.

    Row order is engine- and plan-dependent (the differential suites
    compare ``sorted(rows)`` for the same reason), so the digest sorts
    first — replay on a different engine mode must still match.
    """
    digest = hashlib.blake2b(digest_size=16)
    for row in sorted(rows, key=repr):
        digest.update(repr(row).encode())
        digest.update(b"\x1e")  # record separator: no row-boundary ambiguity
    return digest.hexdigest()


def record_hash(chain: str, seq: int, prev_hash: str, payload: Mapping[str, Any]) -> str:
    """The chained hash: covers position (chain, seq), linkage
    (prev_hash) and content (canonical payload JSON)."""
    message = canonical_json(
        {"chain": chain, "seq": seq, "prev_hash": prev_hash, "payload": payload}
    )
    return hashlib.blake2b(message.encode(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class DecisionRecord:
    """One enforcement decision, chained to its predecessor.

    ``payload`` is the canonicalized decision content (see
    :func:`make_payload` for the schema); ``seq``/``chain``/
    ``prev_hash``/``record_hash`` are the chain envelope.  Frozen:
    records are evidence, not working state.
    """

    seq: int
    chain: str
    prev_hash: str
    record_hash: str
    payload: Mapping[str, Any]

    # Convenience accessors over the payload schema.
    @property
    def querier(self) -> Any:
        return self.payload["querier"]

    @property
    def purpose(self) -> str:
        return self.payload["purpose"]

    @property
    def sql(self) -> str:
        return self.payload["sql"]

    @property
    def policy_epoch(self) -> int:
        return self.payload["policy_epoch"]

    @property
    def engine(self) -> str:
        return self.payload["engine"]

    @property
    def rows_admitted(self) -> int:
        return self.payload["rows_admitted"]

    @property
    def rows_denied(self) -> int:
        return self.payload["rows_denied"]

    @property
    def counters(self) -> Mapping[str, int]:
        return self.payload["counters"]

    @property
    def denied_tables(self) -> Sequence[str]:
        return self.payload["denied_tables"]

    def decision_view(self, include_counters: bool = True) -> dict[str, Any]:
        """The replay-comparable part of the payload (everything; minus
        the counter deltas when the caller cannot hold them fixed).
        The trace id is always dropped: it names one live execution,
        so a (bit-identical) replay necessarily produces a different
        one."""
        view = dict(self.payload)
        view.pop("trace_id", None)
        if not include_counters:
            view.pop("counters", None)
        return view

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "chain": self.chain,
            "prev_hash": self.prev_hash,
            "record_hash": self.record_hash,
            "payload": canonicalize(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DecisionRecord":
        return cls(
            seq=int(data["seq"]),
            chain=data["chain"],
            prev_hash=data["prev_hash"],
            record_hash=data["record_hash"],
            payload=canonicalize(data["payload"]),
        )

    @classmethod
    def chained(
        cls, chain: str, seq: int, prev_hash: str, payload: Mapping[str, Any]
    ) -> "DecisionRecord":
        """Build a record with its hash computed over the canonical
        payload (the only constructor the log uses)."""
        canonical = canonicalize(payload)
        return cls(
            seq=seq,
            chain=chain,
            prev_hash=prev_hash,
            record_hash=record_hash(chain, seq, prev_hash, canonical),
            payload=canonical,
        )


def make_payload(
    *,
    querier: Any,
    purpose: str,
    sql: str,
    policy_epoch: int,
    engine: str,
    strategies: Mapping[str, Any],
    guards_fired: Mapping[str, Sequence[str]],
    delta_guards: Mapping[str, Sequence[int]],
    denied_tables: Sequence[str],
    rows_admitted: int,
    rows_denied: int,
    digest: str,
    counters: Mapping[str, int],
    trace_id: str = "",
) -> dict[str, Any]:
    """Assemble the canonical decision payload.

    ``strategies`` maps relation → strategy name; ``guards_fired``
    maps relation → the guard keys materialized into the rewrite;
    ``delta_guards`` maps relation → guard indexes routed through the
    Δ UDF.  ``rows_denied`` is the execution's scanned-minus-output
    tuple count — the engine-level measure of what enforcement
    filtered (0 for backend executions, whose scans happen off-engine).
    ``trace_id`` correlates the record with the observability tier's
    span tree for the same execution ("" when tracing is off); it is
    excluded from :meth:`DecisionRecord.decision_view` so replay
    comparisons ignore it.
    """
    return canonicalize(
        {
            "querier": querier,
            "purpose": purpose,
            "sql": sql,
            "policy_epoch": policy_epoch,
            "engine": engine,
            "strategies": strategies,
            "guards_fired": guards_fired,
            "delta_guards": delta_guards,
            "denied_tables": sorted(denied_tables),
            "rows_admitted": rows_admitted,
            "rows_denied": rows_denied,
            "result_digest": digest,
            "counters": {name: int(counters.get(name, 0)) for name in AUDIT_COUNTERS},
            "trace_id": trace_id,
        }
    )


def verify_chain(
    records: Sequence[DecisionRecord],
    chain: str | None = None,
    head: str | None = None,
) -> int:
    """Verify an entire chain; returns the number of records checked.

    Checks, in order: every record belongs to the expected chain,
    sequence numbers are contiguous from 0, ``prev_hash`` linkage is
    intact starting at :data:`GENESIS_HASH`, every ``record_hash``
    recomputes from its content, and — when ``head`` is given (the
    live log's last hash) — the final record is the head.  Raises
    :class:`~repro.common.errors.ChainVerificationError` on the first
    violation.
    """
    if chain is None and records:
        chain = records[0].chain
    prev = GENESIS_HASH
    for index, record in enumerate(records):
        if record.chain != chain:
            raise ChainVerificationError(
                f"record {index} belongs to chain {record.chain!r}, expected {chain!r}"
            )
        if record.seq != index:
            raise ChainVerificationError(
                f"chain {chain!r}: record at position {index} carries seq "
                f"{record.seq} (reorder or truncation)"
            )
        if record.prev_hash != prev:
            raise ChainVerificationError(
                f"chain {chain!r}: record {index} links to {record.prev_hash[:8]}…, "
                f"expected {prev[:8]}… (broken linkage)"
            )
        expected = record_hash(record.chain, record.seq, record.prev_hash, record.payload)
        if record.record_hash != expected:
            raise ChainVerificationError(
                f"chain {chain!r}: record {index} hash mismatch (content tampered)"
            )
        prev = record.record_hash
    if head is not None and prev != head:
        raise ChainVerificationError(
            f"chain {chain!r}: head is {prev[:8]}…, log attests {head[:8]}… "
            f"(tail truncation)"
        )
    return len(records)
