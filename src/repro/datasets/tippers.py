"""The TIPPERS-style smart-campus dataset (paper Section 7.1).

The real dataset is three months of WiFi association logs from the 64
APs of the UCI CS building: 3.9M events from 36,436 devices.  It is
not redistributable, so this module generates a synthetic equivalent
that preserves the properties the evaluation depends on:

* the schema of paper Table 2 (Users, User_Groups,
  User_Group_Membership, Location, WiFi_Dataset);
* the profile mix observed by the authors' classification —
  visitors 87.3%, staff 2.8%, faculty 1.1%, undergrad 4.9%,
  grad 3.9% (31,796 / 1,029 / 388 / 1,795 / 1,428 of 36,436);
* affinity structure: each non-visitor device gravitates to one
  building region (the paper derives 56 groups, ~108 devices each);
* occupancy skew: events cluster in profile-typical hours and in the
  device's affinity region, so histograms (and therefore guard
  cardinalities) are non-uniform exactly where policies are.

Scale is configurable; benchmarks run at laptop scale and EXPERIMENTS
documents the ratios.  TIME is minutes-since-midnight, DATE is a day
index from the capture start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.rng import make_rng
from repro.db.database import Database
from repro.policy.groups import GroupDirectory
from repro.storage.schema import ColumnType, Schema

PROFILES = ("visitor", "staff", "faculty", "undergrad", "grad")

# Fractions from the paper's device classification (Section 7.1).
PROFILE_FRACTIONS = {
    "visitor": 31796 / 36436,
    "staff": 1029 / 36436,
    "faculty": 388 / 36436,
    "undergrad": 1795 / 36436,
    "grad": 1428 / 36436,
}

# Typical presence windows per profile, minutes since midnight.
PROFILE_HOURS = {
    "visitor": (600, 960),  # 10:00-16:00
    "staff": (480, 1020),  # 08:00-17:00
    "faculty": (540, 1080),  # 09:00-18:00
    "undergrad": (480, 1200),  # 08:00-20:00
    "grad": (540, 1320),  # 09:00-22:00
}

# Probability a device shows up in the building on a given day.
PROFILE_ACTIVITY = {
    "visitor": 0.04,  # "rarely connect ... less than 5% of the days"
    "staff": 0.85,
    "faculty": 0.7,
    "undergrad": 0.6,
    "grad": 0.8,
}

ROOM_TYPES_BY_PROFILE = {
    "staff": "office",
    "faculty": "office",
    "undergrad": "classroom",
    "grad": "lab",
    "visitor": "common",
}


@dataclass
class TippersConfig:
    """Knobs for the synthetic campus. Defaults are laptop-scale."""

    seed: int = 7
    n_aps: int = 64
    n_devices: int = 600
    days: int = 30
    events_per_active_day: int = 8
    n_regions: int = 14  # regions group APs; affinity groups form per region
    page_size: int = 256
    personality: str = "mysql"

    @property
    def aps_per_region(self) -> int:
        return max(1, self.n_aps // self.n_regions)


@dataclass
class TippersDataset:
    """The generated database plus the metadata generators need."""

    db: Database
    config: TippersConfig
    groups: GroupDirectory
    profiles: dict[int, str]  # device id -> profile
    affinity_region: dict[int, int]  # device id -> region index
    region_aps: list[list[int]]  # region index -> AP ids
    event_count: int = 0

    @property
    def devices(self) -> list[int]:
        return sorted(self.profiles)

    def devices_with_profile(self, profile: str) -> list[int]:
        return [d for d, p in self.profiles.items() if p == profile]

    def group_of(self, device: int) -> str:
        return f"region-{self.affinity_region[device]}"


WIFI_TABLE = "WiFi_Dataset"


def _profile_of(index: int, n_devices: int) -> str:
    """Deterministic profile assignment matching the paper's fractions."""
    cumulative = 0.0
    position = (index + 0.5) / n_devices
    for profile in PROFILES:
        cumulative += PROFILE_FRACTIONS[profile]
        if position <= cumulative:
            return profile
    return PROFILES[-1]


def generate_tippers(config: TippersConfig | None = None, db: Database | None = None) -> TippersDataset:
    """Build the campus database: schema, rows, indexes, statistics."""
    config = config or TippersConfig()
    if db is None:
        from repro.db.database import connect

        db = connect(config.personality, page_size=config.page_size)

    rng = make_rng(config.seed, "tippers")

    # ----- building model: regions own APs; rooms only matter as types
    ap_ids = list(range(config.n_aps))
    region_aps: list[list[int]] = [[] for _ in range(config.n_regions)]
    for ap in ap_ids:
        region_aps[ap % config.n_regions].append(ap)

    # ----- devices, profiles, affinities
    profiles: dict[int, str] = {}
    affinity: dict[int, int] = {}
    order = list(range(config.n_devices))
    rng.shuffle(order)
    for rank, device in enumerate(order):
        profiles[device] = _profile_of(rank, config.n_devices)
    for device in range(config.n_devices):
        affinity[device] = rng.randrange(config.n_regions)

    # ----- groups: one affinity group per region plus profile groups
    groups = GroupDirectory()
    for region in range(config.n_regions):
        groups.add_group(f"region-{region}")
    for profile in PROFILES:
        groups.add_group(f"profile-{profile}")
    groups.add_group("students")
    for device in range(config.n_devices):
        groups.add_member(f"region-{affinity[device]}", device)
        groups.add_member(f"profile-{profiles[device]}", device)
        if profiles[device] in ("undergrad", "grad"):
            groups.add_member("students", device)

    # ----- schema (paper Table 2)
    db.create_table(
        "Users",
        Schema.of(
            ("id", ColumnType.INT),
            ("device", ColumnType.VARCHAR),
            ("office", ColumnType.INT),
        ),
    )
    db.create_table(
        "Location",
        Schema.of(
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("type", ColumnType.VARCHAR),
        ),
    )
    db.create_table(
        WIFI_TABLE,
        Schema.of(
            ("id", ColumnType.INT),
            ("wifiAP", ColumnType.INT),
            ("owner", ColumnType.INT),
            ("ts_time", ColumnType.TIME),
            ("ts_date", ColumnType.DATE),
        ),
        page_size=config.page_size,
    )

    for device in range(config.n_devices):
        db.insert_row("Users", (device, f"device-{device:05d}", affinity[device]))
    for ap in ap_ids:
        room_type = rng.choice(("office", "classroom", "lab", "common"))
        db.insert_row("Location", (ap, f"room-{ap:03d}", room_type))

    # ----- connectivity events
    raw_events: list[tuple[int, int, int, int]] = []  # (day, minute, ap, device)
    for device in range(config.n_devices):
        profile = profiles[device]
        lo, hi = PROFILE_HOURS[profile]
        activity = PROFILE_ACTIVITY[profile]
        home_aps = region_aps[affinity[device]]
        for day in range(config.days):
            if rng.random() >= activity:
                continue
            n_events = max(1, round(rng.gauss(config.events_per_active_day, 2)))
            arrival = rng.randrange(lo, max(lo + 1, hi - 60))
            minute = arrival
            for _ in range(n_events):
                if rng.random() < 0.8:
                    ap = rng.choice(home_aps)
                else:
                    ap = rng.randrange(config.n_aps)
                raw_events.append((day, minute % 1440, ap, device))
                minute += max(1, round(rng.gauss(45, 20)))
                if minute >= hi:
                    break
    # Logs arrive in capture order: time-sorted, ids monotone with time.
    # Dates/times end up heap-correlated (clustered), owners scattered —
    # exactly the layout of the real AP logs the paper evaluates on.
    raw_events.sort(key=lambda e: (e[0], e[1]))
    wifi_rows = [
        (event_id, ap, device, minute, day)
        for event_id, (day, minute, ap, device) in enumerate(raw_events)
    ]
    event_id = len(wifi_rows)
    db.insert(WIFI_TABLE, wifi_rows)

    # ----- indexes the paper assumes (owner always; plus the usual ones)
    for column in ("owner", "wifiAP", "ts_time", "ts_date"):
        db.create_index(WIFI_TABLE, column)
    db.create_index("Users", "id")

    groups.install(db)
    db.analyze()

    return TippersDataset(
        db=db,
        config=config,
        groups=groups,
        profiles=profiles,
        affinity_region=affinity,
        region_aps=region_aps,
        event_count=event_id,
    )
