"""Profile-based policy generation for the campus (paper Section 7.1).

The paper, following Lin et al.'s mobile-privacy profiles, splits users
into *unconcerned* (adopt the administrator's defaults) and *advanced*
(define their own fine-grained policies): 20% unconcerned, 18%
advanced, and the remaining 62% situational users treated as 2/3
unconcerned, 1/3 advanced — i.e. ≈61.3% / 38.7% overall.

Defaults for an unconcerned user ``u`` (two policies):

1. data captured during working hours is visible to ``group(u)``
   (the affinity group);
2. data at any time is visible to users who share both ``u``'s group
   and profile (modelled as an intersection pseudo-group).

An advanced user defines ~40 policies (paper: "on average 40") across
the control dimensions available: target querier (specific user, the
affinity group, a profile group, or a designated frequent querier such
as a professor), purpose, time-of-day windows, date ranges and
AP/location constraints.

Designated queriers guarantee benchmark queriers accumulate policy
corpora of the sizes Experiments 1-5 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.rng import make_rng
from repro.datasets.tippers import PROFILES, TippersDataset, WIFI_TABLE
from repro.policy.model import ObjectCondition, Policy

PURPOSES = (
    "analytics",
    "attendance",
    "safety",
    "social",
    "commercial",
    "convenience",
)

WORK_START, WORK_END = 480, 1080  # 08:00 - 18:00


@dataclass
class PolicyGenConfig:
    seed: int = 11
    unconcerned_fraction: float = 0.20
    advanced_fraction: float = 0.18
    # The situational rest splits 2/3 unconcerned, 1/3 advanced (Sec 2.1).
    advanced_policies_mean: int = 40
    advanced_policies_spread: int = 12
    designated_queriers_per_profile: int = 5
    designated_policy_share: float = 0.35


@dataclass
class CampusPolicies:
    policies: list[Policy]
    designated_queriers: dict[str, list[int]]  # profile -> device ids
    user_kind: dict[int, str]  # device -> "unconcerned" | "advanced"

    def policies_of_querier(self, querier: Any) -> list[Policy]:
        return [p for p in self.policies if p.querier == querier]


def _user_kind(rng, config: PolicyGenConfig) -> str:
    roll = rng.random()
    if roll < config.unconcerned_fraction:
        return "unconcerned"
    if roll < config.unconcerned_fraction + config.advanced_fraction:
        return "advanced"
    # situational: 2/3 unconcerned, 1/3 advanced
    return "unconcerned" if rng.random() < 2 / 3 else "advanced"


def generate_campus_policies(
    dataset: TippersDataset, config: PolicyGenConfig | None = None
) -> CampusPolicies:
    """Generate the synthetic policy corpus over a TIPPERS dataset."""
    config = config or PolicyGenConfig()
    rng = make_rng(config.seed, "campus-policies")
    groups = dataset.groups

    designated: dict[str, list[int]] = {}
    for profile in ("faculty", "staff", "grad", "undergrad"):
        candidates = dataset.devices_with_profile(profile)
        rng.shuffle(candidates)
        designated[profile] = candidates[: config.designated_queriers_per_profile]
    designated_flat = [d for ds in designated.values() for d in ds]

    policies: list[Policy] = []
    user_kind: dict[int, str] = {}

    for device in dataset.devices:
        kind = _user_kind(rng, config)
        user_kind[device] = kind
        region_group = dataset.group_of(device)
        profile = dataset.profiles[device]
        profile_group = f"profile-{profile}"

        if kind == "unconcerned":
            # Default 1: working hours, affinity group.
            policies.append(
                Policy(
                    owner=device,
                    querier=region_group,
                    purpose="any",
                    table=WIFI_TABLE,
                    object_conditions=(
                        ObjectCondition("owner", "=", device),
                        ObjectCondition("ts_time", ">=", WORK_START, "<=", WORK_END),
                    ),
                )
            )
            # Default 2: any time, group-and-profile intersection.
            intersection = f"{region_group}&{profile_group}"
            if intersection not in groups:
                members = groups.members_of(region_group) & groups.members_of(
                    profile_group
                )
                groups.add_members(intersection, members)
            policies.append(
                Policy(
                    owner=device,
                    querier=intersection,
                    purpose="any",
                    table=WIFI_TABLE,
                    object_conditions=(ObjectCondition("owner", "=", device),),
                )
            )
            continue

        # Advanced user: ~40 policies over the control dimensions.
        n = max(4, round(rng.gauss(config.advanced_policies_mean, config.advanced_policies_spread)))
        peers = [d for d in groups.members_of(region_group) if d != device]
        for _ in range(n):
            roll = rng.random()
            if roll < config.designated_policy_share and designated_flat:
                querier: Any = rng.choice(designated_flat)
            elif roll < config.designated_policy_share + 0.25 and peers:
                querier = rng.choice(peers)
            elif roll < config.designated_policy_share + 0.50:
                querier = region_group
            else:
                querier = profile_group
            purpose = rng.choice(PURPOSES)
            conditions: list[ObjectCondition] = [ObjectCondition("owner", "=", device)]
            dims = rng.randrange(1, 3)  # 1-2 extra conditions (paper: 2/policy)
            chosen = rng.sample(("time", "date", "ap"), dims)
            if "time" in chosen:
                start = rng.randrange(WORK_START - 120, WORK_END)
                duration = rng.randrange(30, 240)
                conditions.append(
                    ObjectCondition(
                        "ts_time", ">=", start, "<=", min(1439, start + duration)
                    )
                )
            if "date" in chosen:
                start_day = rng.randrange(0, max(1, dataset.config.days - 5))
                span = rng.randrange(3, max(4, dataset.config.days // 2))
                conditions.append(
                    ObjectCondition(
                        "ts_date",
                        ">=",
                        start_day,
                        "<=",
                        min(dataset.config.days - 1, start_day + span),
                    )
                )
            if "ap" in chosen:
                home_aps = dataset.region_aps[dataset.affinity_region[device]]
                if rng.random() < 0.7:
                    conditions.append(
                        ObjectCondition("wifiAP", "=", rng.choice(home_aps))
                    )
                else:
                    k = min(len(home_aps), rng.randrange(2, 5))
                    conditions.append(
                        ObjectCondition("wifiAP", "IN", sorted(rng.sample(home_aps, k)))
                    )
            policies.append(
                Policy(
                    owner=device,
                    querier=querier,
                    purpose=purpose,
                    table=WIFI_TABLE,
                    object_conditions=tuple(conditions),
                )
            )

    return CampusPolicies(
        policies=policies,
        designated_queriers=designated,
        user_kind=user_kind,
    )
