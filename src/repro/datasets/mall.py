"""The Mall dataset (paper Section 7.1, Experiment 5).

A synthetic shopping mall: shops of six types, customers whose
trajectories produce WiFi connectivity events, and per-customer
policies aimed at *shops as queriers*:

* **regular** customers allow the shops they visit most to see their
  location during opening hours;
* **irregular** customers allow shop *types* access only during sales
  periods (date ranges);
* customers with a declared interest additionally allow shops of that
  category for short windows (lightning sales).

The paper's instance: 1.7M events, 2,651 devices, 35 shops, 19,364
policies (~551 per shop).  Scale is configurable; Experiment 5 needs
≥1,200 policies for 5 shops, which the defaults comfortably provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.rng import make_rng
from repro.db.database import Database, connect
from repro.policy.groups import GroupDirectory
from repro.policy.model import ObjectCondition, Policy
from repro.storage.schema import ColumnType, Schema

SHOP_TYPES = ("arcade", "movies", "clothing", "food", "electronics", "sports")

CONNECTIVITY_TABLE = "WiFi_Connectivity"

OPEN_START, OPEN_END = 600, 1320  # 10:00 - 22:00


@dataclass
class MallConfig:
    seed: int = 13
    n_shops: int = 35
    n_customers: int = 800
    days: int = 30
    events_per_visit: int = 6
    regular_fraction: float = 0.45
    interest_fraction: float = 0.5
    page_size: int = 256
    personality: str = "postgres"  # Experiment 5 runs on PostgreSQL


@dataclass
class MallDataset:
    db: Database
    config: MallConfig
    groups: GroupDirectory
    shop_types: dict[int, str]  # shop id -> type
    customer_kind: dict[int, str]  # customer -> "regular" | "irregular"
    favorite_shops: dict[int, list[int]]
    policies: list[Policy]
    event_count: int = 0

    @property
    def shops(self) -> list[int]:
        return sorted(self.shop_types)

    def shop_querier(self, shop: int) -> str:
        return f"shop-{shop}"

    def policies_of_shop(self, shop: int) -> list[Policy]:
        querier = self.shop_querier(shop)
        type_group = f"type-{self.shop_types[shop]}"
        return [p for p in self.policies if p.querier in (querier, type_group)]


def generate_mall(config: MallConfig | None = None, db: Database | None = None) -> MallDataset:
    """Build the mall database, events, and the policy corpus."""
    config = config or MallConfig()
    if db is None:
        db = connect(config.personality, page_size=config.page_size)
    rng = make_rng(config.seed, "mall")

    shop_types = {shop: SHOP_TYPES[shop % len(SHOP_TYPES)] for shop in range(config.n_shops)}

    db.create_table(
        "Users",
        Schema.of(
            ("id", ColumnType.INT),
            ("device", ColumnType.VARCHAR),
            ("interest", ColumnType.VARCHAR),
        ),
    )
    db.create_table(
        "Shop",
        Schema.of(
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("type", ColumnType.VARCHAR),
        ),
    )
    db.create_table(
        CONNECTIVITY_TABLE,
        Schema.of(
            ("id", ColumnType.INT),
            ("shop_id", ColumnType.INT),
            ("owner", ColumnType.INT),
            ("ts_time", ColumnType.TIME),
            ("ts_date", ColumnType.DATE),
        ),
        page_size=config.page_size,
    )
    for shop, stype in shop_types.items():
        db.insert_row("Shop", (shop, f"shop-{shop:03d}", stype))

    # Shops-as-queriers also form type groups, so a policy can target a
    # whole shop category.
    groups = GroupDirectory()
    for stype in SHOP_TYPES:
        groups.add_group(f"type-{stype}")
    for shop, stype in shop_types.items():
        groups.add_member(f"type-{stype}", f"shop-{shop}")

    customer_kind: dict[int, str] = {}
    favorites: dict[int, list[int]] = {}
    interests: dict[int, str | None] = {}
    raw_events: list[tuple[int, int, int, int]] = []  # (day, minute, shop, customer)
    for customer in range(config.n_customers):
        regular = rng.random() < config.regular_fraction
        customer_kind[customer] = "regular" if regular else "irregular"
        n_favorites = rng.randrange(2, 5) if regular else rng.randrange(1, 3)
        favorites[customer] = sorted(rng.sample(range(config.n_shops), n_favorites))
        interests[customer] = (
            rng.choice(SHOP_TYPES) if rng.random() < config.interest_fraction else None
        )
        db.insert_row(
            "Users",
            (customer, f"cust-{customer:05d}", interests[customer] or ""),
        )
        visit_prob = 0.5 if regular else 0.12
        for day in range(config.days):
            if rng.random() >= visit_prob:
                continue
            minute = rng.randrange(OPEN_START, OPEN_END - 60)
            for _ in range(max(1, round(rng.gauss(config.events_per_visit, 2)))):
                if rng.random() < 0.7:
                    shop = rng.choice(favorites[customer])
                else:
                    shop = rng.randrange(config.n_shops)
                raw_events.append((day, minute % 1440, shop, customer))
                minute += max(1, round(rng.gauss(25, 10)))
                if minute >= OPEN_END:
                    break
    # Sensor logs arrive time-ordered (see tippers.py for rationale).
    raw_events.sort(key=lambda e: (e[0], e[1]))
    events = [
        (event_id, shop, customer, minute, day)
        for event_id, (day, minute, shop, customer) in enumerate(raw_events)
    ]
    event_id = len(events)
    db.insert(CONNECTIVITY_TABLE, events)
    for column in ("owner", "shop_id", "ts_time", "ts_date"):
        db.create_index(CONNECTIVITY_TABLE, column)
    # Group members here are shop identifiers (strings), so the SQL-side
    # membership tables (which key users by int id) are not installed.
    db.analyze()

    # ----- policies
    policies: list[Policy] = []
    sales_periods = [
        (start, min(config.days - 1, start + rng.randrange(2, 5)))
        for start in rng.sample(range(max(1, config.days - 4)), min(6, max(1, config.days - 4)))
    ]
    for customer in range(config.n_customers):
        if customer_kind[customer] == "regular":
            for shop in favorites[customer]:
                policies.append(
                    Policy(
                        owner=customer,
                        querier=f"shop-{shop}",
                        purpose="any",
                        table=CONNECTIVITY_TABLE,
                        object_conditions=(
                            ObjectCondition("owner", "=", customer),
                            ObjectCondition("ts_time", ">=", OPEN_START, "<=", OPEN_END),
                        ),
                    )
                )
        else:
            stype = shop_types[rng.choice(favorites[customer])]
            for d1, d2 in rng.sample(sales_periods, min(2, len(sales_periods))):
                policies.append(
                    Policy(
                        owner=customer,
                        querier=f"type-{stype}",
                        purpose="any",
                        table=CONNECTIVITY_TABLE,
                        object_conditions=(
                            ObjectCondition("owner", "=", customer),
                            ObjectCondition("ts_date", ">=", d1, "<=", d2),
                        ),
                    )
                )
        interest = interests[customer]
        if interest is not None:
            start = rng.randrange(OPEN_START, OPEN_END - 120)
            policies.append(
                Policy(
                    owner=customer,
                    querier=f"type-{interest}",
                    purpose="any",
                    table=CONNECTIVITY_TABLE,
                    object_conditions=(
                        ObjectCondition("owner", "=", customer),
                        ObjectCondition("ts_time", ">=", start, "<=", start + 120),
                        ObjectCondition(
                            "ts_date",
                            ">=",
                            rng.randrange(0, max(1, config.days - 3)),
                            "<=",
                            config.days - 1,
                        ),
                    ),
                )
            )

    return MallDataset(
        db=db,
        config=config,
        groups=groups,
        shop_types=shop_types,
        customer_kind=customer_kind,
        favorite_shops=favorites,
        policies=policies,
        event_count=event_id,
    )
