"""Query workloads: the SmartBench-derived templates (paper Section 7.1).

* **Q1** — devices connected at a list of locations during a period
  (location surveillance);
* **Q2** — events for a list of device MACs during a period (device
  surveillance);
* **Q3** — devices from a user group seen at a location/time (join with
  User_Group_Membership; analytics).

Each template is generated at three selectivity classes (low / mid /
high) by widening the location list, device list, and time/date
windows, mirroring how the paper varies "configuration parameters
(locations, users, time periods)".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.datasets.tippers import TippersDataset, WIFI_TABLE
from repro.policy.groups import MEMBERSHIP_TABLE


class Selectivity(enum.Enum):
    LOW = "low"
    MID = "mid"
    HIGH = "high"


# (n_aps, n_devices, time window minutes, date window days) per class.
_CLASS_PARAMS = {
    Selectivity.LOW: (2, 4, 90, 5),
    Selectivity.MID: (6, 16, 240, 12),
    Selectivity.HIGH: (16, 48, 600, 30),
}


@dataclass
class GeneratedQuery:
    sql: str
    template: str  # "Q1" | "Q2" | "Q3"
    selectivity: Selectivity


class QueryWorkload:
    """Deterministic query generator over a TIPPERS dataset."""

    def __init__(self, dataset: TippersDataset, seed: int = 23):
        self.dataset = dataset
        self.rng = make_rng(seed, "workload")

    # ------------------------------------------------------------ templates

    def q1(self, selectivity: Selectivity) -> GeneratedQuery:
        """Devices connected for a list of locations during a period."""
        n_aps, _, t_window, d_window = _CLASS_PARAMS[selectivity]
        aps = sorted(self.rng.sample(range(self.dataset.config.n_aps), n_aps))
        t1, t2, d1, d2 = self._windows(t_window, d_window)
        sql = (
            f"SELECT * FROM {WIFI_TABLE} AS W "
            f"WHERE W.wifiAP IN ({', '.join(map(str, aps))}) "
            f"AND W.ts_time BETWEEN {t1} AND {t2} "
            f"AND W.ts_date BETWEEN {d1} AND {d2}"
        )
        return GeneratedQuery(sql, "Q1", selectivity)

    def q2(self, selectivity: Selectivity) -> GeneratedQuery:
        """Events of a list of devices during a period."""
        _, n_devices, t_window, d_window = _CLASS_PARAMS[selectivity]
        devices = sorted(
            self.rng.sample(self.dataset.devices, min(n_devices, len(self.dataset.devices)))
        )
        t1, t2, d1, d2 = self._windows(t_window, d_window)
        sql = (
            f"SELECT * FROM {WIFI_TABLE} AS W "
            f"WHERE W.owner IN ({', '.join(map(str, devices))}) "
            f"AND W.ts_time BETWEEN {t1} AND {t2} "
            f"AND W.ts_date BETWEEN {d1} AND {d2}"
        )
        return GeneratedQuery(sql, "Q2", selectivity)

    def q3(self, selectivity: Selectivity) -> GeneratedQuery:
        """Count devices of a user group seen in a period (join)."""
        _, _, t_window, d_window = _CLASS_PARAMS[selectivity]
        group = self.rng.choice(
            [g for g in self.dataset.groups.group_names() if str(g).startswith("region-")]
        )
        gid = self.dataset.groups.group_id(group)
        t1, t2, d1, d2 = self._windows(t_window, d_window)
        sql = (
            f"SELECT count(*) AS devices FROM {WIFI_TABLE} AS W, {MEMBERSHIP_TABLE} AS UG "
            f"WHERE UG.user_group_id = {gid} AND UG.user_id = W.owner "
            f"AND W.ts_time BETWEEN {t1} AND {t2} "
            f"AND W.ts_date BETWEEN {d1} AND {d2}"
        )
        return GeneratedQuery(sql, "Q3", selectivity)

    def _windows(self, t_window: int, d_window: int) -> tuple[int, int, int, int]:
        t1 = self.rng.randrange(420, max(421, 1380 - t_window))
        t2 = min(1439, t1 + t_window)
        days = self.dataset.config.days
        d1 = self.rng.randrange(0, max(1, days - d_window))
        d2 = min(days - 1, d1 + d_window)
        return t1, t2, d1, d2

    # --------------------------------------------------------------- suites

    def generate(self, template: str, selectivity: Selectivity, count: int = 1) -> list[GeneratedQuery]:
        fn = {"Q1": self.q1, "Q2": self.q2, "Q3": self.q3}[template.upper()]
        return [fn(selectivity) for _ in range(count)]

    def full_suite(self, per_cell: int = 1) -> list[GeneratedQuery]:
        """Every (template × selectivity) combination."""
        out: list[GeneratedQuery] = []
        for template in ("Q1", "Q2", "Q3"):
            for selectivity in Selectivity:
                out.extend(self.generate(template, selectivity, per_cell))
        return out
