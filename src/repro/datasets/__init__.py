"""Synthetic datasets reproducing the paper's evaluation inputs.

* :mod:`tippers` — WiFi connectivity logs of a smart campus building
  (64 APs, device profiles, affinity groups), Section 7.1.
* :mod:`mall`    — WiFi connectivity in a shopping mall (35 shops,
  regular/irregular customers), Section 7.1.
* :mod:`policies` — the profile-based policy generator (unconcerned vs
  advanced users, Lin et al. profile split).
* :mod:`workload` — the SmartBench-derived query templates Q1/Q2/Q3 at
  three selectivity classes.
"""

from repro.datasets.tippers import TippersConfig, TippersDataset, generate_tippers
from repro.datasets.mall import MallConfig, MallDataset, generate_mall
from repro.datasets.policies import PolicyGenConfig, generate_campus_policies
from repro.datasets.workload import QueryWorkload, Selectivity

__all__ = [
    "TippersConfig",
    "TippersDataset",
    "generate_tippers",
    "MallConfig",
    "MallDataset",
    "generate_mall",
    "PolicyGenConfig",
    "generate_campus_policies",
    "QueryWorkload",
    "Selectivity",
]
