"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the middleware boundary.
"""


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class CatalogError(ReproError):
    """Schema/catalog problems: unknown table, duplicate column, etc."""


class ParseError(ReproError):
    """SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """The optimizer could not produce a plan (bad hint, unknown index...)."""


class ExecutionError(ReproError):
    """Runtime failure inside the execution engine."""


class PolicyError(ReproError):
    """Malformed access-control policy or policy-store inconsistency."""


class SieveError(ReproError):
    """Failures specific to the Sieve middleware layer."""


class AuditError(SieveError):
    """Failures of the audit tier (:mod:`repro.audit`): malformed
    records, replay against a non-retained policy epoch, etc."""


class ChainVerificationError(AuditError):
    """A hash-chained decision log failed verification.

    Raised by ``verify_chain`` when a record was tampered with,
    reordered, dropped, or the chain head does not match — the log can
    no longer attest to the decisions it claims were made.
    """


class ServiceError(SieveError):
    """Failures of the concurrent serving tier (:mod:`repro.service`)."""


class ServiceOverloadedError(ServiceError):
    """Admission rejected: the server's bounded queue is full.

    Backpressure, not a bug — the caller should retry later or shed
    load.  Rejections are counted in ``counters.service_rejections``.
    """


class ServiceStoppedError(ServiceError):
    """The request cannot run because the server is not accepting work
    (never started, stopping, or already stopped)."""


class ClusterError(ServiceError):
    """Failures of the sharded cluster tier (:mod:`repro.cluster`)."""


class ShardUnavailableError(ClusterError):
    """The shard owning this querier is down (failed or removed).

    Explicit backpressure, like
    :class:`ServiceOverloadedError`: the coordinator refuses the
    request immediately instead of queueing it against a dead shard —
    callers should retry after the cluster is rebalanced or the shard
    restored.  Counted in ``counters.cluster_unavailable``.
    """
