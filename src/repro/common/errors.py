"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the middleware boundary.
"""


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class CatalogError(ReproError):
    """Schema/catalog problems: unknown table, duplicate column, etc."""


class ParseError(ReproError):
    """SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """The optimizer could not produce a plan (bad hint, unknown index...)."""


class ExecutionError(ReproError):
    """Runtime failure inside the execution engine."""


class PolicyError(ReproError):
    """Malformed access-control policy or policy-store inconsistency."""


class SieveError(ReproError):
    """Failures specific to the Sieve middleware layer."""


class AuditError(SieveError):
    """Failures of the audit tier (:mod:`repro.audit`): malformed
    records, replay against a non-retained policy epoch, etc."""


class ChainVerificationError(AuditError):
    """A hash-chained decision log failed verification.

    Raised by ``verify_chain`` when a record was tampered with,
    reordered, dropped, or the chain head does not match — the log can
    no longer attest to the decisions it claims were made.
    """


class ServiceError(SieveError):
    """Failures of the concurrent serving tier (:mod:`repro.service`)."""


class ServiceOverloadedError(ServiceError):
    """Admission rejected: the server's bounded queue is full.

    Backpressure, not a bug — the caller should retry later or shed
    load.  Rejections are counted in ``counters.service_rejections``.
    """


class ServiceStoppedError(ServiceError):
    """The request cannot run because the server is not accepting work
    (never started, stopping, or already stopped)."""


class DeadlineExceededError(ServiceError):
    """The request's deadline passed before a result was produced.

    Deadlines are absolute (stamped at admission, carried on the
    :class:`~repro.service.admission.ServiceRequest` and propagated
    coordinator → admission queue → shard worker), so every tier can
    refuse work that can no longer be answered in time: a worker drops
    an expired queued request instead of executing it, and the
    coordinator's resilient wait converts an exhausted wait into this
    error instead of blocking forever.  Always a *typed* failure —
    under faults a caller receives either a correct answer or an error
    of this hierarchy, never a silent partial answer.  Counted in
    ``counters.service_deadline_timeouts`` (worker-side drops) and
    ``counters.cluster_deadline_timeouts`` (coordinator-side waits).
    """


class WorkerCrashedError(ServiceError):
    """Internal control signal: a worker thread died mid-batch.

    Raised inside :meth:`SieveServer._serve_batch
    <repro.service.server.SieveServer>` by the fault injector (or by
    genuinely broken worker code) and caught by the worker loop's
    crash barrier, which fails the batch's unresolved futures with
    :class:`ShardUnavailableError` — callers never see this type, only
    the typed unavailability it maps to.
    """


class ClusterError(ServiceError):
    """Failures of the sharded cluster tier (:mod:`repro.cluster`)."""


class ShardUnavailableError(ClusterError):
    """The shard owning this querier is down (failed or removed).

    Explicit backpressure, like
    :class:`ServiceOverloadedError`: the coordinator refuses the
    request immediately instead of queueing it against a dead shard —
    callers should retry after the cluster is rebalanced or the shard
    restored.  Counted in ``counters.cluster_unavailable``.
    """


class PolicyScatterError(ClusterError):
    """A two-phase policy scatter aborted before its commit point.

    Raised by the coordinator when the *prepare* phase finds an owning
    shard that cannot apply the write (crashed, stopped, relay
    detached) or when a fault fires during prepare.  The base store is
    untouched — aborting is atomic: **no** shard observed the write,
    so partitions can never be left on mixed policy epochs.  Callers
    should repair the cluster (``supervise()``) and retry the write.
    Counted in ``counters.cluster_scatter_aborts``.
    """
