"""Closed-interval arithmetic over orderable values.

Guard-candidate generation (paper Section 4.1) reasons about object
conditions as value ranges: whether two ranges overlap, what their
intersection and union span are, and how wide each is.  Intervals are
closed on both ends, matching the paper's ``[val1, val2]`` notation;
open endpoints produced by ``<``/``>`` comparisons are handled by the
caller nudging the endpoint (see ``ObjectCondition.interval``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` over any consistently orderable type."""

    lo: Any
    hi: Any

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lower bound {self.lo!r} > upper bound {self.hi!r}")

    def contains(self, value: Any) -> bool:
        """Return True when ``lo <= value <= hi``."""
        return self.lo <= value <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Return True when the two closed intervals share at least a point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping sub-interval, or None when disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (the merge used for guards)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def covers(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely within this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo}, {self.hi}]"
