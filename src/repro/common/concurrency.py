"""Thread-coordination primitives for the concurrent serving tier.

The stdlib ships neither a readers-writer lock nor a single-flight
helper, and the service layer (:mod:`repro.service`) needs exactly
those two:

* :class:`RWLock` — many concurrent readers, one exclusive writer.
  The write side is *reentrant* (the owning thread may re-acquire it,
  and may also take the read side), because
  :meth:`PolicyStore.update <repro.policy.store.PolicyStore.update>`
  is implemented as delete + insert and both halves take the write
  lock.  Writers are preferred: once a writer is waiting, new readers
  queue behind it, so a steady stream of queries cannot starve policy
  mutations.
* :class:`SingleFlight` — de-duplicates concurrent builds of the same
  key: the first caller (the *leader*) runs the builder, every
  concurrent caller for the same key blocks and receives the leader's
  result (or exception).  The shared guard cache uses this so N
  simultaneous queries by one querier trigger exactly one guard
  generation.

Both primitives are GIL-agnostic: they rely only on
:mod:`threading` condition variables, never on the atomicity of
bytecode.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class RWLock:
    """A writer-preferring readers-writer lock with a reentrant write side."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # owning thread ident
        self._write_depth = 0
        self._writers_waiting = 0

    # ---------------------------------------------------------------- read

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Write ownership implies read permission (reentrant).
                self._write_depth += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # --------------------------------------------------------------- write

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> bool:
        """Release one write hold; returns True when the outermost hold
        was released (i.e. the lock is now free for other threads)."""
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by non-owning thread")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()
                return True
            return False

    def write_depth(self) -> int:
        """The calling thread's write-hold depth (0 when not owner)."""
        with self._cond:
            if self._writer == threading.get_ident():
                return self._write_depth
            return 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class _Flight:
    """One in-progress build shared by a leader and its followers."""

    __slots__ = ("event", "result", "exception")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.exception: BaseException | None = None


class SingleFlight:
    """Keyed de-duplication of concurrent function calls.

    ``do(key, fn)`` returns ``(result, leader)``: the leader actually
    ran ``fn``; followers waited and share its outcome.  A failing
    leader propagates its exception to every follower, and the key is
    cleared either way so the next call retries fresh.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Any, _Flight] = {}

    def do(self, key: Any, fn: Callable[[], Any]) -> tuple[Any, bool]:
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            if flight.exception is not None:
                raise flight.exception
            return flight.result, False
        try:
            flight.result = fn()
        except BaseException as exc:
            flight.exception = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
        return flight.result, True

    def in_flight(self) -> int:
        """Number of builds currently running (introspection/tests)."""
        with self._lock:
            return len(self._flights)
