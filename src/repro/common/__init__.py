"""Shared utilities: error types, interval arithmetic, deterministic RNG."""

from repro.common.errors import (
    ReproError,
    CatalogError,
    ParseError,
    PlanError,
    ExecutionError,
    PolicyError,
    SieveError,
)
from repro.common.intervals import Interval
from repro.common.rng import make_rng

__all__ = [
    "ReproError",
    "CatalogError",
    "ParseError",
    "PlanError",
    "ExecutionError",
    "PolicyError",
    "SieveError",
    "Interval",
    "make_rng",
]
