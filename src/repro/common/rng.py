"""Deterministic random number generation.

All synthetic data in the repo (datasets, policies, workloads) flows
through seeded :class:`random.Random` instances so every experiment is
reproducible run-to-run.  ``make_rng`` derives independent streams from
a base seed and a stream label, so adding a new consumer never perturbs
the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Return a ``random.Random`` seeded from ``(seed, stream)``.

    The stream label is hashed so that distinct labels yield decorrelated
    generators even for adjacent integer seeds.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
