"""Seeded, replayable fault plans.

A :class:`FaultPlan` is a *pure function of its seed*: two processes
calling :meth:`FaultPlan.random` with the same seed and shape
parameters build byte-identical plans (the generator draws from
:func:`repro.common.rng.make_rng` streams, never from global
state or wall clock).  That makes every chaos run replayable — a
failing seed from CI reproduces locally with no recorded trace.

Faults are keyed by *ordinals*, not timestamps:

* **Request faults** fire when the coordinator admits its Nth request
  (``ordinal``).  Kinds: ``drop`` (the worker silently discards the
  request — its future never resolves, modelling a lost reply),
  ``duplicate`` (the worker executes it twice, modelling duplicated
  delivery — safe to expose because queries are read-only),
  ``delay`` / ``hang`` (the worker sleeps before serving — ``hang`` is
  just a delay long enough to trip deadlines), ``crash_worker`` (the
  serving worker thread dies mid-batch), and ``backend_error`` (the
  execution backend fails the statement).
* **Shard faults** fire *before* routing the Nth request: ``crash``
  (process death — server killed, partition relay detached),
  ``slow`` (injected per-request latency), ``drop_relay`` (the
  policy-event relay silently detaches while serving stays up: the
  exact stale-partition hazard the epoch fence exists to catch).
* **Scatter faults** fire during the Nth *policy write*, at a chosen
  phase of the two-phase scatter: ``phase="prepare"`` aborts the write
  before the commit point (atomic rollback), ``phase="commit"``
  crashes the target shard just before the base-store write, so the
  crashed shard genuinely misses the event.
* **Clock skew** offsets one shard's monotonic clock, so its workers
  judge deadlines early or late relative to the coordinator.

Ordinal keying keeps plans deterministic under the thread-pool
serving tier: the coordinator assigns ordinals under its own lock and
stamps them onto requests, so worker interleaving cannot change which
request a fault hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import make_rng

REQUEST_FAULT_KINDS = (
    "drop",
    "duplicate",
    "delay",
    "hang",
    "crash_worker",
    "backend_error",
)
SHARD_FAULT_KINDS = ("crash", "slow", "drop_relay")
SCATTER_PHASES = ("prepare", "commit")


@dataclass(frozen=True)
class RequestFault:
    """A fault pinned to the coordinator's ``ordinal``-th request."""

    ordinal: int
    kind: str  # one of REQUEST_FAULT_KINDS
    delay_s: float = 0.0  # used by "delay" / "hang"


@dataclass(frozen=True)
class ShardFault:
    """A shard-level fault applied just before routing request ``ordinal``."""

    ordinal: int
    shard: int  # index into the cluster's sorted shard names
    kind: str  # one of SHARD_FAULT_KINDS
    delay_s: float = 0.0  # used by "slow"


@dataclass(frozen=True)
class ScatterFault:
    """A fault fired during the ``write``-th policy scatter.

    ``phase="prepare"`` forces an abort (the write rolls back, no
    shard observes it); ``phase="commit"`` crashes shard ``shard``
    immediately before the base-store commit point, so that shard
    misses the write and must be fenced out until rebuilt.
    """

    write: int
    phase: str  # one of SCATTER_PHASES
    shard: int  # index into sorted shard names (ignored for "prepare")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of which faults fire and when."""

    seed: int
    request_faults: tuple[RequestFault, ...] = ()
    shard_faults: tuple[ShardFault, ...] = ()
    scatter_faults: tuple[ScatterFault, ...] = ()
    clock_skew_s: tuple[tuple[int, float], ...] = ()  # (shard index, skew)
    hang_s: float = 0.25  # how long a "hang" sleeps (≫ chaos deadlines)

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        n_requests: int,
        n_shards: int,
        n_writes: int = 0,
        request_fault_rate: float = 0.15,
        shard_fault_rate: float = 0.04,
        scatter_fault_rate: float = 0.3,
        skew_rate: float = 0.25,
        max_delay_s: float = 0.01,
        hang_s: float = 0.25,
    ) -> "FaultPlan":
        """Draw a randomized plan — deterministic in ``seed`` and shape.

        Rates are per-opportunity probabilities: each of the
        ``n_requests`` request slots draws a request fault with
        ``request_fault_rate`` and a shard fault with
        ``shard_fault_rate``; each of the ``n_writes`` policy writes
        draws a scatter fault with ``scatter_fault_rate``; each shard
        draws a clock skew with ``skew_rate``.
        """
        rng = make_rng(seed, "fault-plan")
        request_faults = []
        shard_faults = []
        for ordinal in range(n_requests):
            if rng.random() < request_fault_rate:
                kind = rng.choice(REQUEST_FAULT_KINDS)
                delay = 0.0
                if kind == "delay":
                    delay = rng.uniform(0.0, max_delay_s)
                elif kind == "hang":
                    delay = hang_s
                request_faults.append(RequestFault(ordinal, kind, delay))
            if n_shards and rng.random() < shard_fault_rate:
                kind = rng.choice(SHARD_FAULT_KINDS)
                delay = rng.uniform(0.0, max_delay_s) if kind == "slow" else 0.0
                shard_faults.append(
                    ShardFault(ordinal, rng.randrange(n_shards), kind, delay)
                )
        scatter_faults = []
        for write in range(n_writes):
            if rng.random() < scatter_fault_rate:
                phase = rng.choice(SCATTER_PHASES)
                scatter_faults.append(
                    ScatterFault(write, phase, rng.randrange(max(1, n_shards)))
                )
        skews = []
        for shard in range(n_shards):
            if rng.random() < skew_rate:
                skews.append((shard, rng.uniform(-0.005, 0.005)))
        return cls(
            seed=seed,
            request_faults=tuple(request_faults),
            shard_faults=tuple(shard_faults),
            scatter_faults=tuple(scatter_faults),
            clock_skew_s=tuple(skews),
            hang_s=hang_s,
        )

    @property
    def total_faults(self) -> int:
        return (
            len(self.request_faults)
            + len(self.shard_faults)
            + len(self.scatter_faults)
        )

    def describe(self) -> str:
        """One-line summary used by chaos reports and test diagnostics."""
        kinds: dict[str, int] = {}
        for f in self.request_faults:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        for sf in self.shard_faults:
            kinds[sf.kind] = kinds.get(sf.kind, 0) + 1
        for sc in self.scatter_faults:
            key = f"scatter_{sc.phase}"
            kinds[key] = kinds.get(key, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return (
            f"plan(seed={self.seed}, faults={self.total_faults}"
            + (f", {parts}" if parts else "")
            + (f", skewed_shards={len(self.clock_skew_s)}" if self.clock_skew_s else "")
            + ")"
        )
