"""Deterministic fault injection for the cluster/serving tiers.

Sieve is access-control middleware: a partial failure that drops a
guard or serves a stale policy partition is not a latency blip, it is
a data leak.  This package makes partial failure a *first-class,
reproducible input*: a seeded :class:`FaultPlan` describes exactly
which faults fire and when (shard crash / hang / slow, request drop /
duplicate, policy-write failure at a chosen point in the two-phase
scatter, clock skew), and a :class:`FaultInjector` actuates the plan
through hooks threaded into the coordinator
(:mod:`repro.cluster.coordinator`), the serving tier
(:mod:`repro.service`), and the SQLite backend
(:mod:`repro.backend.sqlite`).

Because plans are pure functions of their seed
(:meth:`FaultPlan.random`), every chaos run is replayable: the chaos
differential suite (``tests/test_chaos_differential.py``) sweeps
hundreds of seeds and asserts the fail-closed contract — every
answered query is row-identical to the fault-free oracle and every
unanswered one fails with a typed
:class:`~repro.common.errors.ReproError`, never a silent partial
answer.

The shared chaos harness lives in :mod:`repro.faults.chaos`
(imported directly, not re-exported here: it pulls in the whole
cluster tier, which plain plan/injector consumers don't need).
"""

from repro.faults.plan import (
    FaultPlan,
    RequestFault,
    ScatterFault,
    ShardFault,
)
from repro.faults.injector import FaultInjector, ServeAction

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "RequestFault",
    "ScatterFault",
    "ServeAction",
    "ShardFault",
]
