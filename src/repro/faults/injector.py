"""Actuates a :class:`~repro.faults.plan.FaultPlan` through tier hooks.

One :class:`FaultInjector` is shared by a cluster and all its shards.
The *coordinator* drives the request clock: every admission calls
:meth:`next_request` under the coordinator's routing path, which
assigns the request its ordinal, returns the shard faults due at that
ordinal (the coordinator applies them — crash/slow/drop_relay — before
routing), and stamps the ordinal onto the
:class:`~repro.service.admission.ServiceRequest` as ``fault_tag``.
Workers later look their request's fault up by tag
(:meth:`serve_action`), so thread interleaving in the serving tier can
never change which request a fault hits.

Policy writes drive a separate write clock (:meth:`next_write` /
:meth:`scatter_fault`), consulted by the coordinator's two-phase
scatter at each phase.

Every fault that actually fires is recorded (:attr:`fired`, plus the
``faults_injected`` counter on the coordinator's database), so chaos
reports can show what a run exercised rather than what the plan merely
contained.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.faults.plan import FaultPlan, RequestFault, ScatterFault, ShardFault


@dataclass(frozen=True)
class ServeAction:
    """What a worker should do to the request it is about to serve."""

    kind: str  # RequestFault kind
    delay_s: float = 0.0


class FaultInjector:
    """Thread-safe actuator for one :class:`FaultPlan`.

    The injector is passive bookkeeping: it never touches the cluster
    itself.  Hooks *ask* it what is due and apply the answer in their
    own tier, which keeps the blast radius of each fault exactly where
    a real failure of that component would land.
    """

    def __init__(self, plan: FaultPlan, counters=None):
        self.plan = plan
        self.counters = counters  # CounterSet of the coordinator's db, optional
        self._lock = threading.Lock()
        self._request_clock = 0
        self._write_clock = 0
        self._request_faults: dict[int, RequestFault] = {
            f.ordinal: f for f in plan.request_faults
        }
        self._shard_faults: dict[int, list[ShardFault]] = {}
        for sf in plan.shard_faults:
            self._shard_faults.setdefault(sf.ordinal, []).append(sf)
        self._scatter_faults: dict[tuple[int, str], list[ScatterFault]] = {}
        for sc in plan.scatter_faults:
            self._scatter_faults.setdefault((sc.write, sc.phase), []).append(sc)
        self._skew: dict[int, float] = dict(plan.clock_skew_s)
        self.fired: dict[str, int] = {}

    # ------------------------------------------------------------------
    # clocks (driven by the coordinator)

    def next_request(self) -> tuple[int, list[ShardFault]]:
        """Advance the request clock; return (ordinal, due shard faults)."""
        with self._lock:
            ordinal = self._request_clock
            self._request_clock += 1
        return ordinal, self._shard_faults.get(ordinal, [])

    def next_write(self) -> int:
        """Advance the policy-write clock; return the write ordinal."""
        with self._lock:
            ordinal = self._write_clock
            self._write_clock += 1
        return ordinal

    # ------------------------------------------------------------------
    # lookups (consumed by hooks in each tier)

    def serve_action(self, fault_tag: int | None) -> ServeAction | None:
        """The request fault due for ``fault_tag``, recorded as fired.

        Called by a shard worker immediately before serving a request;
        returns ``None`` for untagged requests (no injector upstream)
        or tags with no fault scheduled.
        """
        if fault_tag is None:
            return None
        fault = self._request_faults.get(fault_tag)
        if fault is None:
            return None
        self.record(fault.kind)
        return ServeAction(kind=fault.kind, delay_s=fault.delay_s)

    def scatter_fault(self, write: int, phase: str) -> ScatterFault | None:
        """The scatter fault due for policy write ``write`` at ``phase``."""
        faults = self._scatter_faults.get((write, phase))
        if not faults:
            return None
        self.record(f"scatter_{phase}")
        return faults[0]

    def skew_s(self, shard_index: int) -> float:
        """Clock skew for the shard at ``shard_index`` (0.0 if none)."""
        return self._skew.get(shard_index, 0.0)

    # ------------------------------------------------------------------
    # accounting

    def record(self, kind: str) -> None:
        """Count a fault that actually fired (plan entries may never
        trigger if the run ends early or the target shard is gone)."""
        with self._lock:
            self.fired[kind] = self.fired.get(kind, 0) + 1
            # faults_injected is ticked only here, so this lock is the
            # counter's writer serialization too.
            if self.counters is not None:
                self.counters.faults_injected += 1

    @property
    def fired_total(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def summary(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self.fired.items()))
