"""The chaos differential: randomized fault plans vs a fault-free oracle.

:func:`run_chaos_plan` is the harness shared by the test suite
(``tests/test_chaos_differential.py``), the report tool
(``tools/chaos_report.py``), and the fault bench
(``benchmarks/bench_faults.py``).  One run builds a compact Sieve
world, computes a fault-free oracle answer for every measured
(querier, query) pair, then drives a 3-shard cluster through a mix of
queries and policy-churn writes while a seeded
:class:`~repro.faults.FaultPlan` fires crashes, hangs, lost replies,
relay failures, and mid-scatter faults at it.  The contract under
judgment:

* every **answered** query is row-identical to the fault-free oracle
  (sorted rows — shard/backends may order differently);
* every **unanswered** query failed with a *typed* error
  (``DeadlineExceededError``, ``ShardUnavailableError``,
  ``PolicyScatterError``, ...) — never a hang, never an untyped crash;
* after the faults stop and the supervisor heals the cluster, every
  measured pair converges back to the oracle.

Policy churn deliberately targets queriers *outside* the measured set,
so the oracle stays valid for the whole run: a correct cluster answers
measured queries identically no matter how the churn interleaves.
That is also what gives the suite teeth — with ``fence_gate=False``
(the deliberately reintroduced naive one-phase scatter) a detached
relay serves stale policy and the row-identity check MUST flag it
(:func:`mixed_epoch_divergence` stages exactly that bug).

Any mismatch or untyped exception lands in
:attr:`ChaosResult.divergences`; an empty list is the pass verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any

from repro.cluster import RetryPolicy, SieveCluster
from repro.common.errors import (
    DeadlineExceededError,
    ExecutionError,
    PolicyScatterError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ShardUnavailableError,
)
from repro.common.rng import make_rng
from repro.core import Sieve
from repro.db.database import connect
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.policy import GroupDirectory, ObjectCondition, Policy, PolicyStore
from repro.storage.schema import ColumnType, Schema

TABLE = "WiFi_Dataset"
PURPOSE = "analytics"
N_OWNERS = 6
#: Queriers whose answers are measured against the oracle.
MEASURED_QUERIERS = ("Prof.A", "Prof.B", "Prof.C", "Prof.D")
#: Queriers the churn writes target — never queried, so churn cannot
#: legitimately change a measured answer.
CHURN_QUERIERS = ("Aud.X", "Aud.Y")
QUERIES = (
    f"SELECT * FROM {TABLE}",
    f"SELECT * FROM {TABLE} WHERE ts_date BETWEEN 1 AND 8",
    f"SELECT * FROM {TABLE} WHERE wifiAP = 1201",
)

#: The full vocabulary of errors a chaos run may legitimately answer
#: with — anything else is a divergence.
TYPED_ERRORS = (
    DeadlineExceededError,
    ShardUnavailableError,
    PolicyScatterError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ExecutionError,
)

N_SHARDS = 3
WORKERS_PER_SHARD = 2
#: Bounded attempts for post-heal convergence: late-ordinal planned
#: faults may still fire on the first convergence queries, and each
#: failed attempt gets a supervisor pass before the next.
CONVERGE_ATTEMPTS = 12


@dataclass
class ChaosResult:
    """Outcome of one seeded chaos run (one plan, one cluster)."""

    seed: int
    plan_summary: str
    queries: int = 0
    answered: int = 0
    unanswered: dict[str, int] = dataclass_field(default_factory=dict)
    writes_committed: int = 0
    writes_aborted: int = 0
    rebuilds: int = 0
    faults_fired: dict[str, int] = dataclass_field(default_factory=dict)
    divergences: list[str] = dataclass_field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def row(self) -> list[Any]:
        """Markdown-table row for ``tools/chaos_report.py``."""
        return [
            self.seed,
            self.queries,
            self.answered,
            sum(self.unanswered.values()),
            self.writes_committed,
            self.writes_aborted,
            sum(self.faults_fired.values()),
            self.rebuilds,
            "ok" if self.ok else f"DIVERGED×{len(self.divergences)}",
        ]


def build_world(n_rows: int = 180):
    """A compact wifi world: measured queriers hold interval policies,
    churn queriers start empty.  Returns ``(db, store, grant)`` where
    ``grant(querier, owner, id)`` mints a policy for churn writes."""
    db = connect("mysql")
    db.create_table(
        TABLE,
        Schema.of(
            ("id", ColumnType.INT),
            ("wifiAP", ColumnType.INT),
            ("owner", ColumnType.INT),
            ("ts_time", ColumnType.TIME),
            ("ts_date", ColumnType.DATE),
        ),
    )
    db.insert(
        TABLE,
        [
            (i, 1200 + i % 5, i % N_OWNERS, 7 * 60 + (i * 11) % 720, i % 12)
            for i in range(n_rows)
        ],
    )
    for column in ("owner", "ts_date"):
        db.create_index(TABLE, column)
    db.analyze()
    store = PolicyStore(db, GroupDirectory())

    def grant(querier: Any, owner: int, policy_id: int) -> Policy:
        return Policy(
            owner=owner,
            querier=querier,
            purpose=PURPOSE,
            table=TABLE,
            object_conditions=(
                ObjectCondition("owner", "=", owner),
                ObjectCondition("ts_time", ">=", 8 * 60, "<=", 16 * 60),
            ),
            id=policy_id,
        )

    next_id = 0
    for i, querier in enumerate(MEASURED_QUERIERS):
        for owner in range(N_OWNERS):
            if (owner + i) % 2 == 0:
                next_id += 1
                store.insert(grant(querier, owner, next_id))
    return db, store, grant


def fault_free_oracle(db, store) -> dict[tuple[Any, str], list[Any]]:
    """Sorted rows per measured (querier, query) from one single-node,
    fault-free Sieve — the ground truth every answer is held to."""
    sieve = Sieve(db, store)
    return {
        (querier, sql): sorted(sieve.execute(sql, querier, PURPOSE).rows)
        for querier in MEASURED_QUERIERS
        for sql in QUERIES
    }


def run_chaos_plan(
    seed: int,
    *,
    n_ops: int = 40,
    fence_gate: bool = True,
    deadline_s: float = 0.25,
    supervise_every: int = 7,
    hang_s: float = 0.05,
) -> ChaosResult:
    """One full chaos run for ``seed``; see the module docstring for
    the invariants judged.  Deterministic in ``seed`` up to thread
    timing: the plan, the op sequence, and the retry jitter all draw
    from seeded streams, so a failing seed replays."""
    db, store, grant = build_world()
    oracle = fault_free_oracle(db, store)
    plan = FaultPlan.random(
        seed,
        n_requests=n_ops,
        n_shards=N_SHARDS,
        n_writes=max(1, n_ops // 4),
        hang_s=hang_s,
    )
    injector = FaultInjector(plan)
    result = ChaosResult(seed=seed, plan_summary=plan.describe())
    retry = RetryPolicy(
        max_attempts=2,
        base_backoff_s=0.001,
        max_backoff_s=0.01,
        hedge_delay_s=0.02,
        seed=seed,
    )
    rng = make_rng(seed, "chaos-ops")
    churn_ids: list[int] = []
    next_churn_id = 10_000

    def check(querier: Any, sql: str, rows: list[Any]) -> None:
        if sorted(rows) != oracle[(querier, sql)]:
            result.divergences.append(
                f"rows diverged for {querier!r} on {sql!r} "
                f"(got {len(rows)}, oracle {len(oracle[(querier, sql)])})"
            )

    with SieveCluster.replicated(
        db,
        store,
        n_shards=N_SHARDS,
        workers_per_shard=WORKERS_PER_SHARD,
        retry_policy=retry,
        fault_injector=injector,
        fence_gate=fence_gate,
    ) as cluster:
        for step in range(n_ops):
            if rng.random() < 0.2:  # policy churn write
                try:
                    if churn_ids and rng.random() < 0.4:
                        cluster.delete_policy(churn_ids.pop())
                    else:
                        churn = grant(
                            rng.choice(CHURN_QUERIERS),
                            rng.randrange(N_OWNERS),
                            next_churn_id,
                        )
                        cluster.insert_policy(churn)
                        churn_ids.append(next_churn_id)
                        next_churn_id += 1
                    result.writes_committed += 1
                except PolicyScatterError:
                    result.writes_aborted += 1
            else:  # measured query
                querier = rng.choice(MEASURED_QUERIERS)
                sql = rng.choice(QUERIES)
                result.queries += 1
                try:
                    rows = cluster.execute(
                        sql, querier, PURPOSE, deadline_s=deadline_s
                    ).rows
                except TYPED_ERRORS as exc:
                    name = type(exc).__name__
                    result.unanswered[name] = result.unanswered.get(name, 0) + 1
                except Exception as exc:  # noqa: BLE001 — the verdict itself
                    result.divergences.append(
                        f"untyped {type(exc).__name__} for {querier!r}: {exc}"
                    )
                else:
                    result.answered += 1
                    check(querier, sql, rows)
            if step % supervise_every == supervise_every - 1:
                result.rebuilds += len(cluster.supervise())
        # Post-heal convergence: once the supervisor has rebuilt the
        # damage, every measured pair must answer, identically.  Late
        # planned faults can still hit the first attempts, so each
        # pair gets a bounded retry budget with healing in between.
        for (querier, sql), _expected in oracle.items():
            for attempt in range(CONVERGE_ATTEMPTS):
                result.rebuilds += len(cluster.supervise())
                try:
                    rows = cluster.execute(
                        sql, querier, PURPOSE, deadline_s=1.0
                    ).rows
                except TYPED_ERRORS:
                    continue
                check(querier, sql, rows)
                break
            else:
                result.divergences.append(
                    f"no convergence for {querier!r} on {sql!r} after "
                    f"{CONVERGE_ATTEMPTS} healed attempts"
                )
    result.faults_fired = injector.summary()
    return result


def mixed_epoch_divergence() -> tuple[bool, bool]:
    """Stage the mixed-epoch bug the fence gate exists to prevent, and
    report whether the differential catches it.

    With ``fence_gate=False`` (naive one-phase scatter) a shard whose
    policy relay has silently died keeps serving while a policy
    *delete* commits under it — it answers from the stale epoch with
    rows the current policy no longer allows.  Returns
    ``(naive_diverged, fenced_refused)``:

    * ``naive_diverged`` — the gate-off run produced rows differing
      from the post-delete oracle (the teeth: this MUST be True, or
      the chaos suite could not catch a real fencing regression);
    * ``fenced_refused`` — the same scenario under the fence gate
      raised :class:`~repro.common.errors.PolicyScatterError` at
      prepare, leaving answers correct (this MUST also be True).
    """
    stale_querier = MEASURED_QUERIERS[0]
    sql = QUERIES[0]

    def stage(fence_gate: bool) -> tuple[bool, bool]:
        db, store, _ = build_world()
        with SieveCluster.replicated(
            db, store, n_shards=N_SHARDS, workers_per_shard=1,
            fence_gate=fence_gate,
        ) as cluster:
            owner = cluster.route(stale_querier)
            victim = store.policies_for(stale_querier, PURPOSE)[0].id
            # Warm the owner's guard cache at the pre-delete epoch —
            # the staleness hazard is an epoch-validated cache entry
            # outliving the frozen partition epoch, so a cold shard
            # would (coincidentally) rebuild a correct snapshot.
            cluster.execute(sql, stale_querier, PURPOSE, timeout=10.0)
            cluster.drop_relay(owner)  # the relay dies silently
            refused = False
            try:
                cluster.delete_policy(victim)
            except PolicyScatterError:
                refused = True
            rows = sorted(
                cluster.execute(sql, stale_querier, PURPOSE, timeout=10.0).rows
            )
            oracle = sorted(
                Sieve(db, store).execute(sql, stale_querier, PURPOSE).rows
            )
            return rows != oracle, refused

    naive_diverged, naive_refused = stage(fence_gate=False)
    fenced_diverged, fenced_refused = stage(fence_gate=True)
    return naive_diverged and not naive_refused, fenced_refused and not fenced_diverged
