"""The Backend ABC: the contract an external execution engine adapts to.

A backend owns a live connection to a real DBMS and exposes the five
operations the middleware needs — DDL mirroring, bulk loading, index
creation, UDF registration, and query execution — plus the
:meth:`Backend.ship` template method that mirrors an entire bundled
:class:`~repro.db.database.Database` into the engine (schema, rows,
indexes, UDFs).  Subclasses declare the :class:`~repro.sql.printer.Dialect`
their engine parses; the middleware prints rewrites in that dialect and
otherwise never special-cases the engine.

Backends deliberately mirror a *snapshot*: writes applied to the
bundled database after :meth:`ship` are not propagated automatically.
Call :meth:`refresh` (all tables or one) after mutating the source of
truth — the differential tests do exactly this around Section 6
regeneration scenarios.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable, Sequence

from repro.engine.executor import QueryResult
from repro.sql.printer import Dialect
from repro.storage.schema import Schema


class Backend(abc.ABC):
    """Adapter for running Sieve's rewritten SQL on a real engine."""

    #: How this engine spells hints/literals; subclasses override.
    dialect: Dialect
    #: The :class:`~repro.db.personality.Personality` that shapes
    #: strategy choice and rewrite structure for this engine (None =
    #: inherit the bundled database's).
    personality = None
    name: str = "backend"

    # ------------------------------------------------------------------ DDL

    @abc.abstractmethod
    def create_table(self, name: str, schema: Schema) -> None:
        """Create ``name`` with the bundled schema's columns/types."""

    @abc.abstractmethod
    def drop_table(self, name: str) -> None:
        """Drop ``name`` if it exists (used by :meth:`refresh`)."""

    @abc.abstractmethod
    def create_index(self, table: str, column: str, name: str | None = None) -> None:
        """Create an index over one column, named to match the bundled
        catalog so printed ``INDEXED BY`` hints resolve."""

    # ------------------------------------------------------------------ DML

    @abc.abstractmethod
    def bulk_load(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Insert rows (schema order); returns the count loaded."""

    # ----------------------------------------------------------------- UDFs

    @abc.abstractmethod
    def register_udf(self, name: str, fn: Callable[..., Any]) -> None:
        """Register a variadic scalar UDF under ``name``.

        Re-registration must replace the previous function: the
        middleware re-registers the Δ UDF's counted wrapper on
        construction."""

    # ---------------------------------------------------------------- query

    @abc.abstractmethod
    def execute(self, sql: str) -> QueryResult:
        """Run SQL text (already printed in :attr:`dialect`)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the connection; the backend is unusable afterwards."""

    # ------------------------------------------------------------- mirroring

    def ship(self, db) -> "Backend":
        """Mirror a bundled database into this backend.

        Copies every catalog table (schema + rows), rebuilds every
        secondary index under its catalog name, and re-registers the
        bundled engine's UDFs (their *counted* wrappers, so
        ``udf_invocations`` counters stay engine-agnostic).  Any
        same-named table already in the backend (a re-ship, or a
        file-backed database from an earlier run) is replaced by the
        fresh snapshot.  Returns ``self`` for chaining::

            backend = SqliteBackend().ship(db)
            sieve = Sieve(db, store, backend=backend)
        """
        for table_name in db.catalog.table_names():
            self._ship_table(db, table_name)
        for udf_name, fn in db.functions().items():
            self.register_udf(udf_name, fn)
        return self

    def refresh(self, db, table: str | None = None) -> "Backend":
        """Re-mirror one table (or all) after the bundled data changed."""
        names = [db.catalog.table(table).name] if table else db.catalog.table_names()
        for table_name in names:
            self._ship_table(db, table_name)
        return self

    def _ship_table(self, db, table_name: str) -> None:
        table = db.catalog.table(table_name)
        self.drop_table(table.name)
        self.create_table(table.name, table.schema)
        self.bulk_load(table.name, (row for _rowid, row in table.scan()))
        for index in db.catalog.indexes_on(table_name):
            self.create_index(table.name, index.column, name=index.name)
