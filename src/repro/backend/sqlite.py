"""SqliteBackend — the bundled reference Backend over stdlib sqlite3.

SQLite is a real SQL engine with persistent B-trees, a cost-based
planner, and per-statement index hints, which makes it the smallest
credible stand-in for the paper's MySQL/PostgreSQL servers: tests and
CI can run Sieve's rewrites end-to-end on an actual database without
any external service.

Dialect mapping (see :data:`repro.sql.printer.SQLITE_DIALECT`):

* ``FORCE INDEX (idx)``  → ``INDEXED BY idx`` (single index only);
* ``USE INDEX ()``       → ``NOT INDEXED`` (LinearScan);
* ``IGNORE INDEX`` and multi-index hints are dropped — SQLite cannot
  spell them, and hints are advice, never semantics;
* boolean literals render as ``1``/``0``.

The Δ operator works server-side: :meth:`SqliteBackend.register_udf`
installs ``sieve_delta`` (and any other bundled UDF) as a variadic
scalar function, sharing the middleware's compiled partition state —
so guard keys registered at rewrite time resolve identically on both
engines, and ``udf_invocations``/``udf_policy_evals`` counters keep
counting because the *counted* wrappers are what get registered.

Column types map INT/TIME/DATE/BOOL → INTEGER, FLOAT → REAL,
VARCHAR → TEXT (Python bools adapt to 0/1 on insert; ``True == 1``
keeps differential row-set comparisons exact).
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Iterable, Sequence

from repro.backend.base import Backend
from repro.common.errors import ExecutionError
from repro.db.personality import SQLITE
from repro.engine.executor import QueryResult
from repro.sql.printer import SQLITE_DIALECT
from repro.storage.schema import ColumnType, Schema

_TYPE_MAP = {
    ColumnType.INT: "INTEGER",
    ColumnType.TIME: "INTEGER",
    ColumnType.DATE: "INTEGER",
    ColumnType.BOOL: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.VARCHAR: "TEXT",
}


class SqliteBackend(Backend):
    """Backend adapter over a ``sqlite3`` connection."""

    dialect = SQLITE_DIALECT
    personality = SQLITE  # shapes strategy choice + rewrite (bitmap-OR engine)
    name = "sqlite"

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self.connection = sqlite3.connect(path)
        self.statements_executed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteBackend(path={self.path!r})"

    # ------------------------------------------------------------------ DDL

    def create_table(self, name: str, schema: Schema) -> None:
        columns = ", ".join(
            f'"{col.name}" {_TYPE_MAP[col.ctype]}' for col in schema
        )
        self._run(f'CREATE TABLE "{name}" ({columns})')

    def drop_table(self, name: str) -> None:
        self._run(f'DROP TABLE IF EXISTS "{name}"')

    def create_index(self, table: str, column: str, name: str | None = None) -> None:
        index_name = name or f"idx_{table}_{column}".lower()
        self._run(f'CREATE INDEX "{index_name}" ON "{table}" ("{column}")')

    # ------------------------------------------------------------------ DML

    def bulk_load(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        rows = [tuple(row) for row in rows]
        if not rows:
            return 0
        placeholders = ", ".join("?" for _ in rows[0])
        with self.connection:
            self.connection.executemany(
                f'INSERT INTO "{table}" VALUES ({placeholders})', rows
            )
        return len(rows)

    # ----------------------------------------------------------------- UDFs

    def register_udf(self, name: str, fn: Callable[..., Any]) -> None:
        # narg=-1: variadic, as the Δ UDF takes one key plus the
        # relation's columns in schema order.  Registration under the
        # same name replaces the previous function.
        self.connection.create_function(name, -1, _adapt_udf(fn))

    # ---------------------------------------------------------------- query

    def execute(self, sql: str) -> QueryResult:
        cursor = self._run(sql)
        columns = [d[0] for d in cursor.description] if cursor.description else []
        return QueryResult(columns=columns, rows=cursor.fetchall())

    def close(self) -> None:
        self.connection.close()

    # ------------------------------------------------------------- plumbing

    def _run(self, sql: str) -> sqlite3.Cursor:
        self.statements_executed += 1
        try:
            return self.connection.execute(sql)
        except sqlite3.Error as exc:
            raise ExecutionError(f"sqlite backend: {exc} — while running: {sql}") from exc


def _adapt_udf(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Coerce a bundled-engine UDF's return value into SQLite's types
    (bool is returned as int so WHERE treats it as SQL truth)."""

    def wrapper(*args: Any) -> Any:
        result = fn(*args)
        if isinstance(result, bool):
            return int(result)
        return result

    return wrapper
