"""SqliteBackend — the bundled reference Backend over stdlib sqlite3.

SQLite is a real SQL engine with persistent B-trees, a cost-based
planner, and per-statement index hints, which makes it the smallest
credible stand-in for the paper's MySQL/PostgreSQL servers: tests and
CI can run Sieve's rewrites end-to-end on an actual database without
any external service.

Dialect mapping (see :data:`repro.sql.printer.SQLITE_DIALECT`):

* ``FORCE INDEX (idx)``  → ``INDEXED BY idx`` (single index only);
* ``USE INDEX ()``       → ``NOT INDEXED`` (LinearScan);
* ``IGNORE INDEX`` and multi-index hints are dropped — SQLite cannot
  spell them, and hints are advice, never semantics;
* boolean literals render as ``1``/``0``.

The Δ operator works server-side: :meth:`SqliteBackend.register_udf`
installs ``sieve_delta`` (and any other bundled UDF) as a variadic
scalar function, sharing the middleware's compiled partition state —
so guard keys registered at rewrite time resolve identically on both
engines, and ``udf_invocations``/``udf_policy_evals`` counters keep
counting because the *counted* wrappers are what get registered.

Column types map INT/TIME/DATE/BOOL → INTEGER, FLOAT → REAL,
VARCHAR → TEXT (Python bools adapt to 0/1 on insert; ``True == 1``
keeps differential row-set comparisons exact).

Threading: ``sqlite3`` connections refuse cross-thread use, so the
backend keeps **one connection per thread** (the seed's single shared
connection raised ``ProgrammingError`` as soon as a
:class:`~repro.service.SieveServer` worker touched it).  File-backed
databases simply open the file per thread; ``":memory:"`` is silently
promoted to a private shared-cache URI (``file:...?mode=memory&
cache=shared``) with a keeper connection holding the database alive,
so all threads still see one dataset.  UDF registrations are replayed
onto each thread's connection (SQLite functions are per-connection
state), tracked by a registration version so late ``register_udf``
calls reach already-spawned workers.  Statements on a real sqlite
engine release the GIL while stepping, which is what lets the service
tier's throughput actually scale with worker count.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from typing import Any, Callable, Iterable, Sequence

from repro.backend.base import Backend
from repro.common.errors import ExecutionError
from repro.db.personality import SQLITE
from repro.engine.executor import QueryResult
from repro.sql.printer import SQLITE_DIALECT
from repro.storage.schema import ColumnType, Schema

_TYPE_MAP = {
    ColumnType.INT: "INTEGER",
    ColumnType.TIME: "INTEGER",
    ColumnType.DATE: "INTEGER",
    ColumnType.BOOL: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.VARCHAR: "TEXT",
}


class SqliteBackend(Backend):
    """Backend adapter over per-thread ``sqlite3`` connections."""

    dialect = SQLITE_DIALECT
    personality = SQLITE  # shapes strategy choice + rewrite (bitmap-OR engine)
    name = "sqlite"

    _memory_ids = itertools.count(1)

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._uri = False
        if path == ":memory:":
            # A plain :memory: connection per thread would give every
            # thread its own empty database; a named shared-cache URI
            # keeps one in-memory dataset visible to all of them.  The
            # keeper connection below pins it alive across thread
            # churn.
            self.path = f"file:sieve-backend-{next(self._memory_ids)}?mode=memory&cache=shared"
            self._uri = True
        elif path.startswith("file:"):
            self._uri = True
        self._lock = threading.Lock()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._udfs: dict[str, Callable[..., Any]] = {}
        self._udf_version = 0
        self.statements_executed = 0
        self._fail_budget = 0
        self._keeper = self._new_connection()
        self._local.state = (self._keeper, 0)  # creating thread reuses the keeper

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteBackend(path={self.path!r})"

    @property
    def connection(self) -> sqlite3.Connection:
        """The calling thread's connection (created on first use)."""
        return self._conn()

    def _new_connection(self) -> sqlite3.Connection:
        # check_same_thread=False only so close() can shut down every
        # connection from one thread; each connection is still *used*
        # by exactly one thread (its creator) via the thread-local.
        conn = sqlite3.connect(self.path, uri=self._uri, check_same_thread=False)
        with self._lock:
            self._connections.append(conn)
        return conn

    def _conn(self) -> sqlite3.Connection:
        state = getattr(self._local, "state", None)
        with self._lock:
            version = self._udf_version
            udfs = list(self._udfs.items())
        if state is None:
            conn = self._new_connection()
        else:
            conn, have_version = state
            if have_version == version:
                return conn
        for udf_name, fn in udfs:
            conn.create_function(udf_name, -1, _adapt_udf(fn))
        self._local.state = (conn, version)
        return conn

    # ------------------------------------------------------------------ DDL

    def create_table(self, name: str, schema: Schema) -> None:
        columns = ", ".join(
            f'"{col.name}" {_TYPE_MAP[col.ctype]}' for col in schema
        )
        self._run(f'CREATE TABLE "{name}" ({columns})')

    def drop_table(self, name: str) -> None:
        self._run(f'DROP TABLE IF EXISTS "{name}"')

    def create_index(self, table: str, column: str, name: str | None = None) -> None:
        index_name = name or f"idx_{table}_{column}".lower()
        self._run(f'CREATE INDEX "{index_name}" ON "{table}" ("{column}")')

    # ------------------------------------------------------------------ DML

    def bulk_load(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        rows = [tuple(row) for row in rows]
        if not rows:
            return 0
        placeholders = ", ".join("?" for _ in rows[0])
        conn = self._conn()
        # The context manager commits, which is what makes the loaded
        # rows visible to the other threads' connections.
        with conn:
            conn.executemany(
                f'INSERT INTO "{table}" VALUES ({placeholders})', rows
            )
        return len(rows)

    # ----------------------------------------------------------------- UDFs

    def register_udf(self, name: str, fn: Callable[..., Any]) -> None:
        # narg=-1: variadic, as the Δ UDF takes one key plus the
        # relation's columns in schema order.  Registration under the
        # same name replaces the previous function — on every
        # connection: the version bump makes other threads replay the
        # registration set onto their connection at next use.
        with self._lock:
            self._udfs[name] = fn
            self._udf_version += 1
        state = getattr(self._local, "state", None)
        if state is not None:
            self._local.state = (state[0], -1)  # force replay, keep the conn
        self._conn()

    # ---------------------------------------------------------------- query

    def execute(self, sql: str) -> QueryResult:
        cursor = self._run(sql)
        columns = [d[0] for d in cursor.description] if cursor.description else []
        return QueryResult(columns=columns, rows=cursor.fetchall())

    def close(self) -> None:
        with self._lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            conn.close()

    # ------------------------------------------------------------- plumbing

    def inject_failures(self, n: int = 1) -> None:
        """Fault injection hook: the next ``n`` statements raise
        :class:`~repro.common.errors.ExecutionError` instead of
        running.  Models a flaky storage engine under the rewrite —
        the serving tier must surface these as typed per-request
        failures, never as a partial answer or a dead worker."""
        if n < 0:
            raise ValueError("n must be non-negative")
        with self._lock:
            self._fail_budget += n

    def _run(self, sql: str) -> sqlite3.Cursor:
        with self._lock:
            self.statements_executed += 1
            if self._fail_budget > 0:
                self._fail_budget -= 1
                raise ExecutionError(
                    f"sqlite backend: injected fault — while running: {sql}"
                )
        try:
            return self._conn().execute(sql)
        except sqlite3.Error as exc:
            raise ExecutionError(f"sqlite backend: {exc} — while running: {sql}") from exc


def _adapt_udf(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Coerce a bundled-engine UDF's return value into SQLite's types
    (bool is returned as int so WHERE treats it as SQL truth)."""

    def wrapper(*args: Any) -> Any:
        result = fn(*args)
        if isinstance(result, bool):
            return int(result)
        return result

    return wrapper
