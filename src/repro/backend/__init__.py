"""Execution backends: run Sieve's rewritten SQL on a real DBMS.

The paper's Experiments 4-5 execute Sieve's guard-annotated rewrites
on actual MySQL and PostgreSQL servers; the bundled engine only
*simulates* those systems' behaviours (``repro.db.personality``).
This package is the real execution tier: a :class:`Backend` adapter
mirrors a bundled :class:`~repro.db.database.Database`'s catalog
(schema, rows, indexes) into an external engine and executes the
rewritten SQL there, printed in the backend's
:class:`~repro.sql.printer.Dialect`.

:class:`SqliteBackend` is the bundled reference adapter — stdlib
``sqlite3``, so tests and CI need no external server.  It registers
the middleware's Δ UDF (``sieve_delta``) so per-tuple policy checks
work server-side, and honours the rewriter's index hints through
SQLite's ``INDEXED BY`` / ``NOT INDEXED`` spellings.

Wire a backend into the middleware with ``Sieve(db, store,
backend=backend)``: guard generation, caching, strategy selection and
rewriting are unchanged; only the final execution hops engines.  See
``docs/ARCHITECTURE.md`` ("Backends") for where this tier sits in the
dataflow.
"""

from repro.backend.base import Backend
from repro.backend.sqlite import SqliteBackend

__all__ = ["Backend", "SqliteBackend"]
