"""Relational schemas.

Rows are plain Python tuples; a :class:`Schema` maps column names to
positions and validates values on insert.  ``TIME`` and ``DATE`` are
stored as integers (minutes since midnight / days since an epoch) —
they exist as distinct declared types purely so dataset schemas read
like the paper's Tables 2-3, while keeping every value orderable and
histogram-friendly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.common.errors import CatalogError


class ColumnType(enum.Enum):
    """Declared column types. TIME/DATE are integer-backed."""

    INT = "int"
    FLOAT = "float"
    VARCHAR = "varchar"
    BOOL = "bool"
    TIME = "time"
    DATE = "date"

    @property
    def python_types(self) -> tuple[type, ...]:
        if self in (ColumnType.INT, ColumnType.TIME, ColumnType.DATE):
            return (int,)
        if self is ColumnType.FLOAT:
            return (int, float)
        if self is ColumnType.VARCHAR:
            return (str,)
        return (bool, int)


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType
    nullable: bool = False

    def validate(self, value: Any) -> None:
        """Raise CatalogError when ``value`` is not storable in this column."""
        if value is None:
            if not self.nullable:
                raise CatalogError(f"column {self.name!r} is not nullable")
            return
        if not isinstance(value, self.ctype.python_types):
            raise CatalogError(
                f"column {self.name!r} expects {self.ctype.value}, got {type(value).__name__}: {value!r}"
            )


@dataclass
class Schema:
    """An ordered collection of columns with O(1) name lookup."""

    columns: Sequence[Column]
    _index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._index = {}
        for pos, col in enumerate(self.columns):
            if col.name in self._index:
                raise CatalogError(f"duplicate column name {col.name!r}")
            self._index[col.name] = pos

    @classmethod
    def of(cls, *specs: tuple[str, ColumnType]) -> "Schema":
        """Shorthand: ``Schema.of(("id", ColumnType.INT), ...)``."""
        return cls([Column(name, ctype) for name, ctype in specs])

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of column ``name`` or CatalogError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}; have {self.names}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def validate_row(self, row: Sequence[Any]) -> None:
        """Check arity and per-column types of a candidate row."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row arity {len(row)} != schema arity {len(self.columns)}"
            )
        for col, value in zip(self.columns, row):
            col.validate(value)

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema containing just ``names`` in the given order."""
        return Schema([self.column(n) for n in names])

    def concat(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Schema of a join result, optionally prefixing column names."""
        cols = [
            Column(prefix_self + c.name, c.ctype, c.nullable) for c in self.columns
        ] + [Column(prefix_other + c.name, c.ctype, c.nullable) for c in other.columns]
        return Schema(cols)
