"""Paged heap tables.

Rows are appended to fixed-capacity pages.  The page structure is what
makes the simulated I/O model meaningful: a sequential scan touches
``page_count`` pages once each, while an index lookup touches one
(random) page per matching row — the asymmetry at the heart of the
paper's LinearScan / IndexScan trade-off (Section 5.5).

Deletions are tombstones (the slot is set to None and skipped by
scans); updates are in place.  Row ids are stable for the lifetime of
the table, which the B+-tree and bitmap indexes rely on.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import CatalogError, ExecutionError
from repro.storage.schema import Schema

DEFAULT_PAGE_SIZE = 128


class HeapTable:
    """An append-mostly heap of tuples organised into fixed-size pages."""

    def __init__(self, name: str, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise CatalogError("page_size must be positive")
        self.name = name
        self.schema = schema
        self.page_size = page_size
        self._rows: list[tuple | None] = []
        self._live_count = 0

    # ------------------------------------------------------------------ write

    def insert(self, row: Sequence[Any], validate: bool = True) -> int:
        """Append a row; returns its stable rowid."""
        if validate:
            self.schema.validate_row(row)
        self._rows.append(tuple(row))
        self._live_count += 1
        return len(self._rows) - 1

    def extend(self, rows: Iterable[Sequence[Any]], validate: bool = True) -> None:
        for row in rows:
            self.insert(row, validate=validate)

    def update(self, rowid: int, row: Sequence[Any], validate: bool = True) -> None:
        if validate:
            self.schema.validate_row(row)
        if self._rows[rowid] is None:
            raise ExecutionError(f"update of deleted rowid {rowid} in {self.name}")
        self._rows[rowid] = tuple(row)

    def delete(self, rowid: int) -> None:
        """Tombstone a row. Rowids of other rows are unaffected."""
        if self._rows[rowid] is not None:
            self._rows[rowid] = None
            self._live_count -= 1

    # ------------------------------------------------------------------- read

    def __len__(self) -> int:
        return self._live_count

    @property
    def row_count(self) -> int:
        return self._live_count

    @property
    def slot_count(self) -> int:
        """Total slots including tombstones (defines the page layout)."""
        return len(self._rows)

    @property
    def page_count(self) -> int:
        return (len(self._rows) + self.page_size - 1) // self.page_size

    def row(self, rowid: int) -> tuple:
        """Fetch one live row by id."""
        try:
            row = self._rows[rowid]
        except IndexError:
            raise ExecutionError(f"rowid {rowid} out of range in {self.name}") from None
        if row is None:
            raise ExecutionError(f"rowid {rowid} is deleted in {self.name}")
        return row

    def get(self, rowid: int) -> tuple | None:
        """Fetch a row by id, None when deleted/out of range."""
        if 0 <= rowid < len(self._rows):
            return self._rows[rowid]
        return None

    def page_of(self, rowid: int) -> int:
        return rowid // self.page_size

    def iter_rowids(self) -> Iterator[int]:
        """All live rowids in storage order."""
        for rowid, row in enumerate(self._rows):
            if row is not None:
                yield rowid

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Sequential (rowid, row) pairs over live rows."""
        for rowid, row in enumerate(self._rows):
            if row is not None:
                yield rowid, row

    def scan_batches(
        self, batch_slots: int | None = None
    ) -> Iterator[tuple[list[int], list[tuple]]]:
        """Sequential scan in page-aligned batches: ``(rowids, rows)``
        per slice of ``batch_slots`` slots (live rows only).

        Batches are aligned to page boundaries so a consumer counting
        distinct pages per batch gets exactly the sequential-page total
        a tuple-at-a-time scan would have charged.  The vectorized
        executor's scan nodes are the consumer; the two list
        comprehensions per slice are the whole per-row cost.
        """
        step = batch_slots or self.page_size * 8
        step = max(self.page_size, (step // self.page_size) * self.page_size)
        slots = self._rows
        for start in range(0, len(slots), step):
            chunk = slots[start : start + step]
            rowids = [start + j for j, row in enumerate(chunk) if row is not None]
            rows = [row for row in chunk if row is not None]
            yield rowids, rows

    def get_many(self, rowids: Iterable[int]) -> list[tuple[int, tuple]]:
        """``(rowid, row)`` pairs for the live subset of ``rowids``,
        in the given order (the batch fetch used by bitmap heap visits
        and index scans)."""
        slots = self._rows
        n = len(slots)
        out: list[tuple[int, tuple]] = []
        for rid in rowids:
            if 0 <= rid < n:
                row = slots[rid]
                if row is not None:
                    out.append((rid, row))
        return out

    def column_values(self, name: str) -> list[Any]:
        """All live values of one column (used by statistics builders)."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self._rows if row is not None]
