"""The catalog: tables and their secondary indexes.

Index maintenance happens here so that every write path (used by the
Database facade) keeps indexes consistent with heap contents.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.common.errors import CatalogError
from repro.index.btree import BPlusTreeIndex
from repro.index.hashindex import HashIndex
from repro.storage.schema import Schema
from repro.storage.table import DEFAULT_PAGE_SIZE, HeapTable

Index = BPlusTreeIndex | HashIndex


class Catalog:
    """Registry of tables and indexes."""

    def __init__(self) -> None:
        self._tables: dict[str, HeapTable] = {}
        self._indexes: dict[str, dict[str, Index]] = {}  # table -> {index name -> index}

    # ----------------------------------------------------------------- tables

    def create_table(
        self, name: str, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE
    ) -> HeapTable:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = HeapTable(name, schema, page_size=page_size)
        self._tables[key] = table
        self._indexes[key] = {}
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        del self._indexes[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]

    # ---------------------------------------------------------------- indexes

    def create_index(
        self, table_name: str, column: str, kind: str = "btree", name: str | None = None
    ) -> Index:
        """Create and build an index over existing table contents."""
        table = self.table(table_name)
        table.schema.index_of(column)  # validates the column exists
        index_name = name or f"idx_{table.name}_{column}".lower()
        per_table = self._indexes[table_name.lower()]
        if index_name in per_table:
            raise CatalogError(f"index {index_name!r} already exists on {table_name!r}")
        if kind == "btree":
            index: Index = BPlusTreeIndex(index_name, table.name, column)
        elif kind == "hash":
            index = HashIndex(index_name, table.name, column)
        else:
            raise CatalogError(f"unknown index kind {kind!r}")
        col_pos = table.schema.index_of(column)
        for rowid, row in table.scan():
            index.insert(row[col_pos], rowid)
        per_table[index_name] = index
        return index

    def drop_index(self, table_name: str, index_name: str) -> None:
        per_table = self._indexes.get(table_name.lower())
        if not per_table or index_name not in per_table:
            raise CatalogError(f"unknown index {index_name!r} on {table_name!r}")
        del per_table[index_name]

    def indexes_on(self, table_name: str) -> list[Index]:
        return list(self._indexes.get(table_name.lower(), {}).values())

    def index_by_name(self, table_name: str, index_name: str) -> Index:
        per_table = self._indexes.get(table_name.lower(), {})
        try:
            return per_table[index_name]
        except KeyError:
            raise CatalogError(
                f"unknown index {index_name!r} on {table_name!r}; have {sorted(per_table)}"
            ) from None

    def index_on_column(self, table_name: str, column: str) -> Index | None:
        """The first index over ``column``, preferring B+-trees."""
        candidates = [
            ix for ix in self.indexes_on(table_name) if ix.column == column
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda ix: 0 if ix.kind == "btree" else 1)
        return candidates[0]

    def indexed_columns(self, table_name: str) -> set[str]:
        return {ix.column for ix in self.indexes_on(table_name)}

    # ------------------------------------------------------------ write paths

    def insert_row(self, table_name: str, row: Sequence[Any]) -> int:
        """Insert a row and maintain all indexes on the table."""
        table = self.table(table_name)
        rowid = table.insert(row)
        for index in self.indexes_on(table_name):
            col_pos = table.schema.index_of(index.column)
            index.insert(row[col_pos], rowid)
        return rowid

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert_row(table_name, row)
            count += 1
        return count

    def delete_row(self, table_name: str, rowid: int) -> None:
        table = self.table(table_name)
        row = table.get(rowid)
        if row is None:
            return
        for index in self.indexes_on(table_name):
            col_pos = table.schema.index_of(index.column)
            index.delete(row[col_pos], rowid)
        table.delete(rowid)

    def update_row(self, table_name: str, rowid: int, new_row: Sequence[Any]) -> None:
        table = self.table(table_name)
        old = table.row(rowid)
        for index in self.indexes_on(table_name):
            col_pos = table.schema.index_of(index.column)
            if old[col_pos] != new_row[col_pos]:
                index.delete(old[col_pos], rowid)
                index.insert(new_row[col_pos], rowid)
        table.update(rowid, new_row)
