"""Storage substrate: column types, schemas, paged heap tables, catalog."""

from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import HeapTable
from repro.storage.catalog import Catalog

__all__ = ["Column", "ColumnType", "Schema", "HeapTable", "Catalog"]
