"""Execution engine: physical plan nodes and the Volcano-style executor."""

from repro.engine.plans import (
    PlanNode,
    SeqScanPlan,
    IndexScanPlan,
    BitmapOrPlan,
    CTEScanPlan,
    DerivedScanPlan,
    FilterPlan,
    ProjectPlan,
    HashJoinPlan,
    NLJoinPlan,
    IndexNLJoinPlan,
    AggregatePlan,
    SortPlan,
    LimitPlan,
    DistinctPlan,
    SetOpPlan,
    IndexProbe,
)
from repro.engine.executor import Executor, QueryResult

__all__ = [
    "PlanNode",
    "SeqScanPlan",
    "IndexScanPlan",
    "BitmapOrPlan",
    "CTEScanPlan",
    "DerivedScanPlan",
    "FilterPlan",
    "ProjectPlan",
    "HashJoinPlan",
    "NLJoinPlan",
    "IndexNLJoinPlan",
    "AggregatePlan",
    "SortPlan",
    "LimitPlan",
    "DistinctPlan",
    "SetOpPlan",
    "IndexProbe",
    "Executor",
    "QueryResult",
]
