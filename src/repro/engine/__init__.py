"""Execution engine: physical plan nodes and the Volcano-style executor."""

from repro.engine.plans import (
    PlanNode,
    SeqScanPlan,
    IndexScanPlan,
    BitmapOrPlan,
    CTEScanPlan,
    DerivedScanPlan,
    FilterPlan,
    ProjectPlan,
    HashJoinPlan,
    NLJoinPlan,
    IndexNLJoinPlan,
    AggregatePlan,
    SortPlan,
    LimitPlan,
    DistinctPlan,
    SetOpPlan,
    IndexProbe,
)
from repro.engine.executor import Executor, QueryResult
from repro.engine.plans import annotate_batch_capability
from repro.engine.vector import BatchPredicate, RowBatch, VectorizedExecutor

__all__ = [
    "annotate_batch_capability",
    "BatchPredicate",
    "RowBatch",
    "VectorizedExecutor",
    "PlanNode",
    "SeqScanPlan",
    "IndexScanPlan",
    "BitmapOrPlan",
    "CTEScanPlan",
    "DerivedScanPlan",
    "FilterPlan",
    "ProjectPlan",
    "HashJoinPlan",
    "NLJoinPlan",
    "IndexNLJoinPlan",
    "AggregatePlan",
    "SortPlan",
    "LimitPlan",
    "DistinctPlan",
    "SetOpPlan",
    "IndexProbe",
    "Executor",
    "QueryResult",
]
