"""Vectorized batch execution (the engine's hot path).

The tuple-at-a-time executor walks every row through a chain of Python
generators and closure trees; at Sieve's scale (guarded scans checking
hundreds of policy disjuncts per tuple) interpreter dispatch dwarfs
the actual work.  This module replaces it with batch execution:

* :class:`RowBatch` — a batch of tuples with lazily transposed
  per-column arrays and a *selection* (surviving row indices, also
  exposable as a :class:`~repro.index.bitmap.RowIdBitmap`).  Operators
  exchange batches, so per-node overhead is paid once per ~thousand
  rows instead of once per row.
* :class:`BatchPredicate` — a filter compiled into conjunct *stages*.
  Plain conjuncts become column-mode codegen kernels (one call filters
  the whole selection); a policy-style wide OR becomes a
  **guard-by-guard** stage: each disjunct's kernel runs over the
  still-unmatched selection, its hits are OR-ed into a
  ``RowIdBitmap``, and ``counters.policy_evals`` is charged
  ``len(remaining)`` per disjunct — the batch equivalent of the
  closure compiler's short-circuit metering, tick-for-tick identical
  to the tuple path (see ``docs/ARCHITECTURE.md``, "Vectorized
  engine").  Conjuncts that embed nested metered ORs or scalar
  subqueries run per-row through the row compiler so metering and
  correlation semantics are preserved exactly.
* :class:`VectorizedExecutor` — an :class:`~repro.engine.executor.Executor`
  subclass executing SeqScan / IndexScan / BitmapOr / CTEScan /
  DerivedScan / Filter / Project / HashJoin / Aggregate / Distinct /
  Sort / Limit over batches.  Exotic nodes (NLJoin, IndexNLJoin, set
  ops, correlated subqueries) fall back to the inherited
  tuple-at-a-time methods per subtree, with their output re-chunked
  into batches — the planner marks capability per node
  (``PlanNode.batchable``), so mixing is free.

Counter semantics in batch mode: ``tuples_scanned``, page counters,
``predicate_evals`` (one per input row per filter) and
``policy_evals`` are charged in the same per-row amounts as the tuple
path — the differential suite asserts equality on real workloads.
``counters.batches`` additionally counts scan batches formed (zero
cost weight).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from repro.common.errors import ExecutionError
from repro.expr.analysis import conjuncts, contains_subquery
from repro.expr.codegen import (
    CodegenExprCompiler,
    CodegenUnsupported,
    contains_scalar_subquery,
    is_metered_or,
)
from repro.expr.eval import RowBinding
from repro.expr.nodes import Expr, Or
from repro.engine.executor import (
    Executor,
    QueryResult,
    _AggState,
    _ReverseKey,
    _sort_key,
)
from repro.engine.plans import (
    AggregatePlan,
    BitmapOrPlan,
    CTEScanPlan,
    DerivedScanPlan,
    DistinctPlan,
    FilterPlan,
    HashJoinPlan,
    IndexScanPlan,
    LimitPlan,
    PlanNode,
    ProjectPlan,
    SeqScanPlan,
    SortPlan,
)
from repro.index.bitmap import RowIdBitmap

#: Sequential scans form one batch per this many heap pages (aligned to
#: page boundaries so page accounting stays exact).
BATCH_PAGES = 8

#: Row-count granularity for batches not tied to the page structure
#: (CTE scans, bitmap heap fetches, fallback re-chunking).
BATCH_ROWS = 1024


class RowBatch:
    """A batch of row tuples plus a selection of surviving indices.

    ``sel`` is ``None`` for "all rows" or an ascending index list;
    :meth:`selection_bitmap` exposes it as a :class:`RowIdBitmap` for
    bitmap algebra.  ``columns()`` lazily transposes the *full* batch
    (a single C-level ``zip``); kernels then index columns by selected
    position, so narrowing a selection never copies row data.
    """

    __slots__ = ("rows", "sel", "_cols")

    def __init__(self, rows: list[tuple], sel: list[int] | None = None):
        self.rows = rows
        self.sel = sel
        self._cols: list | None = None

    def columns(self) -> list:
        if self._cols is None:
            self._cols = list(zip(*self.rows)) if self.rows else []
        return self._cols

    def indices(self) -> list[int]:
        return self.sel if self.sel is not None else list(range(len(self.rows)))

    def selection_bitmap(self) -> RowIdBitmap:
        return RowIdBitmap.from_rowids(self.indices())

    def narrow(self, sel: list[int]) -> "RowBatch":
        """The same rows under a narrower selection — shares the column
        transposition, so pipelined operators never re-run ``zip``."""
        narrowed = RowBatch(self.rows, sel)
        narrowed._cols = self._cols
        return narrowed

    def take(self) -> list[tuple]:
        """The selected rows, in order."""
        if self.sel is None:
            return self.rows
        rows = self.rows
        return [rows[i] for i in self.sel]


# Stage evaluators all share one shape: fn(batch, sel) -> passing indices.
_StageFn = Callable[[RowBatch, list], list]


class BatchPredicate:
    """A filter expression compiled into ordered conjunct stages.

    Stage order is the flattened conjunct order — the order the
    closure compiler's ``all()`` would evaluate them — so rows reach a
    guard stage exactly when the tuple path would have reached the
    wide OR, keeping ``policy_evals`` identical.  Every stage is a
    ``fn(batch, sel) -> narrowed sel``; guard (metered OR) stages and
    composed disjunct pipelines are closures over sub-stages.
    """

    __slots__ = ("stages", "counters")

    def __init__(self, stages: list[_StageFn], counters: Any):
        self.stages = stages
        self.counters = counters

    def apply(self, batch: RowBatch, sel: list) -> list:
        """Filter ``sel``; charges ``predicate_evals`` once per input
        row (the tuple path's one tick per row per filter)."""
        self.counters.predicate_evals += len(sel)
        for stage in self.stages:
            if not sel:
                break
            sel = stage(batch, sel)
        return sel


def _guard_stage(disjunct_fns: list[_StageFn], counters: Any) -> _StageFn:
    """Guard-by-guard evaluation of one wide (metered) OR over a batch.

    Each disjunct produces a selection bitmap OR-ed into the
    accumulator; rows already matched leave the remaining set, so a
    disjunct is charged — one ``policy_evals`` tick per row — exactly
    for the rows that would still be checking it under tuple-at-a-time
    short-circuiting.
    """

    def stage(batch: RowBatch, sel: list) -> list:
        remaining = sel
        matched: list = []
        for fn in disjunct_fns:
            if not remaining:
                break
            counters.policy_evals += len(remaining)
            hits = fn(batch, remaining)
            if hits:
                matched.extend(hits)
                # Narrow via a per-disjunct hash set: bitmap membership
                # would cost one big-int shift per probe (quadratic in
                # the batch size).
                hit_set = set(hits)
                remaining = [i for i in remaining if i not in hit_set]
        # The OR of the per-disjunct selections: hits are disjoint by
        # construction (matched rows leave `remaining`), so the union
        # is a sort-merge of the hit lists — equivalent to OR-ing
        # per-disjunct RowIdBitmaps but without paying big-int bit
        # iteration to read the result back out.
        matched.sort()
        return matched

    return stage




def top_k_rows(rows: list[tuple], keys: list, limit: int) -> list[tuple]:
    """First ``limit`` rows of the stable composite sort — via a heap,
    never materializing the full ordering.  ``keys[i]`` is row ``i``'s
    composite key (DESC members wrapped in :class:`_ReverseKey`); the
    index tiebreaker reproduces stable-sort semantics exactly."""
    best = heapq.nsmallest(limit, ((keys[i], i) for i in range(len(rows))))
    return [rows[i] for _key, i in best]


class VectorizedExecutor(Executor):
    """Batch executor; inherits the tuple path as per-node fallback."""

    # ------------------------------------------------------------ plumbing

    def run(self, root: PlanNode, cte_plans: dict[str, PlanNode]) -> QueryResult:
        self._cte_rows = {}
        for name, plan in cte_plans.items():
            self._cte_rows[name] = self._collect_rows(plan)
        rows = self._collect_rows(root)
        self.counters.tuples_output += len(rows)
        return QueryResult(columns=root.binding.column_names, rows=rows)

    def _collect_rows(self, plan: PlanNode) -> list[tuple]:
        out: list[tuple] = []
        for batch in self._batches(plan):
            out.extend(batch.take())
        return out

    def _iter(self, plan: PlanNode) -> Iterator[tuple]:
        """Row iteration for inherited tuple-mode parents: batchable
        subtrees still execute vectorized underneath them."""
        if self._has_vexec(plan):
            return self._flatten(plan)
        return super()._iter(plan)

    def _flatten(self, plan: PlanNode) -> Iterator[tuple]:
        for batch in self._batches(plan):
            yield from batch.take()

    def _has_vexec(self, plan: PlanNode) -> bool:
        return plan.batchable and hasattr(self, f"_vexec_{type(plan).__name__}")

    def _batches(self, plan: PlanNode) -> Iterator[RowBatch]:
        if self._has_vexec(plan):
            return getattr(self, f"_vexec_{type(plan).__name__}")(plan)
        return self._fallback_batches(plan)

    def _fallback_batches(self, plan: PlanNode) -> Iterator[RowBatch]:
        """Chunk a tuple-at-a-time subtree's rows into batches."""
        buf: list[tuple] = []
        for row in super()._iter(plan):
            buf.append(row)
            if len(buf) >= BATCH_ROWS:
                yield RowBatch(buf)
                buf = []
        if buf:
            yield RowBatch(buf)

    # --------------------------------------------------- kernel compilation

    def _codegen(self, binding: RowBinding) -> CodegenExprCompiler:
        return CodegenExprCompiler(
            binding,
            udfs=self.udfs,
            subquery_fn=self._make_scalar_subquery_fn(binding),
            in_subquery_fn=self._eval_in_subquery,
            counters=self.counters,
        )

    def _needs_row_path(self, expr: Expr) -> bool:
        return not self.use_codegen or contains_scalar_subquery(expr)

    def _row_stage(self, expr: Expr, binding: RowBinding) -> _StageFn:
        fn = self._row_fn(expr, binding)

        def stage(batch: RowBatch, sel: list, _fn=fn) -> list:
            rows = batch.rows
            return [i for i in sel if _fn(rows[i])]

        return stage

    def _col_stage(self, expr: Expr, binding: RowBinding) -> _StageFn:
        """A column-mode predicate kernel; falls back to the row path
        for trees column mode cannot express."""
        if self._needs_row_path(expr):
            return self._row_stage(expr, binding)

        def build() -> _StageFn:
            try:
                kernel = self._codegen(binding).compile_batch_predicate(expr)
            except (CodegenUnsupported, SyntaxError):
                return self._row_stage(expr, binding)

            def stage(batch: RowBatch, sel: list, _k=kernel) -> list:
                return _k(batch.columns(), sel)

            return stage

        return self._cached(expr, binding, "colpred", build)

    def _value_fn(self, expr: Expr, binding: RowBinding) -> Callable[[RowBatch, list], list]:
        """Batch value computation: ``fn(batch, sel) -> values``."""
        if self._needs_row_path(expr):
            fn = self._row_fn(expr, binding)

            def values(batch: RowBatch, sel: list, _fn=fn) -> list:
                rows = batch.rows
                return [_fn(rows[i]) for i in sel]

            return values

        def build() -> Callable[[RowBatch, list], list]:
            try:
                kernel = self._codegen(binding).compile_batch_values(expr)
            except (CodegenUnsupported, SyntaxError):
                fn = self._row_fn(expr, binding)
                return lambda batch, sel, _fn=fn: [_fn(batch.rows[i]) for i in sel]

            def values(batch: RowBatch, sel: list, _k=kernel) -> list:
                return _k(batch.columns(), sel)

            return values

        return self._cached(expr, binding, "colval", build)

    def _cached(self, expr: Expr, binding: RowBinding, mode: str, build: Callable):
        cache = self.fn_cache
        if cache is None:
            return build()
        extra = (binding.cache_key(), mode, self.use_codegen)
        fn = cache.lookup(expr, extra, self.counters)
        if fn is None:
            fn = build()
            if not contains_subquery(expr):
                cache.store(expr, extra, fn)
        return fn

    def _conjunct_stage(self, conj: Expr, binding: RowBinding) -> _StageFn:
        """One conjunct as a stage.

        A metered (policy-style) OR becomes a guard stage: on the
        codegen path a single fused loop kernel
        (:meth:`~repro.expr.codegen.CodegenExprCompiler.compile_batch_guard`
        — zero per-row Python calls), otherwise the guard-by-guard
        bitmap driver over per-disjunct row functions.  Everything
        else runs as one comprehension kernel, or per row when column
        mode can't express it (scalar subqueries, codegen off)."""
        if is_metered_or(conj, self.counters):
            assert isinstance(conj, Or)
            if not self._needs_row_path(conj):
                stage = self._guard_kernel_stage(conj, binding)
                if stage is not None:
                    return stage
            disjunct_fns = [self._row_stage(d, binding) for d in conj.children]
            return _guard_stage(disjunct_fns, self.counters)
        if self._needs_row_path(conj):
            return self._row_stage(conj, binding)
        return self._col_stage(conj, binding)

    def _guard_kernel_stage(self, conj: Or, binding: RowBinding) -> _StageFn | None:
        try:
            kernel = self._codegen(binding).compile_batch_guard(conj)
        except (CodegenUnsupported, SyntaxError):
            return None

        def stage(batch: RowBatch, sel: list, _k=kernel) -> list:
            return _k(batch.columns(), sel)

        return stage

    def _batch_pred(self, expr: Expr | None, binding: RowBinding) -> BatchPredicate | None:
        if expr is None:
            return None

        def build() -> BatchPredicate:
            stages = [self._conjunct_stage(c, binding) for c in conjuncts(expr)]
            return BatchPredicate(stages, self.counters)

        return self._cached(expr, binding, "batchpred", build)

    # --------------------------------------------------------------- scans

    def _vexec_SeqScanPlan(self, plan: SeqScanPlan) -> Iterator[RowBatch]:
        table = self.catalog.table(plan.table_name)
        pred = self._batch_pred(plan.filter, plan.binding)
        counters = self.counters
        page_size = table.page_size
        for rowids, rows in table.scan_batches(page_size * BATCH_PAGES):
            if not rows:
                continue
            pages = 0
            last = -1
            for rid in rowids:
                page = rid // page_size
                if page != last:
                    pages += 1
                    last = page
            counters.pages_sequential += pages
            counters.tuples_scanned += len(rows)
            counters.batches += 1
            batch = RowBatch(rows)
            if pred is not None:
                sel = pred.apply(batch, batch.indices())
                if not sel:
                    continue
                batch.sel = sel
            yield batch

    def _fetched_batches(
        self, plan, table, rowid_iter: Iterator[int], random_pages: bool
    ) -> Iterator[RowBatch]:
        """Shared heap-fetch path for index and bitmap scans: fetch in
        the given rowid order, charge per-row counters identically to
        the tuple path, filter batch-wise."""
        pred = self._batch_pred(plan.filter, plan.binding)
        counters = self.counters
        page_size = table.page_size
        pages_touched: set[int] = set()  # per-scan buffer-pool model
        pending: list[int] = []

        def flush(rowids: list[int]) -> RowBatch | None:
            pairs = table.get_many(rowids)
            if not pairs:
                return None
            if random_pages:
                for rid, _row in pairs:
                    page = rid // page_size
                    if page not in pages_touched:
                        pages_touched.add(page)
                        counters.pages_random += 1
            rows = [row for _rid, row in pairs]
            counters.tuples_scanned += len(rows)
            counters.batches += 1
            batch = RowBatch(rows)
            if pred is not None:
                sel = pred.apply(batch, batch.indices())
                if not sel:
                    return None
                batch.sel = sel
            return batch

        for rowid in rowid_iter:
            pending.append(rowid)
            if len(pending) >= BATCH_ROWS:
                batch = flush(pending)
                pending = []
                if batch is not None:
                    yield batch
        if pending:
            batch = flush(pending)
            if batch is not None:
                yield batch

    def _vexec_IndexScanPlan(self, plan: IndexScanPlan) -> Iterator[RowBatch]:
        table = self.catalog.table(plan.table_name)
        index = self.catalog.index_by_name(plan.table_name, plan.index_name)
        seen: set[int] = set()

        def deduped() -> Iterator[int]:
            for rowid in self._probe_rowids(index, plan.probes):
                if rowid not in seen:
                    seen.add(rowid)
                    yield rowid

        yield from self._fetched_batches(plan, table, deduped(), random_pages=True)

    def _vexec_BitmapOrPlan(self, plan: BitmapOrPlan) -> Iterator[RowBatch]:
        table = self.catalog.table(plan.table_name)
        bitmap = RowIdBitmap()
        for index_name, _column, probes in plan.arms:
            index = self.catalog.index_by_name(plan.table_name, index_name)
            bitmap = bitmap | RowIdBitmap.from_rowids(
                self._probe_rowids(index, probes)
            )
        self.counters.pages_bitmap += len(bitmap.pages(table.page_size))
        yield from self._fetched_batches(
            plan, table, bitmap.iter_sorted(), random_pages=False
        )

    def _vexec_CTEScanPlan(self, plan: CTEScanPlan) -> Iterator[RowBatch]:
        key = plan.cte_name.lower()
        if key not in self._cte_rows:
            raise ExecutionError(f"CTE {plan.cte_name!r} was not materialised")
        pred = self._batch_pred(plan.filter, plan.binding)
        counters = self.counters
        source = self._cte_rows[key]
        for start in range(0, len(source), BATCH_ROWS):
            rows = source[start : start + BATCH_ROWS]
            counters.tuples_scanned += len(rows)
            counters.batches += 1
            batch = RowBatch(rows)
            if pred is not None:
                sel = pred.apply(batch, batch.indices())
                if not sel:
                    continue
                batch.sel = sel
            yield batch

    def _vexec_DerivedScanPlan(self, plan: DerivedScanPlan) -> Iterator[RowBatch]:
        assert plan.child is not None
        pred = self._batch_pred(plan.filter, plan.binding)
        for batch in self._batches(plan.child):
            if pred is not None:
                sel = pred.apply(batch, batch.indices())
                if not sel:
                    continue
                batch = batch.narrow(sel)
            yield batch

    # ----------------------------------------------------- filter / project

    def _vexec_FilterPlan(self, plan: FilterPlan) -> Iterator[RowBatch]:
        assert plan.child is not None and plan.expr is not None
        pred = self._batch_pred(plan.expr, plan.child.binding)
        for batch in self._batches(plan.child):
            sel = pred.apply(batch, batch.indices())
            if sel:
                yield batch.narrow(sel)

    def _vexec_ProjectPlan(self, plan: ProjectPlan) -> Iterator[RowBatch]:
        assert plan.child is not None
        fns = [self._value_fn(e, plan.child.binding) for e in plan.exprs]
        for batch in self._batches(plan.child):
            sel = batch.indices()
            if not sel:
                continue
            yield RowBatch(list(zip(*[fn(batch, sel) for fn in fns])))

    # ------------------------------------------------------------- joins

    def _vexec_HashJoinPlan(self, plan: HashJoinPlan) -> Iterator[RowBatch]:
        assert plan.left is not None and plan.right is not None
        left_key_fns = [self._value_fn(k, plan.left.binding) for k in plan.left_keys]
        right_key_fns = [self._value_fn(k, plan.right.binding) for k in plan.right_keys]
        residual = self._batch_pred(plan.residual, plan.binding)

        table: dict[tuple, list[tuple]] = {}
        for batch in self._batches(plan.right):
            sel = batch.indices()
            if not sel:
                continue
            key_cols = [fn(batch, sel) for fn in right_key_fns]
            rows = batch.rows
            for pos, key in zip(sel, zip(*key_cols)):
                if any(k is None for k in key):
                    continue
                table.setdefault(key, []).append(rows[pos])

        for batch in self._batches(plan.left):
            sel = batch.indices()
            if not sel:
                continue
            key_cols = [fn(batch, sel) for fn in left_key_fns]
            rows = batch.rows
            combined: list[tuple] = []
            for pos, key in zip(sel, zip(*key_cols)):
                bucket = table.get(key)
                if not bucket:
                    continue
                lrow = rows[pos]
                for rrow in bucket:
                    combined.append(lrow + rrow)
            if not combined:
                continue
            out = RowBatch(combined)
            if residual is not None:
                keep = residual.apply(out, out.indices())
                if not keep:
                    continue
                out.sel = keep
            yield out

    # ---------------------------------------------------------- aggregation

    def _vexec_AggregatePlan(self, plan: AggregatePlan) -> Iterator[RowBatch]:
        assert plan.child is not None
        binding = plan.child.binding
        group_fns = [self._value_fn(e, binding) for e in plan.group_exprs]
        arg_fns = [
            self._value_fn(spec.arg, binding) if spec.arg is not None else None
            for spec in plan.aggregates
        ]
        groups: dict[tuple, list[_AggState]] = {}
        for batch in self._batches(plan.child):
            sel = batch.indices()
            if not sel:
                continue
            key_cols = [fn(batch, sel) for fn in group_fns]
            keys = (
                list(zip(*key_cols)) if key_cols else [()] * len(sel)
            )
            arg_cols = [
                fn(batch, sel) if fn is not None else None for fn in arg_fns
            ]
            for k, key in enumerate(keys):
                states = groups.get(key)
                if states is None:
                    states = [_AggState(spec) for spec in plan.aggregates]
                    groups[key] = states
                for state, col in zip(states, arg_cols):
                    if col is None:  # COUNT(*)
                        state.count += 1
                    else:
                        state.update_value(col[k])
        if not groups and not plan.group_exprs:
            yield RowBatch(
                [tuple(s.result() for s in (_AggState(sp) for sp in plan.aggregates))]
            )
            return
        rows = [
            key + tuple(s.result() for s in states) for key, states in groups.items()
        ]
        for start in range(0, len(rows), BATCH_ROWS):
            yield RowBatch(rows[start : start + BATCH_ROWS])

    # ------------------------------------------------- ordering and limits

    def _composite_keys(self, plan: SortPlan, rows: list[tuple]) -> list:
        """Per-row composite sort keys (DESC members reverse-wrapped);
        one stable sort on these equals the tuple path's multi-pass
        stable sorts."""
        assert plan.child is not None
        batch = RowBatch(rows)
        sel = batch.indices()
        cols = []
        for expr, asc in zip(plan.sort_exprs, plan.ascending):
            values = self._value_fn(expr, plan.child.binding)(batch, sel)
            if asc:
                cols.append([_sort_key(v) for v in values])
            else:
                cols.append([_ReverseKey(_sort_key(v)) for v in values])
        return list(zip(*cols))

    def _vexec_SortPlan(self, plan: SortPlan) -> Iterator[RowBatch]:
        assert plan.child is not None
        rows = self._collect_rows(plan.child)
        if not rows:
            return
        keys = self._composite_keys(plan, rows)
        order = sorted(range(len(rows)), key=keys.__getitem__)
        ordered = [rows[i] for i in order]
        for start in range(0, len(ordered), BATCH_ROWS):
            yield RowBatch(ordered[start : start + BATCH_ROWS])

    def _vexec_LimitPlan(self, plan: LimitPlan) -> Iterator[RowBatch]:
        # The planner only marks Sort+Limit pairs batchable: a bare
        # LIMIT terminates its child mid-stream, which cannot keep
        # batch-charged scan counters identical to the tuple oracle
        # (annotate_batch_capability forces those subtrees tuple-wise).
        child = plan.child
        if not isinstance(child, SortPlan) or child.child is None:
            raise ExecutionError(
                "bare LIMIT reached the batch executor; planner annotation broken"
            )
        if plan.limit <= 0:
            return
        # Fused top-k: never fully sort what a LIMIT will discard.
        rows = self._collect_rows(child.child)
        if not rows:
            return
        keys = self._composite_keys(child, rows)
        yield RowBatch(top_k_rows(rows, keys, plan.limit))

    def _vexec_DistinctPlan(self, plan: DistinctPlan) -> Iterator[RowBatch]:
        assert plan.child is not None
        seen: set[tuple] = set()
        for batch in self._batches(plan.child):
            out: list[tuple] = []
            for row in batch.take():
                if row not in seen:
                    seen.add(row)
                    out.append(row)
            if out:
                yield RowBatch(out)
