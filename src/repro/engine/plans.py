"""Physical plan nodes.

Plans are trees of dataclasses produced by the planner and interpreted
by the executor.  Every node carries its output :class:`RowBinding`
(column name -> tuple position) plus the optimizer's row/cost estimates
so ``EXPLAIN`` can render the tree without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.expr.eval import RowBinding
from repro.expr.nodes import Expr


@dataclass
class IndexProbe:
    """One index access: a point lookup or a range scan.

    ``eq_value`` set -> point probe; otherwise a (possibly half-open)
    range probe with inclusivity flags.
    """

    eq_value: Any = None
    is_point: bool = False
    lo: Any = None
    hi: Any = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    @classmethod
    def point(cls, value: Any) -> "IndexProbe":
        return cls(eq_value=value, is_point=True)

    @classmethod
    def range(cls, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True) -> "IndexProbe":
        return cls(lo=lo, hi=hi, lo_inclusive=lo_inclusive, hi_inclusive=hi_inclusive)

    def describe(self) -> str:
        if self.is_point:
            return f"= {self.eq_value!r}"
        lo_b = "[" if self.lo_inclusive else "("
        hi_b = "]" if self.hi_inclusive else ")"
        lo = "-inf" if self.lo is None else repr(self.lo)
        hi = "+inf" if self.hi is None else repr(self.hi)
        return f"{lo_b}{lo}, {hi}{hi_b}"


@dataclass
class PlanNode:
    """Base plan node; all concrete nodes extend this."""

    binding: RowBinding = field(default_factory=RowBinding)
    est_rows: float = 0.0
    est_cost: float = 0.0
    #: Planner annotation: this node may execute on the vectorized
    #: batch path (see :func:`annotate_batch_capability`).  Nodes left
    #: False run tuple-at-a-time; the executors mix freely per subtree.
    batchable: bool = False

    @property
    def node_name(self) -> str:
        return type(self).__name__.removesuffix("Plan")

    def children(self) -> list["PlanNode"]:
        return []

    def describe(self) -> str:
        return ""


@dataclass
class SeqScanPlan(PlanNode):
    table_name: str = ""
    alias: str = ""
    filter: Optional[Expr] = None

    def describe(self) -> str:
        text = f"{self.table_name} AS {self.alias}"
        if self.filter is not None:
            text += f" filter: {self.filter}"
        return text


@dataclass
class IndexScanPlan(PlanNode):
    table_name: str = ""
    alias: str = ""
    index_name: str = ""
    column: str = ""
    probes: list[IndexProbe] = field(default_factory=list)
    filter: Optional[Expr] = None  # residual predicate applied to fetched rows

    def describe(self) -> str:
        probe_text = " or ".join(p.describe() for p in self.probes)
        text = f"{self.table_name} AS {self.alias} using {self.index_name} ({self.column} {probe_text})"
        if self.filter is not None:
            text += f" filter: {self.filter}"
        return text


@dataclass
class BitmapOrPlan(PlanNode):
    """PostgreSQL-style BitmapOr + bitmap heap scan.

    Each arm probes one index; row ids are OR-ed into a single bitmap
    and the heap is visited in page order, each page once.
    """

    table_name: str = ""
    alias: str = ""
    arms: list[tuple[str, str, list[IndexProbe]]] = field(default_factory=list)
    # arms: (index_name, column, probes)
    filter: Optional[Expr] = None

    def describe(self) -> str:
        arm_text = "; ".join(
            f"{ix}({col} {' or '.join(p.describe() for p in probes)})"
            for ix, col, probes in self.arms
        )
        text = f"{self.table_name} AS {self.alias} bitmap-or [{arm_text}]"
        if self.filter is not None:
            text += f" filter: {self.filter}"
        return text


@dataclass
class CTEScanPlan(PlanNode):
    cte_name: str = ""
    alias: str = ""
    filter: Optional[Expr] = None

    def describe(self) -> str:
        text = f"{self.cte_name} AS {self.alias}"
        if self.filter is not None:
            text += f" filter: {self.filter}"
        return text


@dataclass
class DerivedScanPlan(PlanNode):
    child: Optional[PlanNode] = None
    alias: str = ""
    filter: Optional[Expr] = None

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child else []

    def describe(self) -> str:
        return f"AS {self.alias}" + (f" filter: {self.filter}" if self.filter else "")


@dataclass
class FilterPlan(PlanNode):
    child: Optional[PlanNode] = None
    expr: Optional[Expr] = None

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child else []

    def describe(self) -> str:
        return str(self.expr)


@dataclass
class ProjectPlan(PlanNode):
    child: Optional[PlanNode] = None
    exprs: list[Expr] = field(default_factory=list)
    names: list[str] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child else []

    def describe(self) -> str:
        return ", ".join(f"{e} AS {n}" for e, n in zip(self.exprs, self.names))


@dataclass
class HashJoinPlan(PlanNode):
    left: Optional[PlanNode] = None
    right: Optional[PlanNode] = None
    left_keys: list[Expr] = field(default_factory=list)
    right_keys: list[Expr] = field(default_factory=list)
    residual: Optional[Expr] = None

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        keys = ", ".join(f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys))
        text = f"on {keys}"
        if self.residual is not None:
            text += f" residual: {self.residual}"
        return text


@dataclass
class NLJoinPlan(PlanNode):
    left: Optional[PlanNode] = None
    right: Optional[PlanNode] = None
    condition: Optional[Expr] = None

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"on {self.condition}" if self.condition is not None else "cross"


@dataclass
class IndexNLJoinPlan(PlanNode):
    """Index nested-loop join: probe an inner table's index per outer row."""

    left: Optional[PlanNode] = None
    inner_table: str = ""
    inner_alias: str = ""
    inner_index: str = ""
    inner_column: str = ""
    outer_key: Optional[Expr] = None
    inner_filter: Optional[Expr] = None  # pushed single-table predicate on inner
    residual: Optional[Expr] = None  # join-level residual over combined rows

    def children(self) -> list[PlanNode]:
        return [self.left] if self.left else []

    def describe(self) -> str:
        text = (
            f"inner {self.inner_table} AS {self.inner_alias} "
            f"using {self.inner_index} ({self.inner_column} = {self.outer_key})"
        )
        if self.inner_filter is not None:
            text += f" inner-filter: {self.inner_filter}"
        if self.residual is not None:
            text += f" residual: {self.residual}"
        return text


@dataclass
class AggSpec:
    """One aggregate computation: func over an argument expression."""

    func: str  # count/sum/avg/min/max
    arg: Optional[Expr] = None  # None for COUNT(*)
    distinct: bool = False

    def describe(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


@dataclass
class AggregatePlan(PlanNode):
    """Hash aggregation. Output row = group keys then aggregate values."""

    child: Optional[PlanNode] = None
    group_exprs: list[Expr] = field(default_factory=list)
    aggregates: list[AggSpec] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child else []

    def describe(self) -> str:
        keys = ", ".join(str(e) for e in self.group_exprs) or "<all>"
        aggs = ", ".join(a.describe() for a in self.aggregates)
        return f"by {keys} computing [{aggs}]"


@dataclass
class SortPlan(PlanNode):
    child: Optional[PlanNode] = None
    sort_exprs: list[Expr] = field(default_factory=list)
    ascending: list[bool] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child else []

    def describe(self) -> str:
        return ", ".join(
            f"{e} {'ASC' if a else 'DESC'}" for e, a in zip(self.sort_exprs, self.ascending)
        )


@dataclass
class LimitPlan(PlanNode):
    child: Optional[PlanNode] = None
    limit: int = 0

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child else []

    def describe(self) -> str:
        return str(self.limit)


@dataclass
class DistinctPlan(PlanNode):
    child: Optional[PlanNode] = None

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child else []


@dataclass
class SetOpPlan(PlanNode):
    op: str = "UNION"  # UNION | EXCEPT | INTERSECT
    all: bool = False
    left: Optional[PlanNode] = None
    right: Optional[PlanNode] = None

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return self.op + (" ALL" if self.all else "")


# ----------------------------------------------------- batch capability

#: Node types the vectorized executor implements.  NLJoin/IndexNLJoin
#: and set operations stay tuple-at-a-time (random-access probe loops
#: and row-set algebra gain nothing from batching), as does any node
#: whose expressions hold correlated scalar subqueries.
_VECTOR_CAPABLE = (
    "SeqScanPlan",
    "IndexScanPlan",
    "BitmapOrPlan",
    "CTEScanPlan",
    "DerivedScanPlan",
    "FilterPlan",
    "ProjectPlan",
    "HashJoinPlan",
    "AggregatePlan",
    "SortPlan",
    "LimitPlan",
    "DistinctPlan",
)


def _node_exprs(plan: PlanNode) -> list[Expr]:
    exprs: list[Expr | None] = []
    if isinstance(plan, (SeqScanPlan, IndexScanPlan, BitmapOrPlan, CTEScanPlan, DerivedScanPlan)):
        exprs.append(plan.filter)
    if isinstance(plan, FilterPlan):
        exprs.append(plan.expr)
    if isinstance(plan, ProjectPlan):
        exprs.extend(plan.exprs)
    if isinstance(plan, HashJoinPlan):
        exprs.extend(plan.left_keys)
        exprs.extend(plan.right_keys)
        exprs.append(plan.residual)
    if isinstance(plan, AggregatePlan):
        exprs.extend(plan.group_exprs)
        exprs.extend(spec.arg for spec in plan.aggregates)
    if isinstance(plan, SortPlan):
        exprs.extend(plan.sort_exprs)
    return [e for e in exprs if e is not None]


def annotate_batch_capability(plan: PlanNode) -> None:
    """Mark each node of a plan tree as batch-capable or not.

    Called by the planner on every finished plan (including subquery
    plans), so executors can trust the annotation instead of
    re-deriving it per execution.  A node is batchable when the
    vectorized executor implements it and none of its own expressions
    require per-row correlated evaluation (scalar subqueries).  The
    flag is per node — a batchable parent happily consumes a
    tuple-at-a-time child and vice versa.

    One exception is subtree-wide: a bare LIMIT (no Sort beneath it)
    terminates its child mid-stream, and a batched producer charges
    scan counters a whole batch at a time — so everything under it
    must run tuple-at-a-time to keep per-tuple counters identical to
    the oracle.  A Sort+Limit pair consumes its input fully in both
    modes (fused top-k), so it stays batchable.
    """
    from repro.expr.analysis import walk
    from repro.expr.nodes import ScalarSubquery

    for child in plan.children():
        if child is not None:
            annotate_batch_capability(child)
    if isinstance(plan, LimitPlan) and not isinstance(plan.child, SortPlan):
        _clear_batchable(plan)
        return
    if type(plan).__name__ not in _VECTOR_CAPABLE:
        plan.batchable = False
        return
    if isinstance(plan, ProjectPlan) and plan.child is None:
        plan.batchable = False  # table-less constant row
        return
    for expr in _node_exprs(plan):
        if any(isinstance(node, ScalarSubquery) for node in walk(expr)):
            plan.batchable = False
            return
    plan.batchable = True


def _clear_batchable(plan: PlanNode) -> None:
    plan.batchable = False
    for child in plan.children():
        if child is not None:
            _clear_batchable(child)
