"""Plan execution.

A straightforward pull-based interpreter over the plan tree.  All I/O
accounting happens here: sequential page touches in SeqScan, random
page fetches in IndexScan and IndexNLJoin, page-ordered bitmap heap
visits in BitmapOr.  CTEs materialise once per query execution and are
shared by every reference, matching how Sieve's rewritten WITH clause
is meant to amortise the policy check (paper Section 5.3, footnote 8).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import ExecutionError, PlanError
from repro.db.counters import CounterSet
from repro.expr.analysis import columns_referenced, contains_subquery
from repro.expr.codegen import CodegenExprCompiler, CompiledExprCache
from repro.expr.eval import ExprCompiler, RowBinding
from repro.expr.nodes import (
    And,
    Arith,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    ScalarSubquery,
)
from repro.engine.plans import (
    AggregatePlan,
    AggSpec,
    BitmapOrPlan,
    CTEScanPlan,
    DerivedScanPlan,
    DistinctPlan,
    FilterPlan,
    HashJoinPlan,
    IndexNLJoinPlan,
    IndexProbe,
    IndexScanPlan,
    LimitPlan,
    NLJoinPlan,
    PlanNode,
    ProjectPlan,
    SeqScanPlan,
    SetOpPlan,
    SortPlan,
)
from repro.index.bitmap import RowIdBitmap
from repro.storage.catalog import Catalog


@dataclass
class QueryResult:
    """Materialised query output."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def column(self, name: str) -> list[Any]:
        try:
            pos = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"no output column {name!r}; have {self.columns}") from None
        return [row[pos] for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class Executor:
    """Executes plan trees against a catalog, charging counters.

    ``plan_subquery`` is a callback (provided by the Database facade)
    that plans a Query AST — used for scalar/IN subqueries discovered
    during expression compilation.
    """

    def __init__(
        self,
        catalog: Catalog,
        counters: CounterSet,
        udfs: dict[str, Callable[..., Any]],
        plan_subquery: Callable[[Any], PlanNode] | None = None,
        fn_cache: CompiledExprCache | None = None,
        use_codegen: bool = True,
    ):
        self.catalog = catalog
        self.counters = counters
        self.udfs = udfs
        self.plan_subquery = plan_subquery
        # Cross-execution cache of compiled predicate/projection
        # callables (owned by the Database facade); executors come and
        # go per query, compiled expressions should not.
        self.fn_cache = fn_cache
        self.use_codegen = use_codegen
        self._cte_rows: dict[str, list[tuple]] = {}
        self._in_subquery_cache: dict[int, frozenset] = {}
        self._scalar_cache: dict[tuple, Any] = {}

    # -------------------------------------------------------------- entry

    def run(self, root: PlanNode, cte_plans: dict[str, PlanNode]) -> QueryResult:
        self._cte_rows = {}
        for name, plan in cte_plans.items():
            self._cte_rows[name] = list(self._iter(plan))
        rows = list(self._iter(root))
        self.counters.tuples_output += len(rows)
        return QueryResult(columns=root.binding.column_names, rows=rows)

    # ---------------------------------------------------------- dispatching

    def _iter(self, plan: PlanNode) -> Iterator[tuple]:
        method = getattr(self, f"_exec_{type(plan).__name__}", None)
        if method is None:
            raise ExecutionError(f"no executor for {type(plan).__name__}")
        return method(plan)

    def _compiler(self, binding: RowBinding) -> ExprCompiler:
        compiler_cls = CodegenExprCompiler if self.use_codegen else ExprCompiler
        return compiler_cls(
            binding,
            udfs=self.udfs,
            subquery_fn=self._make_scalar_subquery_fn(binding),
            in_subquery_fn=self._eval_in_subquery,
            counters=self.counters,
        )

    def _row_fn(self, expr: Expr, binding: RowBinding):
        """Compile one expression to a row callable, reusing the shared
        compiled-function cache across executions.

        Expressions containing subqueries are compiled fresh every
        time: IN memberships are data dependent and scalar subqueries
        capture this executor's plan/caches."""
        cache = self.fn_cache
        if cache is None:
            return self._compiler(binding).compile(expr)
        extra = (binding.cache_key(), "row", self.use_codegen)
        fn = cache.lookup(expr, extra, self.counters)
        if fn is None:
            fn = self._compiler(binding).compile(expr)
            if not contains_subquery(expr):
                cache.store(expr, extra, fn)
        return fn

    def _compile_filter(self, expr: Expr | None, binding: RowBinding):
        if expr is None:
            return None
        return self._row_fn(expr, binding)

    # ------------------------------------------------------------- scans

    def _exec_SeqScanPlan(self, plan: SeqScanPlan) -> Iterator[tuple]:
        table = self.catalog.table(plan.table_name)
        pred = self._compile_filter(plan.filter, plan.binding)
        counters = self.counters
        page_size = table.page_size
        current_page = -1
        for rowid, row in table.scan():
            page = rowid // page_size
            if page != current_page:
                counters.pages_sequential += 1
                current_page = page
            counters.tuples_scanned += 1
            if pred is not None:
                counters.predicate_evals += 1
                if not pred(row):
                    continue
            yield row

    def _probe_rowids(self, index, probes: list[IndexProbe]) -> Iterator[int]:
        before = index.node_visits
        for probe in probes:
            if probe.is_point:
                yield from index.search_eq(probe.eq_value)
            else:
                yield from index.search_range(
                    probe.lo, probe.hi, probe.lo_inclusive, probe.hi_inclusive
                )
        self.counters.index_node_visits += index.node_visits - before

    def _exec_IndexScanPlan(self, plan: IndexScanPlan) -> Iterator[tuple]:
        table = self.catalog.table(plan.table_name)
        index = self.catalog.index_by_name(plan.table_name, plan.index_name)
        pred = self._compile_filter(plan.filter, plan.binding)
        counters = self.counters
        page_size = table.page_size
        seen: set[int] = set()
        pages_touched: set[int] = set()  # per-scan buffer-pool model
        for rowid in self._probe_rowids(index, plan.probes):
            if rowid in seen:
                continue
            seen.add(rowid)
            row = table.get(rowid)
            if row is None:
                continue
            page = rowid // page_size
            if page not in pages_touched:
                pages_touched.add(page)
                counters.pages_random += 1
            counters.tuples_scanned += 1
            if pred is not None:
                counters.predicate_evals += 1
                if not pred(row):
                    continue
            yield row

    def _exec_BitmapOrPlan(self, plan: BitmapOrPlan) -> Iterator[tuple]:
        table = self.catalog.table(plan.table_name)
        counters = self.counters
        bitmap = RowIdBitmap()
        for index_name, _column, probes in plan.arms:
            index = self.catalog.index_by_name(plan.table_name, index_name)
            # One bitmap per arm, OR-ed in a single big-int op (per-rowid
            # add would re-allocate the accumulated bitmap every bit).
            bitmap = bitmap | RowIdBitmap.from_rowids(
                self._probe_rowids(index, probes)
            )
        counters.pages_bitmap += len(bitmap.pages(table.page_size))
        pred = self._compile_filter(plan.filter, plan.binding)
        for rowid in bitmap.iter_sorted():
            row = table.get(rowid)
            if row is None:
                continue
            counters.tuples_scanned += 1
            if pred is not None:
                counters.predicate_evals += 1
                if not pred(row):
                    continue
            yield row

    def _exec_CTEScanPlan(self, plan: CTEScanPlan) -> Iterator[tuple]:
        key = plan.cte_name.lower()
        if key not in self._cte_rows:
            raise ExecutionError(f"CTE {plan.cte_name!r} was not materialised")
        pred = self._compile_filter(plan.filter, plan.binding)
        counters = self.counters
        for row in self._cte_rows[key]:
            counters.tuples_scanned += 1
            if pred is not None:
                counters.predicate_evals += 1
                if not pred(row):
                    continue
            yield row

    def _exec_DerivedScanPlan(self, plan: DerivedScanPlan) -> Iterator[tuple]:
        assert plan.child is not None
        pred = self._compile_filter(plan.filter, plan.binding)
        for row in self._iter(plan.child):
            if pred is not None:
                self.counters.predicate_evals += 1
                if not pred(row):
                    continue
            yield row

    # ----------------------------------------------------- filter / project

    def _exec_FilterPlan(self, plan: FilterPlan) -> Iterator[tuple]:
        assert plan.child is not None and plan.expr is not None
        pred = self._row_fn(plan.expr, plan.child.binding)
        counters = self.counters
        for row in self._iter(plan.child):
            counters.predicate_evals += 1
            if pred(row):
                yield row

    def _exec_ProjectPlan(self, plan: ProjectPlan) -> Iterator[tuple]:
        if plan.child is None:
            fns = [self._row_fn(e, RowBinding()) for e in plan.exprs]
            yield tuple(fn(()) for fn in fns)
            return
        fns = [self._row_fn(e, plan.child.binding) for e in plan.exprs]
        for row in self._iter(plan.child):
            yield tuple(fn(row) for fn in fns)

    # ------------------------------------------------------------- joins

    def _exec_HashJoinPlan(self, plan: HashJoinPlan) -> Iterator[tuple]:
        assert plan.left is not None and plan.right is not None
        left_key_fns = [self._row_fn(k, plan.left.binding) for k in plan.left_keys]
        right_key_fns = [self._row_fn(k, plan.right.binding) for k in plan.right_keys]
        residual = self._compile_filter(plan.residual, plan.binding)

        table: dict[tuple, list[tuple]] = {}
        for rrow in self._iter(plan.right):
            key = tuple(fn(rrow) for fn in right_key_fns)
            if any(k is None for k in key):
                continue
            table.setdefault(key, []).append(rrow)

        counters = self.counters
        for lrow in self._iter(plan.left):
            key = tuple(fn(lrow) for fn in left_key_fns)
            bucket = table.get(key)
            if not bucket:
                continue
            for rrow in bucket:
                combined = lrow + rrow
                if residual is not None:
                    counters.predicate_evals += 1
                    if not residual(combined):
                        continue
                yield combined

    def _exec_NLJoinPlan(self, plan: NLJoinPlan) -> Iterator[tuple]:
        assert plan.left is not None and plan.right is not None
        condition = self._compile_filter(plan.condition, plan.binding)
        right_rows = list(self._iter(plan.right))
        counters = self.counters
        for lrow in self._iter(plan.left):
            for rrow in right_rows:
                combined = lrow + rrow
                if condition is not None:
                    counters.predicate_evals += 1
                    if not condition(combined):
                        continue
                yield combined

    def _exec_IndexNLJoinPlan(self, plan: IndexNLJoinPlan) -> Iterator[tuple]:
        assert plan.left is not None and plan.outer_key is not None
        table = self.catalog.table(plan.inner_table)
        index = self.catalog.index_by_name(plan.inner_table, plan.inner_index)
        outer_fn = self._row_fn(plan.outer_key, plan.left.binding)
        inner_binding = RowBinding.for_table(plan.inner_alias, table.schema.names)
        inner_pred = self._compile_filter(plan.inner_filter, inner_binding)
        residual = self._compile_filter(plan.residual, plan.binding)
        counters = self.counters
        page_size = table.page_size
        pages_touched: set[int] = set()  # per-join buffer-pool model
        for lrow in self._iter(plan.left):
            key = outer_fn(lrow)
            if key is None:
                continue
            before = index.node_visits
            rowids = index.search_eq(key)
            counters.index_node_visits += index.node_visits - before
            for rowid in rowids:
                rrow = table.get(rowid)
                if rrow is None:
                    continue
                page = rowid // page_size
                if page not in pages_touched:
                    pages_touched.add(page)
                    counters.pages_random += 1
                counters.tuples_scanned += 1
                if inner_pred is not None:
                    counters.predicate_evals += 1
                    if not inner_pred(rrow):
                        continue
                combined = lrow + rrow
                if residual is not None:
                    counters.predicate_evals += 1
                    if not residual(combined):
                        continue
                yield combined

    # ---------------------------------------------------------- aggregation

    def _exec_AggregatePlan(self, plan: AggregatePlan) -> Iterator[tuple]:
        assert plan.child is not None
        binding = plan.child.binding
        group_fns = [self._row_fn(e, binding) for e in plan.group_exprs]
        arg_fns = [
            self._row_fn(spec.arg, binding) if spec.arg is not None else None
            for spec in plan.aggregates
        ]
        groups: dict[tuple, list[_AggState]] = {}
        for row in self._iter(plan.child):
            key = tuple(fn(row) for fn in group_fns)
            states = groups.get(key)
            if states is None:
                states = [_AggState(spec) for spec in plan.aggregates]
                groups[key] = states
            for state, arg_fn in zip(states, arg_fns):
                state.update(row, arg_fn)
        if not groups and not plan.group_exprs:
            # Global aggregate over empty input still emits one row.
            states = [_AggState(spec) for spec in plan.aggregates]
            yield tuple(s.result() for s in states)
            return
        for key, states in groups.items():
            yield key + tuple(s.result() for s in states)

    # ------------------------------------------------- ordering and set ops

    def _exec_SortPlan(self, plan: SortPlan) -> Iterator[tuple]:
        assert plan.child is not None
        fns = [self._row_fn(e, plan.child.binding) for e in plan.sort_exprs]
        rows = list(self._iter(plan.child))
        # Stable multi-key sort: apply keys from least to most significant.
        for fn, asc in reversed(list(zip(fns, plan.ascending))):
            rows.sort(key=lambda r: _sort_key(fn(r)), reverse=not asc)
        yield from rows

    def _exec_LimitPlan(self, plan: LimitPlan) -> Iterator[tuple]:
        assert plan.child is not None
        remaining = plan.limit
        if remaining <= 0:
            return
        child = plan.child
        if isinstance(child, SortPlan) and child.child is not None:
            # Fused top-k: a LIMIT directly above a Sort keeps a heap of
            # the best `limit` rows instead of fully sorting the input.
            # Equivalent to the unfused pair: one stable sort on the
            # composite direction-aware key equals the multi-pass stable
            # sorts, and nsmallest's index tiebreaker keeps stability.
            fns = [self._row_fn(e, child.child.binding) for e in child.sort_exprs]
            ascending = child.ascending

            def key_of(row: tuple) -> tuple:
                return tuple(
                    _sort_key(fn(row)) if asc else _ReverseKey(_sort_key(fn(row)))
                    for fn, asc in zip(fns, ascending)
                )

            best = heapq.nsmallest(
                remaining,
                (
                    (key_of(row), i, row)
                    for i, row in enumerate(self._iter(child.child))
                ),
            )
            for _key, _i, row in best:
                yield row
            return
        for row in self._iter(child):
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def _exec_DistinctPlan(self, plan: DistinctPlan) -> Iterator[tuple]:
        assert plan.child is not None
        seen: set[tuple] = set()
        for row in self._iter(plan.child):
            if row in seen:
                continue
            seen.add(row)
            yield row

    def _exec_SetOpPlan(self, plan: SetOpPlan) -> Iterator[tuple]:
        assert plan.left is not None and plan.right is not None
        if plan.op == "UNION":
            if plan.all:
                yield from self._iter(plan.left)
                yield from self._iter(plan.right)
                return
            seen: set[tuple] = set()
            for side in (plan.left, plan.right):
                for row in self._iter(side):
                    if row not in seen:
                        seen.add(row)
                        yield row
            return
        right_set = set(self._iter(plan.right))
        if plan.op == "EXCEPT":
            emitted: set[tuple] = set()
            for row in self._iter(plan.left):
                if row not in right_set and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        # INTERSECT
        emitted = set()
        for row in self._iter(plan.left):
            if row in right_set and row not in emitted:
                emitted.add(row)
                yield row

    # ------------------------------------------------------------ subqueries

    def _eval_in_subquery(self, query_ast: Any) -> frozenset:
        key = id(query_ast)
        cached = self._in_subquery_cache.get(key)
        if cached is not None:
            return cached
        if self.plan_subquery is None:
            raise ExecutionError("subquery planning is not available here")
        plan = self.plan_subquery(query_ast)
        rows = list(self._iter(plan))
        if rows and len(rows[0]) != 1:
            raise ExecutionError("IN subquery must produce exactly one column")
        members = frozenset(row[0] for row in rows)
        self._in_subquery_cache[key] = members
        return members

    def _make_scalar_subquery_fn(self, outer_binding: RowBinding):
        def scalar_fn(query_ast: Any, outer_row: tuple) -> Any:
            return self._eval_scalar_subquery(query_ast, outer_binding, outer_row)

        return scalar_fn

    def _eval_scalar_subquery(
        self, query_ast: Any, outer_binding: RowBinding, outer_row: tuple
    ) -> Any:
        outer_refs = self._correlated_refs(query_ast, outer_binding)
        key_vals = tuple(outer_row[outer_binding.resolve(r)] for r in outer_refs)
        cache_key = (id(query_ast), key_vals)
        if cache_key in self._scalar_cache:
            return self._scalar_cache[cache_key]
        bound_ast = (
            _substitute_refs(
                query_ast,
                {r: Literal(v) for r, v in zip(outer_refs, key_vals)},
            )
            if outer_refs
            else query_ast
        )
        if self.plan_subquery is None:
            raise ExecutionError("subquery planning is not available here")
        plan = self.plan_subquery(bound_ast)
        rows = list(self._iter(plan))
        if len(rows) > 1:
            raise ExecutionError("scalar subquery produced more than one row")
        if rows and len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must produce exactly one column")
        value = rows[0][0] if rows else None
        self._scalar_cache[cache_key] = value
        return value

    def _correlated_refs(self, query_ast: Any, outer_binding: RowBinding) -> list[ColumnRef]:
        """Column refs inside the subquery that resolve in the outer row.

        A ref is treated as correlated when it does not resolve against
        the subquery's own FROM tables but does resolve in the outer
        binding.
        """
        from repro.sql.ast import Select, TableRef  # local import to avoid cycle

        body = query_ast.body if hasattr(query_ast, "body") else query_ast
        if not isinstance(body, Select):
            return []
        own: set[tuple[str | None, str]] = set()
        own_aliases: set[str] = set()
        for item in body.from_items:
            if isinstance(item, TableRef) and self.catalog.has_table(item.name):
                schema = self.catalog.table(item.name).schema
                alias = (item.alias or item.name).lower()
                own_aliases.add(alias)
                for col in schema.names:
                    own.add((alias, col.lower()))
                    own.add((None, col.lower()))
        refs: list[ColumnRef] = []
        exprs: list[Expr] = []
        if body.where is not None:
            exprs.append(body.where)
        for sel_item in body.items:
            exprs.append(sel_item.expr)
        for expr in exprs:
            for ref in columns_referenced(expr):
                key = (ref.table.lower() if ref.table else None, ref.name.lower())
                if key in own:
                    continue
                if ref.table is not None and ref.table.lower() in own_aliases:
                    continue
                if outer_binding.has(ref) and ref not in refs:
                    refs.append(ref)
        return refs


def _sort_key(value: Any) -> tuple:
    """Total order with None first and mixed types grouped by type name."""
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "bool", int(value))
    if isinstance(value, (int, float)):
        return (1, "num", value)
    return (1, type(value).__name__, value)


class _ReverseKey:
    """Inverts ordering of a wrapped sort key (DESC members of the
    composite top-k key, shared by both executors)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseKey) and other.key == self.key


class _AggState:
    """Incremental state for one aggregate computation."""

    __slots__ = ("spec", "count", "total", "min", "max", "distinct")

    def __init__(self, spec: AggSpec):
        self.spec = spec
        self.count = 0
        self.total: Any = None
        self.min: Any = None
        self.max: Any = None
        self.distinct: set | None = set() if spec.distinct else None

    def update(self, row: tuple, arg_fn) -> None:
        if arg_fn is None:  # COUNT(*)
            self.count += 1
            return
        self.update_value(arg_fn(row))

    def update_value(self, value: Any) -> None:
        """Fold one already-computed argument value (batch path)."""
        if value is None:
            return
        if self.distinct is not None:
            if value in self.distinct:
                return
            self.distinct.add(value)
        self.count += 1
        if self.total is None:
            self.total = value
        else:
            self.total = self.total + value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def result(self) -> Any:
        func = self.spec.func
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "avg":
            return None if self.count == 0 else self.total / self.count
        if func == "min":
            return self.min
        if func == "max":
            return self.max
        raise ExecutionError(f"unknown aggregate {func!r}")


def _substitute_refs(query_ast: Any, subs: dict[ColumnRef, Literal]) -> Any:
    """Clone a subquery AST replacing correlated refs with literals."""
    from repro.sql.ast import Query, Select, SelectItem

    body = query_ast.body if isinstance(query_ast, Query) else query_ast
    if not isinstance(body, Select):
        raise ExecutionError("correlated set-operation subqueries are not supported")

    def sub_expr(expr: Expr) -> Expr:
        if isinstance(expr, ColumnRef):
            return subs.get(expr, expr)
        if isinstance(expr, And):
            return And(tuple(sub_expr(c) for c in expr.children))
        if isinstance(expr, Or):
            return Or(tuple(sub_expr(c) for c in expr.children))
        if isinstance(expr, Not):
            return Not(sub_expr(expr.child))
        if isinstance(expr, Comparison):
            return Comparison(expr.op, sub_expr(expr.left), sub_expr(expr.right))
        if isinstance(expr, Arith):
            return Arith(expr.op, sub_expr(expr.left), sub_expr(expr.right))
        if isinstance(expr, Between):
            return Between(
                sub_expr(expr.expr), sub_expr(expr.low), sub_expr(expr.high), expr.negated
            )
        if isinstance(expr, InList):
            return InList(
                sub_expr(expr.expr), tuple(sub_expr(i) for i in expr.items), expr.negated
            )
        if isinstance(expr, IsNull):
            return IsNull(sub_expr(expr.child))
        if isinstance(expr, FuncCall):
            return FuncCall(expr.name, tuple(sub_expr(a) for a in expr.args), expr.distinct)
        return expr

    new_select = Select(
        items=[SelectItem(sub_expr(i.expr), i.alias) for i in body.items],
        from_items=list(body.from_items),
        joins=list(body.joins),
        where=sub_expr(body.where) if body.where is not None else None,
        group_by=[sub_expr(e) for e in body.group_by],
        having=sub_expr(body.having) if body.having is not None else None,
        order_by=list(body.order_by),
        limit=body.limit,
        distinct=body.distinct,
    )
    if isinstance(query_ast, Query):
        return Query(body=new_select, ctes=list(query_ast.ctes))
    return new_select
