"""repro — a full reproduction of SIEVE (VLDB 2020).

Sieve is a middleware that enforces very large corpora of fine-grained
access-control policies during query execution by (1) compiling
policies into index-friendly *guarded expressions* and (2) filtering
the policies checked per tuple via query metadata and a Δ (delta) UDF.

Public entry points:

* :func:`repro.db.connect` — the bundled relational engine (MySQL /
  PostgreSQL personalities).
* :class:`repro.core.Sieve` — the middleware itself.
* :mod:`repro.datasets` — TIPPERS and Mall synthetic dataset/policy
  generators used by the paper's evaluation.
"""

__version__ = "1.0.0"

from repro.db import connect, Database

__all__ = ["connect", "Database", "__version__"]
