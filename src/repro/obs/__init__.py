"""Observability tier: phase tracing, unified metrics, selectivity feedback.

Three pieces, all pull- or callback-based so the enforcement hot path
stays allocation-light:

* :mod:`repro.obs.tracing` — per-request span trees (``Tracer`` /
  ``Span``) threaded from :meth:`Sieve.execute
  <repro.core.middleware.Sieve.execute>` through guard resolution,
  strategy choice, rewrite, planning and execution, plus the
  :class:`SlowQueryLog` that keeps full span trees for outliers;
* :mod:`repro.obs.metrics` + :mod:`repro.obs.export` — one
  :class:`MetricsRegistry` unifying the deterministic
  :class:`~repro.db.counters.CounterSet`, ``ServiceStats``,
  ``ClusterStats`` and cache stats behind Prometheus text exposition
  and JSON snapshots;
* :mod:`repro.obs.profile` — :class:`SelectivityProfiler`, which turns
  finished traces into per-guard *observed* selectivities and cache
  hit rates and feeds them back through
  :meth:`SieveCostModel.observe <repro.core.cost_model.SieveCostModel.observe>`
  so :mod:`repro.core.strategy` prefers measured over estimated rows;
* :mod:`repro.obs.histogram` — :class:`LatencyHistogram`, the
  log-bucketed, exactly-mergeable latency population behind every
  serving-tier summary (error-bounded quantiles, exact cross-shard
  merges);
* :mod:`repro.obs.slo` + :mod:`repro.obs.health` — declarative
  :class:`SLO` targets evaluated as multi-window burn rates
  (:class:`BurnRateMonitor`) and per-component :class:`HealthRegistry`
  checks rolled up to healthy/degraded/unhealthy; together they drive
  the serving tier's adaptive shedding and the cluster's health-aware
  routing.

See ``docs/ARCHITECTURE.md`` §11 for the span taxonomy and exposition
formats and §12 for histogram buckets, burn-rate windows, and the
shedding/routing feedback loop.
"""

from repro.obs.health import (
    ComponentHealth,
    HealthRegistry,
    HealthReport,
    HealthStatus,
    cluster_health,
    server_health,
)
from repro.obs.histogram import LatencyHistogram
from repro.obs.metrics import (
    Metric,
    MetricsRegistry,
    Sample,
    register_counterset,
    weighted_counter_names,
)
from repro.obs.slo import SLO, AlertEvent, BurnRateMonitor, SLOSample, SLOState
from repro.obs.profile import SelectivityProfiler
from repro.obs.tracing import (
    SlowQueryLog,
    Span,
    Tracer,
    attributed_fraction,
    current_span,
    current_trace_id,
    span,
)

__all__ = [
    "AlertEvent",
    "BurnRateMonitor",
    "ComponentHealth",
    "HealthRegistry",
    "HealthReport",
    "HealthStatus",
    "LatencyHistogram",
    "Metric",
    "MetricsRegistry",
    "SLO",
    "SLOSample",
    "SLOState",
    "Sample",
    "SelectivityProfiler",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "attributed_fraction",
    "cluster_health",
    "current_span",
    "current_trace_id",
    "register_counterset",
    "server_health",
    "span",
    "weighted_counter_names",
]
