"""Observability tier: phase tracing, unified metrics, selectivity feedback.

Three pieces, all pull- or callback-based so the enforcement hot path
stays allocation-light:

* :mod:`repro.obs.tracing` — per-request span trees (``Tracer`` /
  ``Span``) threaded from :meth:`Sieve.execute
  <repro.core.middleware.Sieve.execute>` through guard resolution,
  strategy choice, rewrite, planning and execution, plus the
  :class:`SlowQueryLog` that keeps full span trees for outliers;
* :mod:`repro.obs.metrics` + :mod:`repro.obs.export` — one
  :class:`MetricsRegistry` unifying the deterministic
  :class:`~repro.db.counters.CounterSet`, ``ServiceStats``,
  ``ClusterStats`` and cache stats behind Prometheus text exposition
  and JSON snapshots;
* :mod:`repro.obs.profile` — :class:`SelectivityProfiler`, which turns
  finished traces into per-guard *observed* selectivities and cache
  hit rates and feeds them back through
  :meth:`SieveCostModel.observe <repro.core.cost_model.SieveCostModel.observe>`
  so :mod:`repro.core.strategy` prefers measured over estimated rows.

See ``docs/ARCHITECTURE.md`` §11 for the span taxonomy and exposition
formats.
"""

from repro.obs.metrics import (
    Metric,
    MetricsRegistry,
    Sample,
    register_counterset,
    weighted_counter_names,
)
from repro.obs.profile import SelectivityProfiler
from repro.obs.tracing import (
    SlowQueryLog,
    Span,
    Tracer,
    attributed_fraction,
    current_span,
    current_trace_id,
    span,
)

__all__ = [
    "Metric",
    "MetricsRegistry",
    "Sample",
    "SelectivityProfiler",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "attributed_fraction",
    "current_span",
    "current_trace_id",
    "register_counterset",
    "span",
    "weighted_counter_names",
]
