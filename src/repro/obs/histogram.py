"""Log-bucketed, exactly-mergeable latency histograms.

The serving tier originally kept a bounded reservoir of raw latency
samples per server and summarized it on demand.  That breaks down at
cluster scale: percentiles of a merged population are *not*
recoverable from per-shard percentiles, so ``ClusterStats`` could only
count-weight per-shard quantiles — exact for homogeneous shards,
silently wrong the moment one shard is slow (precisely the case the
health tier must detect).  A :class:`LatencyHistogram` fixes this with
the standard log-bucketed design (HdrHistogram / DDSketch family):

* **buckets** — bucket 0 holds every value ``<= base_ms``; bucket
  ``i >= 1`` covers ``(base_ms * growth**(i-1), base_ms * growth**i]``.
  Counts live in a sparse dict, so memory is O(distinct buckets), not
  O(samples), and never ages out.
* **exact merging** — two histograms with the same ``(base_ms,
  growth)`` merge by adding bucket counts.  ``merge(split(xs)) ==
  histogram(xs)`` *exactly*, bucket for bucket (and hence identical
  quantiles) — the property the cluster's latency roll-up and the SLO
  windowing lean on.  The one caveat: ``sum_ms`` is a float
  accumulator, so merged vs direct sums agree only up to float
  addition order (last-ulp, not bucket, differences).
* **error-bounded quantiles** — a bucket reports its geometric
  midpoint ``sqrt(lo * hi)``, so any reported value is within a
  relative factor ``sqrt(growth)`` of the true sample:
  ``|reported - v| / v <= sqrt(growth) - 1`` (:attr:`relative_error`,
  ~2.5% at the default ``growth = 1.05``), plus an absolute
  ``base_ms`` floor for sub-``base_ms`` samples (1 microsecond by
  default — noise at serving latencies).  ``count``/``sum``/``min``/
  ``max`` (hence the mean) are exact.

:meth:`percentile` mirrors :func:`repro.service.server.percentile`
semantics — ``q`` in 0..100, clamped, 0.0 when empty, linear
interpolation between the neighboring ranks' bucket representatives —
so the histogram-backed ``LatencySummary`` agrees with the reservoir
one within the documented bound (pinned by
``tests/test_obs_histogram.py``'s hypothesis property).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

__all__ = ["LatencyHistogram", "DEFAULT_GROWTH", "DEFAULT_BASE_MS"]

#: Per-bucket growth factor: ~2.5% worst-case relative quantile error.
DEFAULT_GROWTH = 1.05
#: Resolution floor, in milliseconds (1 microsecond).
DEFAULT_BASE_MS = 1e-3


class LatencyHistogram:
    """Sparse log-bucketed histogram of latencies in milliseconds."""

    __slots__ = (
        "base_ms",
        "growth",
        "_log_growth",
        "_counts",
        "count",
        "sum_ms",
        "min_ms",
        "max_ms",
    )

    def __init__(self, growth: float = DEFAULT_GROWTH, base_ms: float = DEFAULT_BASE_MS):
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        if base_ms <= 0.0:
            raise ValueError("base_ms must be positive")
        self.base_ms = base_ms
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: dict[int, int] = {}
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms = math.inf
        self.max_ms = 0.0

    # -------------------------------------------------------------- recording

    def record_ms(self, ms: float) -> None:
        """Record one latency (milliseconds).  One dict increment."""
        idx = self._index(ms)
        self._counts[idx] = self._counts.get(idx, 0) + 1
        self.count += 1
        self.sum_ms += ms
        if ms < self.min_ms:
            self.min_ms = ms
        if ms > self.max_ms:
            self.max_ms = ms

    def record_seconds(self, seconds: float) -> None:
        self.record_ms(seconds * 1000.0)

    def _index(self, ms: float) -> int:
        if ms <= self.base_ms:
            return 0
        # ceil puts an exact boundary value base*g**k into bucket k
        # (buckets are lower-open, upper-closed).  The tiny epsilon
        # keeps float log of an exact boundary from landing one up.
        return max(1, math.ceil(math.log(ms / self.base_ms) / self._log_growth - 1e-9))

    # ---------------------------------------------------------------- merging

    def add(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Merge ``other`` into self (exact).  Same bucketing required."""
        if (other.base_ms, other.growth) != (self.base_ms, self.growth):
            raise ValueError(
                "cannot merge histograms with different bucketing: "
                f"({self.base_ms}, {self.growth}) vs ({other.base_ms}, {other.growth})"
            )
        for idx, n in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + n
        self.count += other.count
        self.sum_ms += other.sum_ms
        self.min_ms = min(self.min_ms, other.min_ms)
        self.max_ms = max(self.max_ms, other.max_ms)
        return self

    @classmethod
    def merge(cls, histograms: "Iterable[LatencyHistogram]") -> "LatencyHistogram":
        """One histogram holding every input's population, exactly."""
        histograms = list(histograms)
        if not histograms:
            return cls()
        out = histograms[0].copy()
        for hist in histograms[1:]:
            out.add(hist)
        return out

    def copy(self) -> "LatencyHistogram":
        out = LatencyHistogram(growth=self.growth, base_ms=self.base_ms)
        out._counts = dict(self._counts)
        out.count = self.count
        out.sum_ms = self.sum_ms
        out.min_ms = self.min_ms
        out.max_ms = self.max_ms
        return out

    # -------------------------------------------------------------- quantiles

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantile error: ``sqrt(growth) - 1``."""
        return math.sqrt(self.growth) - 1.0

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    def _representative(self, idx: int) -> float:
        if idx == 0:
            value = self.base_ms
        else:
            # Geometric midpoint of (base*g**(i-1), base*g**i].
            value = self.base_ms * self.growth ** (idx - 0.5)
        # Clamping into the exact observed range only reduces error.
        return min(max(value, self.min_ms), self.max_ms)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100), linearly interpolated between
        the neighboring ranks' bucket representatives; 0.0 when empty."""
        if not self.count:
            return 0.0
        q = min(100.0, max(0.0, q))
        rank = (q / 100.0) * (self.count - 1)
        lo = int(rank)
        hi = min(lo + 1, self.count - 1)
        frac = rank - lo
        lo_value = hi_value = None
        cumulative = 0
        for idx in sorted(self._counts):
            cumulative += self._counts[idx]
            if lo_value is None and cumulative > lo:
                lo_value = self._representative(idx)
            if cumulative > hi:
                hi_value = self._representative(idx)
                break
        assert lo_value is not None and hi_value is not None
        return lo_value * (1.0 - frac) + hi_value * frac

    def count_over(self, threshold_ms: float) -> int:
        """How many recorded samples exceeded ``threshold_ms``,
        counting each bucket by its representative value (so the answer
        is exact except for the single bucket straddling the threshold,
        where it errs by at most that bucket's population)."""
        if not self.count:
            return 0
        return sum(
            n for idx, n in self._counts.items() if self._representative(idx) > threshold_ms
        )

    # ------------------------------------------------------------- exposition

    def summary_dict(self) -> dict[str, float]:
        """The ``LatencySummary.to_dict()`` shape, histogram-derived."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
        }

    def to_dict(self) -> dict[str, object]:
        """JSON/wire form; :meth:`from_dict` round-trips it exactly."""
        return {
            "base_ms": self.base_ms,
            "growth": self.growth,
            "count": self.count,
            "sum_ms": self.sum_ms,
            "min_ms": self.min_ms if self.count else None,
            "max_ms": self.max_ms if self.count else None,
            "counts": {str(idx): n for idx, n in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LatencyHistogram":
        out = cls(growth=float(data["growth"]), base_ms=float(data["base_ms"]))
        out._counts = {int(k): int(v) for k, v in dict(data["counts"]).items()}  # type: ignore[arg-type]
        out.count = int(data["count"])  # type: ignore[arg-type]
        out.sum_ms = float(data["sum_ms"])  # type: ignore[arg-type]
        out.min_ms = math.inf if data.get("min_ms") is None else float(data["min_ms"])  # type: ignore[arg-type]
        out.max_ms = 0.0 if data.get("max_ms") is None else float(data["max_ms"])  # type: ignore[arg-type]
        return out

    def buckets(self) -> list[tuple[float, float, int]]:
        """(lower_ms, upper_ms, count) per populated bucket, ascending
        — the text dashboard's bar-chart source."""
        out = []
        for idx in sorted(self._counts):
            if idx == 0:
                lower, upper = 0.0, self.base_ms
            else:
                lower = self.base_ms * self.growth ** (idx - 1)
                upper = self.base_ms * self.growth**idx
            out.append((lower, upper, self._counts[idx]))
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, mean_ms={self.mean_ms:.3f}, "
            f"p99_ms={self.percentile(99):.3f}, buckets={len(self._counts)})"
        )
