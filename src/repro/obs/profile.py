"""Observed-selectivity feedback: measured guard rows from live traces.

The cost model's strategy choice (Section 5.5) trusts *estimated*
guard cardinalities from table statistics.  Estimates drift — stats
go stale under churn, and per-guard selectivity skew grows with the
policy corpus (the Shakya et al. follow-up in PAPERS.md) — so a guard
the model prices at 50 rows may fetch 5000, making IndexGuards a
pessimal choice the model keeps re-making.  This module closes the
loop:

* :class:`SelectivityProfiler` keeps an EWMA of **observed** rows per
  ``(table, guard key)`` — guard keys are the stable
  :meth:`~repro.core.guards.GuardedExpression.guard_key` identities
  the audit tier already records — plus per-cache hit/miss tallies.
* Observations arrive two ways: directly via
  :meth:`SieveCostModel.observe
  <repro.core.cost_model.SieveCostModel.observe>` (anything that can
  count rows per guard), or automatically from **live spans**: the
  profiler subscribes to a :class:`~repro.obs.tracing.Tracer` and
  parses each finished ``sieve.query`` root — enforcement metadata
  stamped by the middleware plus execution counter deltas — into
  per-guard row observations (:meth:`SelectivityProfiler.on_trace`).
* :func:`~repro.core.strategy.choose_strategy` asks the cost model
  for ``observed_guard_rows(table, guard_key)`` and prefers the
  measured value over the estimate whenever one exists.

Span-feed inference rules (single enforced table, bundled engine,
plain projection queries — shapes where the counters identify guard
work unambiguously):

* **LinearScan, no query conjuncts**: rows admitted = rows surviving
  the guard disjunction, so the union cardinality is observed
  directly and distributed over guards proportionally to their
  estimates.
* **IndexGuards**: the enforcement CTE scans exactly the
  guard-matched rows (plus one CTE re-scan of the admitted rows), so
  ``tuples_scanned − rows_admitted`` observes the summed per-guard
  fetch, again distributed proportionally.

Aggregate/grouped queries are skipped — the engine charges
``tuples_output`` for the *final* result (1 row for ``COUNT(*)``),
which says nothing about guard selectivity.  Overlapping guards make
the proportional split an approximation; the EWMA (β = 0.3 by
default) smooths both that and run-to-run noise.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

__all__ = ["SelectivityProfiler", "DEFAULT_EWMA_BETA"]

#: Weight of the newest observation in the moving average.
DEFAULT_EWMA_BETA = 0.3

#: Strategies whose executions the span feed can interpret.
_FEED_STRATEGIES = ("LinearScan", "IndexGuards")


class _Ewma:
    __slots__ = ("value", "observations")

    def __init__(self, value: float):
        self.value = value
        self.observations = 1


class SelectivityProfiler:
    """Thread-safe store of observed guard selectivities + cache hit
    rates, consumable by the cost model and the metrics tier."""

    def __init__(self, beta: float = DEFAULT_EWMA_BETA):
        if not 0.0 < beta <= 1.0:
            raise ValueError("EWMA beta must be in (0, 1]")
        self.beta = beta
        self._lock = threading.Lock()
        self._guards: dict[tuple[str, str], _Ewma] = {}
        self._caches: dict[str, list[int]] = {}  # name -> [hits, misses]
        self.traces_consumed = 0
        self.traces_skipped = 0

    # ------------------------------------------------------------ recording

    def observe(self, table: str, guard_key: str, rows: float) -> None:
        """Fold one observed row count into the (table, guard) EWMA."""
        key = (table.lower(), guard_key)
        rows = max(0.0, float(rows))
        with self._lock:
            entry = self._guards.get(key)
            if entry is None:
                self._guards[key] = _Ewma(rows)
            else:
                entry.value += self.beta * (rows - entry.value)
                entry.observations += 1

    def observe_cache(self, name: str, hit: bool) -> None:
        with self._lock:
            tally = self._caches.setdefault(name, [0, 0])
            tally[0 if hit else 1] += 1

    # -------------------------------------------------------------- reading

    def guard_rows(self, table: str, guard_key: str) -> float | None:
        """The measured row estimate, or None when never observed."""
        entry = self._guards.get((table.lower(), guard_key))
        return entry.value if entry is not None else None

    def observation_count(self, table: str, guard_key: str) -> int:
        entry = self._guards.get((table.lower(), guard_key))
        return entry.observations if entry is not None else 0

    def cache_hit_rate(self, name: str) -> float | None:
        with self._lock:
            tally = self._caches.get(name)
            if not tally or not (tally[0] + tally[1]):
                return None
            return tally[0] / (tally[0] + tally[1])

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready dump (dashboards, tests)."""
        with self._lock:
            return {
                "guards": {
                    f"{table}::{guard_key}": {
                        "rows": entry.value,
                        "observations": entry.observations,
                    }
                    for (table, guard_key), entry in sorted(self._guards.items())
                },
                "caches": {
                    name: {
                        "hits": hits,
                        "misses": misses,
                        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                    }
                    for name, (hits, misses) in sorted(self._caches.items())
                },
                "traces_consumed": self.traces_consumed,
                "traces_skipped": self.traces_skipped,
            }

    # ------------------------------------------------------------ span feed

    def on_trace(self, root: Any) -> None:
        """The :meth:`Tracer.on_finish <repro.obs.tracing.Tracer.on_finish>`
        hook: fold one finished ``sieve.query`` trace into the profile."""
        if getattr(root, "name", "") != "sieve.query":
            return
        attrs = root.attrs
        # Cache hit rates come from every trace, whatever the query shape.
        for resolve in root.find_all("guard.resolve"):
            hit = resolve.attrs.get("hit")
            if hit is not None:
                self.observe_cache("guard_cache", bool(hit))
        if not self._feed_guards(attrs, root):
            self.traces_skipped += 1
            return
        self.traces_consumed += 1

    def _feed_guards(self, attrs: Mapping[str, Any], root: Any) -> bool:
        enforcement = attrs.get("enforcement")
        if not enforcement or len(enforcement) != 1:
            return False
        if attrs.get("engine") == "backend" or not attrs.get("plain_select"):
            return False
        ((table, meta),) = enforcement.items()
        strategy = meta.get("strategy")
        keys = meta.get("guard_keys") or []
        estimates = meta.get("est_rows") or []
        if strategy not in _FEED_STRATEGIES or not keys or len(keys) != len(estimates):
            return False
        admitted = float(attrs.get("rows_admitted", 0))
        if strategy == "LinearScan":
            if meta.get("query_conjuncts", 0):
                return False  # admitted rows conflate guard and query filters
            observed_total = admitted
        else:  # IndexGuards
            execute = root.find("execute")
            scanned = execute.attrs.get("tuples_scanned") if execute is not None else None
            if scanned is None:
                return False
            # The CTE re-scan of admitted rows rides the same counter.
            observed_total = max(0.0, float(scanned) - admitted)
        est_total = float(sum(estimates))
        if est_total > 0.0:
            scale = observed_total / est_total
            for guard_key, estimate in zip(keys, estimates):
                self.observe(table, guard_key, float(estimate) * scale)
        else:
            share = observed_total / len(keys)
            for guard_key in keys:
                self.observe(table, guard_key, share)
        return True
