"""Metric exposition: Prometheus text format and JSON snapshots.

Builders here are duck-typed against the serving/cluster tiers (no
imports from :mod:`repro.service` or :mod:`repro.cluster`, so the
dependency arrow stays one-way): :func:`server_registry` wires a
:class:`~repro.obs.metrics.MetricsRegistry` over a ``SieveServer``
and :func:`cluster_registry` over a ``SieveCluster``.  Both mirror
the full engine :class:`~repro.db.counters.CounterSet` and add the
tier's own gauges/summaries, reading one ``stats()`` snapshot per
scrape through a registry preparer.

Exposition:

* :func:`to_prometheus` — the text format scrapers ingest
  (``# HELP`` / ``# TYPE`` per metric, ``name{labels} value`` per
  sample; summaries expand to quantile-labelled samples plus
  ``_count`` / ``_sum``);
* :func:`to_json` — a structured snapshot carrying the same samples
  plus registry metadata (kind, help, the engine counters'
  ``zero_weight`` flags), shaped for dashboards and tests.

The serving endpoints — ``SieveServer.metrics_prometheus()`` /
``metrics_json()`` and the cluster equivalents — are thin wrappers
over these functions.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry, register_counterset

__all__ = [
    "to_prometheus",
    "to_json",
    "server_registry",
    "cluster_registry",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric, samples in registry.collect():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample in samples:
            if sample.labels:
                rendered = ",".join(
                    f'{key}="{_escape_label(value)}"' for key, value in sample.labels
                )
                lines.append(f"{sample.name}{{{rendered}}} {_format_value(sample.value)}")
            else:
                lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry) -> dict[str, Any]:
    """A structured JSON-ready snapshot of every metric."""
    metrics: list[dict[str, Any]] = []
    for metric, samples in registry.collect():
        metrics.append(
            {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "zero_weight": metric.zero_weight,
                "samples": [
                    {"name": s.name, "labels": dict(s.labels), "value": s.value}
                    for s in samples
                ],
            }
        )
    return {"metrics": metrics}


def _cache_gauges(registry: MetricsRegistry, name: str, read: Any) -> None:
    """Gauges over a CacheStats.snapshot()-shaped dict source.

    ``read()`` returns the snapshot dict (or None when the tier runs
    without that cache — every gauge then reads 0).
    """

    def field(key: str):
        def collect() -> float:
            snap = read()
            return float(snap.get(key, 0.0)) if snap else 0.0

        return collect

    registry.register_gauge(
        f"sieve_{name}_hit_rate", f"{name} hit rate (0..1)", field("hit_rate")
    )
    registry.register_gauge(
        f"sieve_{name}_entries_evicted", f"{name} evictions", field("evictions")
    )
    registry.register_gauge(
        f"sieve_{name}_invalidations", f"{name} invalidations", field("invalidations")
    )


def server_registry(server: Any) -> MetricsRegistry:
    """A registry over one ``SieveServer``: full engine counter set +
    serving gauges/summaries (one ``stats()`` call per scrape)."""
    registry = MetricsRegistry()
    register_counterset(registry, server.sieve.db.counters)

    cell: dict[str, Any] = {}
    registry.add_preparer(lambda: cell.__setitem__("stats", server.stats()))

    def stat(reader):
        return lambda: reader(cell["stats"])

    registry.register_gauge(
        "sieve_service_workers", "Worker threads in the serving pool", stat(lambda s: s.workers)
    )
    registry.register_gauge(
        "sieve_service_pending", "Requests queued, not yet picked up", stat(lambda s: s.pending)
    )
    registry.register_gauge(
        "sieve_service_mean_batch_size",
        "Mean admission-batch size",
        stat(lambda s: s.mean_batch_size),
    )
    registry.register_summary(
        "sieve_request_latency_ms",
        "Service time (worker pickup to result), milliseconds",
        stat(lambda s: s.latency),
    )
    registry.register_summary(
        "sieve_queue_wait_ms",
        "Queue wait (submit to worker pickup), milliseconds",
        stat(lambda s: s.queue_wait),
    )
    registry.register_summary(
        "sieve_total_latency_ms",
        "End-to-end latency (submit to result, queue wait included), milliseconds",
        stat(lambda s: s.total_latency),
    )
    registry.register_counter(
        "sieve_service_sheds_total",
        "Requests rejected by the SLO-aware adaptive shedder",
        stat(lambda s: s.sheds),
    )
    _cache_gauges(registry, "guard_cache", lambda: cell["stats"].guard_cache)
    _cache_gauges(registry, "rewrite_cache", lambda: cell["stats"].rewrite_cache)
    _cache_gauges(registry, "plan_cache", lambda: cell["stats"].plan_cache)
    monitor = getattr(server, "slo_monitor", None)
    if monitor is not None:
        monitor.register_metrics(registry)

    tracer = getattr(server.sieve, "tracer", None)
    if tracer is not None:
        registry.register_gauge(
            "sieve_traces_retained",
            "Finished traces currently in the tracer ring",
            lambda: len(tracer.traces()),
        )
        registry.register_counter(
            "sieve_traces_finished_total",
            "Root spans delivered to the tracer ring",
            lambda: tracer.finished_count,
        )
    slow_log = getattr(server.sieve, "slow_query_log", None)
    if slow_log is not None:
        registry.register_gauge(
            "sieve_slow_queries_retained",
            f"Span trees retained above the {slow_log.threshold_ms}ms threshold",
            lambda: len(slow_log),
        )
    return registry


def cluster_registry(cluster: Any) -> MetricsRegistry:
    """A registry over one ``SieveCluster``: the coordinator's engine
    counters (including the ``cluster_*`` routing counters), merged
    serving summaries, and per-shard labelled gauges."""
    registry = MetricsRegistry()
    register_counterset(registry, cluster.store.db.counters)

    cell: dict[str, Any] = {}
    registry.add_preparer(lambda: cell.__setitem__("stats", cluster.stats()))

    def stat(reader):
        return lambda: reader(cell["stats"])

    registry.register_gauge(
        "sieve_cluster_shards", "Shards currently in the ring", stat(lambda s: s.shards)
    )
    registry.register_gauge(
        "sieve_cluster_pending",
        "Requests queued across all shards",
        stat(lambda s: s.pending),
    )
    registry.register_summary(
        "sieve_cluster_latency_ms",
        "Merged per-shard service latency, milliseconds",
        stat(lambda s: s.latency),
    )
    registry.register_summary(
        "sieve_cluster_queue_wait_ms",
        "Merged per-shard queue wait, milliseconds",
        stat(lambda s: s.queue_wait),
    )
    _cache_gauges(registry, "guard_cache", lambda: cell["stats"].guard_cache)
    _cache_gauges(registry, "rewrite_cache", lambda: cell["stats"].rewrite_cache)
    _cache_gauges(registry, "plan_cache", lambda: cell["stats"].plan_cache)

    def per_shard(reader):
        def collect() -> dict[tuple[tuple[str, str], ...], float]:
            stats = cell["stats"]
            return {
                (("shard", name),): float(reader(shard_stats))
                for name, shard_stats in stats.per_shard.items()
            }

        return collect

    registry.register_gauge(
        "sieve_shard_requests", "Requests served, per shard", per_shard(lambda s: s.requests)
    )
    registry.register_gauge(
        "sieve_shard_pending", "Queued requests, per shard", per_shard(lambda s: s.pending)
    )
    registry.register_gauge(
        "sieve_shard_failures", "Failed requests, per shard", per_shard(lambda s: s.failures)
    )
    registry.register_gauge(
        "sieve_shard_p95_ms",
        "p95 service latency, per shard (milliseconds)",
        per_shard(lambda s: s.latency.p95_ms),
    )
    registry.register_gauge(
        "sieve_shard_partition_policies",
        "Policy-partition size, per shard (the ~1/N corpus share)",
        lambda: {
            (("shard", name),): float(count)
            for name, count in cell["stats"].partition_policies.items()
        },
    )
    _HEALTH_SEVERITY = {"healthy": 0.0, "degraded": 1.0, "unhealthy": 2.0}
    registry.register_gauge(
        "sieve_shard_health",
        "Tracked shard health (0=healthy, 1=degraded, 2=unhealthy)",
        lambda: {
            (("shard", name),): _HEALTH_SEVERITY.get(status, 0.0)
            for name, status in cell["stats"].health.items()
        },
    )
    registry.register_gauge(
        "sieve_cluster_reroutes",
        "Active health detours (degraded shards being routed around)",
        stat(lambda s: len(s.reroutes)),
    )
    return registry
