"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`SLO` states the serving objective the way an SRE would —
"99% of served requests complete within ``latency_ms``" and/or "the
failure rate stays under ``error_rate``" — and a
:class:`BurnRateMonitor` turns a *cumulative* counter stream (total
requests, failures, requests over the latency threshold, read from
the serving tier's :class:`~repro.obs.histogram.LatencyHistogram`)
into **burn rates**: the rate at which the error budget is being
consumed, normalized so that 1.0 means "exactly on budget".

    burn = (bad events / events in window) / budget fraction

Two windows run side by side (the multi-window, multi-burn-rate
pattern from the SRE workbook that Shakya et al.'s flat-enforcement-
cost argument implicitly assumes someone is watching):

* the **short window** (seconds) catches fast burns — a queue melt-
  down during an overload burst.  ``fast_firing`` drives *admission
  shedding* (:class:`~repro.service.admission.AdaptiveShedder`) and
  the cluster's degraded-shard routing, so reaction time is bounded
  by the short window, not by a human.
* the **long window** catches slow burns — a persistent regression
  that would exhaust the budget over hours.  ``slow_firing`` is an
  alert, not an actuator.

The monitor is pull-based and clock-injectable: :meth:`tick` reads
one cumulative sample, prunes history older than the long window, and
evaluates both windows; :meth:`maybe_tick` rate-limits ticking so the
serving hot path can piggyback it on request completion without a
background thread.  Alert *edges* (state transitions, not levels) are
recorded as structured events and exposed — with the live burn
gauges — through the PR 7 metrics registry
(:meth:`BurnRateMonitor.register_metrics`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque

__all__ = ["SLO", "SLOSample", "SLOState", "AlertEvent", "BurnRateMonitor"]


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    ``latency_ms``/``latency_target`` state "``latency_target`` of
    requests finish within ``latency_ms``" (budget fraction
    ``1 - latency_target``); ``error_rate`` states the allowed failure
    fraction.  Either may be ``None`` (objective not tracked); the
    burn rate is the max over the stated objectives.
    """

    name: str = "serving"
    latency_ms: float | None = None
    latency_target: float = 0.99
    error_rate: float | None = None
    short_window_s: float = 5.0
    long_window_s: float = 60.0
    #: Burn-rate thresholds: fast fires on the short window (actuates
    #: shedding/routing), slow fires on the long window (alerts).
    fast_burn: float = 4.0
    slow_burn: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_ms is None and self.error_rate is None:
            raise ValueError("an SLO needs at least one objective")
        if not (0.0 < self.latency_target < 1.0):
            raise ValueError("latency_target must be in (0, 1)")
        if self.error_rate is not None and not (0.0 < self.error_rate < 1.0):
            raise ValueError("error_rate must be in (0, 1)")
        if self.short_window_s <= 0 or self.long_window_s < self.short_window_s:
            raise ValueError("windows must satisfy 0 < short <= long")

    @property
    def latency_budget(self) -> float:
        return 1.0 - self.latency_target

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "latency_ms": self.latency_ms,
            "latency_target": self.latency_target,
            "error_rate": self.error_rate,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        }


@dataclass(frozen=True)
class SLOSample:
    """One *cumulative* reading of the monitored counter stream."""

    now: float
    requests: int
    failures: int
    #: Served requests whose latency exceeded ``SLO.latency_ms``
    #: (``LatencyHistogram.count_over`` — error-bounded at the
    #: threshold bucket).
    over_latency: int


@dataclass(frozen=True)
class SLOState:
    """The monitor's evaluation at one tick."""

    now: float
    burn_short: float
    burn_long: float
    fast_firing: bool
    slow_firing: bool
    requests_short: int
    requests_long: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "now": self.now,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "fast_firing": self.fast_firing,
            "slow_firing": self.slow_firing,
            "requests_short": self.requests_short,
            "requests_long": self.requests_long,
        }


@dataclass(frozen=True)
class AlertEvent:
    """One alert *edge*: a firing state changed at ``at``."""

    slo: str
    severity: str  # "fast" | "slow"
    firing: bool
    at: float
    burn: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "firing": self.firing,
            "at": self.at,
            "burn": self.burn,
        }


@dataclass
class _History:
    samples: Deque[SLOSample] = field(default_factory=deque)

    def prune(self, horizon: float) -> None:
        while len(self.samples) > 1 and self.samples[1].now <= horizon:
            self.samples.popleft()

    def at_or_before(self, t: float) -> SLOSample | None:
        """The newest sample with ``now <= t`` (window baseline)."""
        best = None
        for sample in self.samples:
            if sample.now <= t:
                best = sample
            else:
                break
        return best


class BurnRateMonitor:
    """Evaluates one :class:`SLO` over a cumulative sample source.

    ``source()`` must return an :class:`SLOSample` with *cumulative*
    counts (monotone), e.g. :meth:`SieveServer.slo_sample
    <repro.service.server.SieveServer.slo_sample>`.  Thread-safe: the
    serving tier calls :meth:`maybe_tick` from worker threads while
    scrapes read :attr:`state` / :meth:`alerts`.
    """

    def __init__(
        self,
        slo: SLO,
        source: Callable[[], SLOSample],
        clock: Callable[[], float] = time.monotonic,
        max_events: int = 64,
    ):
        self.slo = slo
        self._source = source
        self._clock = clock
        self._lock = threading.Lock()
        self._history = _History()
        self._events: Deque[AlertEvent] = deque(maxlen=max_events)
        self._state = SLOState(
            now=clock(), burn_short=0.0, burn_long=0.0,
            fast_firing=False, slow_firing=False,
            requests_short=0, requests_long=0,
        )
        self._alerts_total = 0
        self._last_tick = -float("inf")
        self._listeners: list[Callable[[SLOState], None]] = []

    # ------------------------------------------------------------- listeners

    def add_listener(self, fn: Callable[[SLOState], None]) -> None:
        """Called with the fresh :class:`SLOState` after every tick —
        the hook the adaptive shedder and health routing hang off."""
        self._listeners.append(fn)

    # ----------------------------------------------------------- evaluation

    def _burn(self, newest: SLOSample, baseline: SLOSample | None) -> tuple[float, int]:
        if baseline is None:
            return 0.0, 0
        requests = newest.requests - baseline.requests
        if requests <= 0:
            return 0.0, 0
        burn = 0.0
        if self.slo.latency_ms is not None:
            bad = newest.over_latency - baseline.over_latency
            burn = max(burn, (bad / requests) / self.slo.latency_budget)
        if self.slo.error_rate is not None:
            failed = newest.failures - baseline.failures
            burn = max(burn, (failed / requests) / self.slo.error_rate)
        return burn, requests

    def tick(self, now: float | None = None) -> SLOState:
        """Read one sample, evaluate both windows, emit edge events."""
        sample = self._source()
        with self._lock:
            if now is None:
                now = sample.now
            self._last_tick = now
            history = self._history
            history.samples.append(sample)
            history.prune(now - self.slo.long_window_s)
            # A monitor younger than the window falls back to its
            # oldest sample — the window is min(window, age), so a
            # burst in the monitor's first seconds still registers.
            baseline_short = (
                history.at_or_before(now - self.slo.short_window_s)
                or history.samples[0]
            )
            burn_short, req_short = self._burn(sample, baseline_short)
            burn_long, req_long = self._burn(sample, history.samples[0])
            fast = burn_short >= self.slo.fast_burn
            slow = burn_long >= self.slo.slow_burn
            previous = self._state
            state = SLOState(
                now=now,
                burn_short=burn_short,
                burn_long=burn_long,
                fast_firing=fast,
                slow_firing=slow,
                requests_short=req_short,
                requests_long=req_long,
            )
            self._state = state
            if fast != previous.fast_firing:
                self._alerts_total += fast
                self._events.append(
                    AlertEvent(self.slo.name, "fast", fast, now, burn_short)
                )
            if slow != previous.slow_firing:
                self._alerts_total += slow
                self._events.append(
                    AlertEvent(self.slo.name, "slow", slow, now, burn_long)
                )
            listeners = list(self._listeners)
        for fn in listeners:
            fn(state)
        return state

    def maybe_tick(self, min_interval_s: float = 0.05) -> SLOState | None:
        """Tick only if ``min_interval_s`` elapsed since the last tick
        — cheap enough (one clock read) to call per completed request."""
        now = self._clock()
        with self._lock:
            if now - self._last_tick < min_interval_s:
                return None
            # Reserve the slot before releasing the lock so concurrent
            # completers do not stampede into tick().
            self._last_tick = now
        return self.tick(now=now)

    # ------------------------------------------------------------ exposition

    @property
    def state(self) -> SLOState:
        with self._lock:
            return self._state

    @property
    def alerts_total(self) -> int:
        with self._lock:
            return self._alerts_total

    def alerts(self) -> list[AlertEvent]:
        """Recent alert edges, oldest first (bounded ring)."""
        with self._lock:
            return list(self._events)

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            state, events, total = self._state, list(self._events), self._alerts_total
        return {
            "slo": self.slo.to_dict(),
            "state": state.to_dict(),
            "alerts_total": total,
            "alerts": [e.to_dict() for e in events],
        }

    def register_metrics(self, registry: Any) -> None:
        """Expose the live burn gauges and the alert-edge counter in a
        :class:`~repro.obs.metrics.MetricsRegistry` (Prometheus label
        ``slo="<name>"``, burn gauges additionally ``window=``)."""
        name = self.slo.name

        registry.register_gauge(
            "sieve_slo_burn_rate",
            "Error-budget burn rate (1.0 = exactly on budget)",
            lambda: {
                (("slo", name), ("window", "short")): self.state.burn_short,
                (("slo", name), ("window", "long")): self.state.burn_long,
            },
        )
        registry.register_gauge(
            "sieve_slo_firing",
            "Whether a burn alert is firing (fast=actuating, slow=alerting)",
            lambda: {
                (("severity", "fast"), ("slo", name)): float(self.state.fast_firing),
                (("severity", "slow"), ("slo", name)): float(self.state.slow_firing),
            },
        )
        registry.register_counter(
            "sieve_slo_alerts_total",
            "Alert firing edges observed by the burn-rate monitor",
            lambda: self.alerts_total,
            labels={"slo": name},
        )
