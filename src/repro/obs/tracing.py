"""Lightweight per-request span tracing for the middleware pipeline.

Design constraints, in order:

1. **Disabled cost ~ zero.**  Every instrumentation site calls
   :func:`span`, which returns a shared no-op scope when no trace is
   active on the thread — one function call and one thread-local read,
   no allocation.  A bare :class:`~repro.core.middleware.Sieve` never
   starts a trace, so the sites are inert until
   :meth:`Sieve.enable_tracing <repro.core.middleware.Sieve.enable_tracing>`.
2. **No cross-thread locking on the hot path.**  Finished root spans
   are delivered to per-worker thread-confined buffers exactly like
   :class:`~repro.audit.AuditLog`'s payload buffers
   (``register_worker`` / ``flush_local`` / ``unregister_worker``);
   unregistered threads append to the shared ring under a lock (the
   bare-Sieve case, where there is no concurrency to protect against).
3. **Monotonic clocks only.**  Spans carry ``time.perf_counter()``
   start/end; wall-clock timestamps never enter a span, so durations
   are immune to clock steps.

A *trace* is one tree rooted at a :meth:`Tracer.trace` span (named
``sieve.query`` by the middleware); every descendant created via
:func:`span` shares the root's ``trace_id``.  Trace ids are globally
unique (a process-wide counter plus the creating thread's id) and are
stamped into :class:`~repro.core.middleware.SieveExecution` and each
audit :class:`~repro.audit.DecisionRecord` so traces and audit records
correlate.  Cross-thread propagation — the serving tier admitting on
one thread and executing on a worker — goes through
:func:`set_inherited_trace_id`: the admitting thread's trace id rides
the :class:`~repro.service.admission.ServiceRequest` and the worker
adopts it for the request's root span.

The :class:`SlowQueryLog` subscribes to a tracer via
:meth:`Tracer.on_finish` and retains the full span tree (as plain
dicts) for every root slower than its threshold.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "SlowQueryLog",
    "span",
    "current_span",
    "current_trace_id",
    "set_inherited_trace_id",
    "clear_inherited_trace_id",
    "attributed_fraction",
    "new_trace_id",
]

_SEQ = itertools.count(1)
_TLS = threading.local()  # .span: active Span | None; .inherit: str | None


def new_trace_id() -> str:
    """A process-unique trace id: global sequence + creating thread.

    The sequence alone guarantees uniqueness (``itertools.count`` is
    atomic under the GIL); the thread suffix is a debugging aid.
    """
    return f"{next(_SEQ):08x}-{threading.get_ident() & 0xFFFF:04x}"


class Span:
    """One named, timed phase of a trace.

    ``start_s`` / ``end_s`` are ``perf_counter`` readings; ``attrs``
    is a mutable dict the instrumented code stamps facts into
    (``table``, ``strategy``, ``engine``, counter deltas, ...).
    """

    __slots__ = ("name", "trace_id", "start_s", "end_s", "attrs", "children")

    def __init__(self, name: str, trace_id: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.trace_id = trace_id
        self.start_s = 0.0
        self.end_s = 0.0
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list[Span] = []

    @property
    def duration_ms(self) -> float:
        return max(0.0, (self.end_s - self.start_s) * 1000.0)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; also valid after the span has ended (the
        middleware stamps counter deltas computed just outside the
        timed window)."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first: this span then every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant-or-self with the given name, DFS order."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [node for node in self.walk() if node.name == name]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready copy of the subtree (the slow-query log stores
        these so retained entries never pin live span objects)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "duration_ms": self.duration_ms,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms, children={len(self.children)})"


class _NullScope:
    """The shared do-nothing scope :func:`span` returns when tracing is
    off — also a no-op Span (``set`` discards, timings are zero)."""

    __slots__ = ()
    name = ""
    trace_id = ""
    duration_ms = 0.0

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullScope":
        return self


NULL_SCOPE = _NullScope()


class _SpanScope:
    """Context manager pushing one child span onto the active stack."""

    __slots__ = ("_span", "_parent")

    def __init__(self, child: Span, parent: Span):
        self._span = child
        self._parent = parent

    def __enter__(self) -> Span:
        self._parent.children.append(self._span)
        _TLS.span = self._span
        self._span.start_s = time.perf_counter()
        return self._span

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self._span.end_s = time.perf_counter()
        if exc_type is not None:
            self._span.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        _TLS.span = self._parent
        return None


def span(name: str, **attrs: Any):
    """Open a child span under the thread's active span.

    No active span (tracing disabled, or a code path outside any
    request) returns the shared no-op scope — the call costs one
    thread-local read.
    """
    parent = getattr(_TLS, "span", None)
    if parent is None:
        return NULL_SCOPE
    return _SpanScope(Span(name, parent.trace_id, attrs), parent)


def current_span() -> Span | None:
    """The thread's innermost open span (None when tracing is off)."""
    return getattr(_TLS, "span", None)


def current_trace_id() -> str | None:
    """The active trace id, if any — what the serving tier stamps into
    admitted requests for cross-thread propagation."""
    active = getattr(_TLS, "span", None)
    return active.trace_id if active is not None else None


def set_inherited_trace_id(trace_id: str | None) -> None:
    """Pin the trace id the *next* root span on this thread adopts
    (serving-tier workers set it per request from the admission-side
    id; cleared via :func:`clear_inherited_trace_id` in a finally)."""
    _TLS.inherit = trace_id or None


def clear_inherited_trace_id() -> None:
    _TLS.inherit = None


def attributed_fraction(root: Span) -> float:
    """Fraction of a root span's wall time covered by its direct
    children — the "how much of e2e latency do named phases explain"
    measure ``benchmarks/bench_obs.py`` asserts on."""
    total = root.duration_ms
    if total <= 0.0:
        return 1.0
    covered = sum(child.duration_ms for child in root.children)
    return min(1.0, covered / total)


class _RootScope:
    """Context manager for a trace root: delivers to the tracer on
    exit (buffered per worker thread, see :class:`Tracer`)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", root: Span):
        self._tracer = tracer
        self._span = root

    def __enter__(self) -> Span:
        _TLS.span = self._span
        self._span.start_s = time.perf_counter()
        return self._span

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self._span.end_s = time.perf_counter()
        if exc_type is not None:
            self._span.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        _TLS.span = None
        self._tracer._deliver(self._span)
        return None


DEFAULT_TRACE_CAPACITY = 1024


class Tracer:
    """Collects finished traces into a bounded ring buffer.

    Worker threads mirror the :class:`~repro.audit.AuditLog` buffering
    pattern: :meth:`register_worker` gives the calling thread a
    private (lock-free, thread-confined) list, :meth:`flush_local`
    moves it into the shared ring under one lock hold per batch, and
    :meth:`unregister_worker` flushes the remainder.  Unregistered
    threads deliver straight to the ring.

    ``on_finish`` callbacks (the slow-query log, the selectivity
    profiler) run synchronously at delivery on the finishing thread —
    they see the complete tree with all attributes.  A raising
    callback is disarmed into ``callback_errors`` rather than failing
    the request that happened to trip it.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._finished: "deque[Span]" = deque(maxlen=capacity)
        self._local = threading.local()
        self._callbacks: list[Callable[[Span], None]] = []
        self.callback_errors = 0
        self.finished_count = 0

    # ------------------------------------------------------------- tracing

    def trace(self, name: str, trace_id: str | None = None, **attrs: Any):
        """Open a root span (a new trace) on this thread.

        Called while another span is already active, it degrades to a
        plain child span — nested ``execute`` calls (the cluster
        coordinator fronting a shard server, a UDF re-entering the
        middleware) extend the enclosing trace instead of splitting it.

        The new root's id is, in priority order: the explicit
        ``trace_id`` argument, the thread's inherited id
        (:func:`set_inherited_trace_id`), or a fresh unique id.
        """
        if getattr(_TLS, "span", None) is not None:
            return span(name, **attrs)
        tid = trace_id or getattr(_TLS, "inherit", None) or new_trace_id()
        return _RootScope(self, Span(name, tid, attrs))

    def _deliver(self, root: Span) -> None:
        for callback in self._callbacks:
            try:
                callback(root)
            except Exception:
                self.callback_errors += 1
        buffer = getattr(self._local, "buffer", None)
        if buffer is not None:
            buffer.append(root)
        else:
            with self._lock:
                self._finished.append(root)
                self.finished_count += 1

    # ------------------------------------------------- worker-buffer protocol

    def register_worker(self) -> None:
        """Give the calling thread a private delivery buffer
        (idempotent); the registering thread must also flush it."""
        if getattr(self._local, "buffer", None) is None:
            self._local.buffer = []

    def flush_local(self) -> int:
        """Move the calling thread's buffered traces into the shared
        ring; returns how many moved (0 for unregistered threads)."""
        buffer = getattr(self._local, "buffer", None)
        if not buffer:
            return 0
        self._local.buffer = []
        with self._lock:
            self._finished.extend(buffer)
            self.finished_count += len(buffer)
        return len(buffer)

    def unregister_worker(self) -> int:
        flushed = self.flush_local()
        self._local.buffer = None
        return flushed

    # --------------------------------------------------------------- reading

    def on_finish(self, callback: Callable[[Span], None]) -> None:
        """Subscribe to finished root spans (called at delivery)."""
        self._callbacks.append(callback)

    def traces(self) -> list[Span]:
        """A copy of the retained finished roots, oldest first."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> int:
        with self._lock:
            count = len(self._finished)
            self._finished.clear()
            return count


DEFAULT_SLOW_QUERY_MS = 100.0
DEFAULT_SLOW_LOG_CAPACITY = 128


class SlowQueryLog:
    """Retains the full span tree of every trace slower than a
    threshold (a bounded ring: old outliers age out FIFO).

    Entries are plain dicts (:meth:`Span.to_dict` trees plus the root
    duration and trace id) so retained evidence is JSON-ready and
    holds no live references into the pipeline.
    """

    def __init__(
        self,
        threshold_ms: float = DEFAULT_SLOW_QUERY_MS,
        capacity: int = DEFAULT_SLOW_LOG_CAPACITY,
    ):
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        self._entries: "deque[dict[str, Any]]" = deque(maxlen=capacity)

    def observe(self, root: Span) -> None:
        """The :meth:`Tracer.on_finish` hook."""
        duration = root.duration_ms
        if duration < self.threshold_ms:
            return
        entry = {
            "trace_id": root.trace_id,
            "name": root.name,
            "duration_ms": duration,
            "tree": root.to_dict(),
        }
        with self._lock:
            self._entries.append(entry)

    def entries(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
