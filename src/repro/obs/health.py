"""Per-component health checks rolled up to healthy/degraded/unhealthy.

The serving and cluster tiers expose *numbers* (counters, gauges,
latency summaries); this module turns them into a *verdict* an
operator or an actuator can branch on.  A :class:`HealthRegistry`
holds named check callables, each returning a
:class:`ComponentHealth`; :meth:`HealthRegistry.report` runs them all
and rolls the statuses up worst-first:

* ``healthy`` — serving normally;
* ``degraded`` — serving, but outside normal operating bounds (hit
  rate under its floor, queue depth near the admission bound, a
  burn-rate alert firing, one shard down in a cluster that routes
  around it);
* ``unhealthy`` — not serving (server stopped, worker threads dead,
  every shard unreachable).

A check that *raises* reports ``unhealthy`` with the exception as
detail — a health endpoint must never throw.  Checks read the same
snapshots the metrics tier exposes, so a verdict is always explainable
by the numbers next to it (each :class:`ComponentHealth` carries its
evidence in ``data``).

:func:`server_health` and :func:`cluster_health` build the standard
registries over a ``SieveServer`` / ``SieveCluster`` (duck-typed, no
imports from the service/cluster tiers — the dependency arrow stays
one-way, mirroring :mod:`repro.obs.export`).  They back the serving
tiers' ``health()`` / ``health_json()`` endpoints and the
``tools/health_report.py`` dashboard.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "HealthStatus",
    "ComponentHealth",
    "HealthReport",
    "HealthRegistry",
    "server_health",
    "cluster_health",
    "rollup_cluster",
    "DEFAULT_HIT_RATE_FLOOR",
    "DEFAULT_QUEUE_FLOOR",
    "MIN_LOOKUPS_FOR_FLOOR",
]

#: A cache hit rate below this (after warm-up) marks the tier degraded.
DEFAULT_HIT_RATE_FLOOR = 0.5
#: Queue depth above this fraction of ``max_pending`` marks admission degraded.
DEFAULT_QUEUE_FLOOR = 0.8
#: Hit-rate floors only apply once a cache has seen this many lookups.
MIN_LOOKUPS_FOR_FLOOR = 100


class HealthStatus(str, enum.Enum):
    """Ordered worst-last; comparisons go through :attr:`severity`."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    UNHEALTHY = "unhealthy"

    @property
    def severity(self) -> int:
        return _SEVERITY[self]

    @classmethod
    def worst(cls, statuses: "list[HealthStatus]") -> "HealthStatus":
        if not statuses:
            return cls.HEALTHY
        return max(statuses, key=lambda s: s.severity)


_SEVERITY = {
    HealthStatus.HEALTHY: 0,
    HealthStatus.DEGRADED: 1,
    HealthStatus.UNHEALTHY: 2,
}


@dataclass(frozen=True)
class ComponentHealth:
    """One component's verdict plus the evidence behind it."""

    name: str
    status: HealthStatus
    detail: str = ""
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status.value,
            "detail": self.detail,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class HealthReport:
    """The rolled-up verdict over every registered component."""

    status: HealthStatus
    components: tuple[ComponentHealth, ...]

    @property
    def healthy(self) -> bool:
        return self.status is HealthStatus.HEALTHY

    def component(self, name: str) -> ComponentHealth:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status.value,
            "components": [c.to_dict() for c in self.components],
        }


class HealthRegistry:
    """Named health checks; :meth:`report` runs them all.

    A check returns a :class:`ComponentHealth` (its ``name`` is
    overwritten with the registered one), a bare
    :class:`HealthStatus`, or a ``(status, detail)`` tuple.
    """

    def __init__(self) -> None:
        self._checks: list[tuple[str, Callable[[], Any]]] = []

    def register(self, name: str, check: Callable[[], Any]) -> None:
        if any(existing == name for existing, _ in self._checks):
            raise ValueError(f"health check {name!r} is already registered")
        self._checks.append((name, check))

    def names(self) -> list[str]:
        return [name for name, _ in self._checks]

    def _run_one(self, name: str, check: Callable[[], Any]) -> ComponentHealth:
        try:
            result = check()
        except Exception as exc:  # endpoint must not throw
            return ComponentHealth(
                name, HealthStatus.UNHEALTHY, detail=f"check raised: {exc!r}"
            )
        if isinstance(result, ComponentHealth):
            return ComponentHealth(name, result.status, result.detail, result.data)
        if isinstance(result, HealthStatus):
            return ComponentHealth(name, result)
        status, detail = result
        return ComponentHealth(name, status, detail)

    def report(self) -> HealthReport:
        components = tuple(self._run_one(name, check) for name, check in self._checks)
        return HealthReport(
            status=HealthStatus.worst([c.status for c in components]),
            components=components,
        )


# --------------------------------------------------------------- check makers


def _cache_floor_check(
    name: str,
    read: Callable[[], dict[str, float] | None],
    floor: float,
    min_lookups: int,
) -> Callable[[], ComponentHealth]:
    def check() -> ComponentHealth:
        snap = read()
        if not snap:
            return ComponentHealth(name, HealthStatus.HEALTHY, "cache disabled")
        lookups = snap.get("hits", 0) + snap.get("misses", 0)
        hit_rate = float(snap.get("hit_rate", 0.0))
        data = {"hit_rate": hit_rate, "lookups": lookups, "floor": floor}
        if lookups < min_lookups:
            return ComponentHealth(name, HealthStatus.HEALTHY, "warming", data)
        if hit_rate < floor:
            return ComponentHealth(
                name,
                HealthStatus.DEGRADED,
                f"hit rate {hit_rate:.2f} under the {floor:.2f} floor",
                data,
            )
        return ComponentHealth(name, HealthStatus.HEALTHY, "", data)

    return check


def server_health(
    server: Any,
    hit_rate_floor: float = DEFAULT_HIT_RATE_FLOOR,
    queue_floor: float = DEFAULT_QUEUE_FLOOR,
    min_lookups: int = MIN_LOOKUPS_FOR_FLOOR,
) -> HealthRegistry:
    """The standard registry over one ``SieveServer``: worker-pool
    liveness, admission-queue depth (and active shedding), policy
    snapshot consistency, cache hit-rate floors, and — when
    :meth:`~repro.service.server.SieveServer.enable_slo` is on — the
    burn-rate monitor's firing state."""
    registry = HealthRegistry()

    def workers() -> ComponentHealth:
        alive = server.alive_workers()
        data = {"workers": server.workers, "alive": alive}
        if not server.running:
            return ComponentHealth(
                "workers", HealthStatus.UNHEALTHY, "server is not running", data
            )
        if alive < server.workers:
            return ComponentHealth(
                "workers",
                HealthStatus.DEGRADED,
                f"{server.workers - alive} worker thread(s) dead",
                data,
            )
        return ComponentHealth("workers", HealthStatus.HEALTHY, "", data)

    def admission() -> ComponentHealth:
        pending = server.pending()
        max_pending = server.max_pending
        ratio = pending / max_pending if max_pending else 0.0
        shedder = getattr(server, "shedder", None)
        shedding = bool(shedder is not None and shedder.shedding)
        data = {"pending": pending, "max_pending": max_pending, "shedding": shedding}
        if shedding:
            return ComponentHealth(
                "admission_queue",
                HealthStatus.DEGRADED,
                "adaptive shedding active (fast burn fired)",
                data,
            )
        if ratio >= queue_floor:
            return ComponentHealth(
                "admission_queue",
                HealthStatus.DEGRADED,
                f"queue {ratio:.0%} full",
                data,
            )
        return ComponentHealth("admission_queue", HealthStatus.HEALTHY, "", data)

    def policy_store() -> ComponentHealth:
        store = server.sieve.policy_store
        snapshot = store.snapshot()
        data = {"epoch": store.epoch, "snapshot_epoch": snapshot.epoch}
        if snapshot.epoch > store.epoch:
            # A snapshot from the future means epoch bookkeeping broke.
            return ComponentHealth(
                "policy_store",
                HealthStatus.UNHEALTHY,
                f"snapshot epoch {snapshot.epoch} ahead of store epoch {store.epoch}",
                data,
            )
        lag = store.epoch - snapshot.epoch
        data["epoch_lag"] = lag
        if lag > 0:
            # snapshot() memoizes per epoch; any lag means a fresh
            # snapshot could not observe the latest mutations.
            return ComponentHealth(
                "policy_store",
                HealthStatus.DEGRADED,
                f"snapshot lags the store by {lag} epoch(s)",
                data,
            )
        return ComponentHealth("policy_store", HealthStatus.HEALTHY, "", data)

    def slo() -> ComponentHealth:
        monitor = getattr(server, "slo_monitor", None)
        if monitor is None:
            return ComponentHealth("slo", HealthStatus.HEALTHY, "no SLO configured")
        state = monitor.state
        data = state.to_dict()
        if state.fast_firing:
            return ComponentHealth(
                "slo",
                HealthStatus.DEGRADED,
                f"fast burn {state.burn_short:.1f}x budget",
                data,
            )
        if state.slow_firing:
            return ComponentHealth(
                "slo",
                HealthStatus.DEGRADED,
                f"slow burn {state.burn_long:.1f}x budget",
                data,
            )
        return ComponentHealth("slo", HealthStatus.HEALTHY, "", data)

    registry.register("workers", workers)
    registry.register("admission_queue", admission)
    registry.register("policy_store", policy_store)
    registry.register(
        "guard_cache",
        _cache_floor_check(
            "guard_cache",
            lambda: server.sieve.guard_cache.stats.snapshot(),
            hit_rate_floor,
            min_lookups,
        ),
    )
    registry.register(
        "rewrite_cache",
        _cache_floor_check(
            "rewrite_cache",
            lambda: (
                server.sieve.rewrite_cache.stats.snapshot()
                if server.sieve.rewrite_cache is not None
                else None
            ),
            hit_rate_floor,
            min_lookups,
        ),
    )
    registry.register("slo", slo)
    return registry


def cluster_health(cluster: Any) -> HealthRegistry:
    """The standard registry over one ``SieveCluster``.

    Per-shard liveness components (``shard:<name>``) report the
    coordinator's tracked status (:meth:`SieveCluster.shard_health
    <repro.cluster.coordinator.SieveCluster.shard_health>` — fed by
    ``health_tick`` and fault injection).  The roll-up is
    cluster-aware: unreachable shards cap the *cluster* verdict at
    ``degraded`` while at least one shard still serves (the router
    steers around them); only a cluster with no serving shard is
    ``unhealthy``.
    """
    registry = HealthRegistry()

    def coordinator() -> ComponentHealth:
        snapshot = cluster.store.snapshot()
        data = {
            "epoch": cluster.store.epoch,
            "snapshot_epoch": snapshot.epoch,
            "reroutes": dict(cluster.reroutes()),
        }
        if data["reroutes"]:
            return ComponentHealth(
                "coordinator",
                HealthStatus.DEGRADED,
                f"routing around {len(data['reroutes'])} degraded shard(s)",
                data,
            )
        return ComponentHealth("coordinator", HealthStatus.HEALTHY, "", data)

    registry.register("coordinator", coordinator)

    def shard_check(name: str) -> Callable[[], ComponentHealth]:
        def check() -> ComponentHealth:
            shard = cluster.shard(name)
            status = HealthStatus(cluster.shard_health().get(name, "healthy"))
            stats = shard.server.stats()
            data = {
                "available": shard.available,
                "running": shard.server.running,
                "pending": stats.pending,
                "requests": stats.requests,
                "p99_ms": stats.latency.p99_ms,
            }
            if not shard.available or not shard.server.running:
                return ComponentHealth(
                    f"shard:{name}",
                    HealthStatus.UNHEALTHY,
                    "shard unreachable" if not shard.available else "server stopped",
                    data,
                )
            if status is HealthStatus.DEGRADED:
                return ComponentHealth(
                    f"shard:{name}",
                    HealthStatus.DEGRADED,
                    "burn-rate monitor flagged this shard",
                    data,
                )
            return ComponentHealth(f"shard:{name}", HealthStatus.HEALTHY, "", data)

        return check

    for name in cluster.shard_names:
        registry.register(f"shard:{name}", shard_check(name))
    return registry


def rollup_cluster(components: tuple[ComponentHealth, ...]) -> HealthStatus:
    """Cluster-aware roll-up: dead shards degrade (not kill) the
    cluster while any shard still serves."""
    shard_statuses = [c.status for c in components if c.name.startswith("shard:")]
    other_statuses = [c.status for c in components if not c.name.startswith("shard:")]
    if shard_statuses and all(s is HealthStatus.UNHEALTHY for s in shard_statuses):
        return HealthStatus.UNHEALTHY
    capped = [
        HealthStatus.DEGRADED if s is HealthStatus.UNHEALTHY else s
        for s in shard_statuses
    ]
    return HealthStatus.worst(capped + other_statuses)
