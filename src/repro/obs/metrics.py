"""A unified metrics registry over the repo's scattered stat sources.

Before this module the system had four disjoint accounting surfaces —
the deterministic :class:`~repro.db.counters.CounterSet`, the serving
tier's ``ServiceStats``, the cluster's ``ClusterStats`` and the cache
tiers' ``CacheStats`` — each with its own snapshot shape.  A
:class:`MetricsRegistry` names them all uniformly:

* **counter** — monotonically non-decreasing (Prometheus convention:
  names end in ``_total``).  Counters registered from a
  :class:`~repro.db.counters.CounterSet` carry a ``zero_weight`` flag:
  True exactly when the counter contributes nothing to ``cost_units``
  (bookkeeping, not engine work) — derived by *probing* the cost
  model (:func:`weighted_counter_names`), so the flag can never drift
  from the authoritative weights.
* **gauge** — a point-in-time level (queue depth, worker count,
  cache hit rate).
* **summary** — a latency population exposed Prometheus-summary
  style: ``<name>{quantile="0.5|0.95|0.99"}``, ``<name>_count`` and
  ``<name>_sum`` samples, collected from anything with a
  ``LatencySummary``-shaped ``to_dict()``.

Collection is pull-based: nothing here costs the hot path anything.
A registry's *preparers* run once per :meth:`MetricsRegistry.collect`
so N metrics reading one expensive snapshot (``server.stats()``)
share a single call.  Metric names are unique per ``(name, fixed
labels)`` — duplicate registration raises, which is what the
counter-consistency test leans on.

Rendering lives in :mod:`repro.obs.export` (Prometheus text / JSON).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.db.counters import CounterSet

__all__ = [
    "Sample",
    "Metric",
    "MetricsRegistry",
    "register_counterset",
    "weighted_counter_names",
    "COUNTER_METRIC_PREFIX",
]

#: Registry name of an engine counter ``x`` is ``sieve_x_total``.
COUNTER_METRIC_PREFIX = "sieve_"

KINDS = ("counter", "gauge", "summary")

#: Label sets are canonicalized to sorted tuples of (key, value) pairs.
Labels = tuple[tuple[str, str], ...]


def _canonical_labels(labels: Mapping[str, Any] | Labels | None) -> Labels:
    if not labels:
        return ()
    if isinstance(labels, tuple):
        pairs = labels
    else:
        pairs = tuple(labels.items())
    return tuple(sorted((str(k), str(v)) for k, v in pairs))


@dataclass(frozen=True)
class Sample:
    """One exposed value: metric name + resolved labels + value."""

    name: str
    value: float
    labels: Labels = ()


@dataclass
class Metric:
    """One named metric and how to read it.

    ``collect`` returns, depending on ``kind``:

    * counter/gauge — a number, or a mapping ``{labels: number}``
      (labels as a dict or canonical tuple) for dynamic label sets
      such as per-shard values;
    * summary — an object with a ``to_dict()`` producing
      ``count`` / ``mean_ms`` / ``p50_ms`` / ``p95_ms`` / ``p99_ms``
      (a :class:`~repro.service.server.LatencySummary`), or that dict
      directly.

    ``zero_weight`` is meaningful only for counters mirrored from the
    engine :class:`~repro.db.counters.CounterSet`: True when the
    counter carries no ``cost_units`` weight.  ``None`` = not an
    engine counter.
    """

    name: str
    kind: str
    help: str
    collect: Callable[[], Any]
    zero_weight: bool | None = None
    labels: Labels = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}")
        self.labels = _canonical_labels(self.labels)

    def samples(self) -> list[Sample]:
        value = self.collect()
        if self.kind == "summary":
            data = value.to_dict() if hasattr(value, "to_dict") else dict(value)
            count = float(data.get("count", 0))
            mean = float(data.get("mean_ms", 0.0))
            out = [
                Sample(
                    self.name,
                    float(data.get(f"p{q}_ms", 0.0)),
                    self.labels + (("quantile", f"0.{q}"),),
                )
                for q in (50, 95, 99)
            ]
            out.append(Sample(f"{self.name}_count", count, self.labels))
            out.append(Sample(f"{self.name}_sum", mean * count, self.labels))
            return out
        if isinstance(value, Mapping):
            return [
                Sample(self.name, float(v), self.labels + _canonical_labels(k))
                for k, v in value.items()
            ]
        return [Sample(self.name, float(value), self.labels)]


class MetricsRegistry:
    """Named metrics with uniqueness enforcement and shared preparers.

    Thread-safe for registration vs collection; ``collect`` itself
    calls out to the metric sources, which snapshot under their own
    locks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, Labels], Metric] = {}
        self._preparers: list[Callable[[], None]] = []

    # --------------------------------------------------------- registration

    def register(self, metric: Metric) -> Metric:
        key = (metric.name, metric.labels)
        with self._lock:
            if key in self._metrics:
                raise ValueError(
                    f"metric {metric.name!r} with labels {dict(metric.labels)!r} "
                    f"is already registered"
                )
            self._metrics[key] = metric
        return metric

    def register_counter(
        self,
        name: str,
        help: str,
        collect: Callable[[], Any],
        zero_weight: bool | None = None,
        labels: Mapping[str, Any] | None = None,
    ) -> Metric:
        return self.register(
            Metric(name, "counter", help, collect, zero_weight, _canonical_labels(labels))
        )

    def register_gauge(
        self,
        name: str,
        help: str,
        collect: Callable[[], Any],
        labels: Mapping[str, Any] | None = None,
    ) -> Metric:
        return self.register(
            Metric(name, "gauge", help, collect, None, _canonical_labels(labels))
        )

    def register_summary(
        self,
        name: str,
        help: str,
        collect: Callable[[], Any],
        labels: Mapping[str, Any] | None = None,
    ) -> Metric:
        return self.register(
            Metric(name, "summary", help, collect, None, _canonical_labels(labels))
        )

    def add_preparer(self, prepare: Callable[[], None]) -> None:
        """Run once per :meth:`collect`, before any metric is read —
        the hook for refreshing one shared snapshot many metrics
        consume (e.g. one ``server.stats()`` call)."""
        with self._lock:
            self._preparers.append(prepare)

    # ------------------------------------------------------------ collection

    def metrics(self) -> list[Metric]:
        """Registered metrics, name-ordered (stable exposition)."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str) -> list[Metric]:
        """Every registered metric with this name (one per label set)."""
        with self._lock:
            return [m for (n, _), m in sorted(self._metrics.items()) if n == name]

    def collect(self) -> list[tuple[Metric, list[Sample]]]:
        """Resolve every metric to its current samples."""
        with self._lock:
            preparers = list(self._preparers)
            metrics = [self._metrics[key] for key in sorted(self._metrics)]
        for prepare in preparers:
            prepare()
        return [(metric, metric.samples()) for metric in metrics]

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


def weighted_counter_names() -> frozenset[str]:
    """Engine counters that contribute to ``cost_units``, derived by
    probing :meth:`CounterSet.cost_of` with one unit of each counter —
    the flags in the registry can therefore never drift from the cost
    model's actual weights."""
    return frozenset(
        name
        for name in CounterSet._COUNTER_NAMES
        if CounterSet.cost_of({name: 1}) > 0.0
    )


def register_counterset(
    registry: MetricsRegistry,
    counters: CounterSet,
    prefix: str = COUNTER_METRIC_PREFIX,
) -> list[Metric]:
    """Mirror every :class:`CounterSet` counter into ``registry``.

    Each counter ``x`` registers exactly once as ``<prefix>x_total``
    with ``zero_weight`` derived from the live cost weights.  Reads go
    straight to the (GIL-coherent) counter attributes — no snapshot
    needed for a scrape.
    """
    weighted = weighted_counter_names()
    out = []
    for name in CounterSet._COUNTER_NAMES:
        out.append(
            registry.register_counter(
                f"{prefix}{name}_total",
                f"Engine counter {name} (deterministic, see repro.db.counters)",
                lambda n=name: getattr(counters, n),
                zero_weight=name not in weighted,
            )
        )
    return out
