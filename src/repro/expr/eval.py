"""Expression compilation and evaluation.

Expressions are compiled once into Python closures over a
:class:`RowBinding` (which resolves column names to tuple positions),
then invoked per row.  This matters: policy expressions are evaluated
against many thousands of tuples, so per-row name resolution would
dominate runtime.

Null semantics are simplified two-valued logic: any comparison against
None yields False.  The paper's workload never relies on three-valued
logic, and keeping booleans two-valued makes guard-cost reasoning
exact.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.common.errors import ExecutionError
from repro.expr.nodes import (
    And,
    Arith,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
    ScalarSubquery,
    Star,
)

RowFn = Callable[[tuple], Any]


class RowBinding:
    """Maps column references to positions in the row tuple.

    A binding is built from one or more (alias, schema) pairs laid out
    left-to-right, mirroring how joins concatenate rows.  Unqualified
    names resolve when unambiguous; ambiguity raises ExecutionError at
    compile time (never at row time).
    """

    def __init__(self) -> None:
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        self._width = 0
        self._names_in_order: list[str] = []
        self._cache_key: tuple | None = None

    @classmethod
    def for_table(cls, alias: str, column_names: Sequence[str]) -> "RowBinding":
        binding = cls()
        binding.add_table(alias, column_names)
        return binding

    def add_table(self, alias: str, column_names: Sequence[str]) -> None:
        self._cache_key = None
        alias_l = alias.lower()
        for name in column_names:
            name_l = name.lower()
            self._by_qualified[(alias_l, name_l)] = self._width
            self._by_name.setdefault(name_l, []).append(self._width)
            self._names_in_order.append(name)
            self._width += 1

    @property
    def width(self) -> int:
        return self._width

    @property
    def column_names(self) -> list[str]:
        return list(self._names_in_order)

    def aliases(self) -> set[str]:
        return {alias for alias, _ in self._by_qualified}

    def cache_key(self) -> tuple:
        """A hashable layout fingerprint: two bindings with equal keys
        resolve every reference identically, so compiled expressions
        may be shared between them (the compiled-function cache keys
        on this plus the expression)."""
        if self._cache_key is None:
            self._cache_key = tuple(sorted(self._by_qualified.items()))
        return self._cache_key

    def has(self, ref: ColumnRef) -> bool:
        try:
            self.resolve(ref)
            return True
        except ExecutionError:
            return False

    def resolve(self, ref: ColumnRef) -> int:
        name_l = ref.name.lower()
        if ref.table is not None:
            key = (ref.table.lower(), name_l)
            if key in self._by_qualified:
                return self._by_qualified[key]
            raise ExecutionError(f"unknown column {ref}")
        positions = self._by_name.get(name_l, [])
        if len(positions) == 1:
            return positions[0]
        if not positions:
            raise ExecutionError(f"unknown column {ref}")
        raise ExecutionError(f"ambiguous column {ref.name!r}")


def _cmp(op: CompareOp) -> Callable[[Any, Any], bool]:
    if op is CompareOp.EQ:
        return lambda a, b: a is not None and b is not None and a == b
    if op is CompareOp.NE:
        return lambda a, b: a is not None and b is not None and a != b
    if op is CompareOp.LT:
        return lambda a, b: a is not None and b is not None and a < b
    if op is CompareOp.LE:
        return lambda a, b: a is not None and b is not None and a <= b
    if op is CompareOp.GT:
        return lambda a, b: a is not None and b is not None and a > b
    return lambda a, b: a is not None and b is not None and a >= b


_ARITH_FNS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b else None,
    "%": lambda a, b: a % b if b else None,
}

_BUILTIN_SCALARS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "lower": lambda s: s.lower() if s is not None else None,
    "upper": lambda s: s.upper() if s is not None else None,
    "length": lambda s: len(s) if s is not None else None,
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
}


class ExprCompiler:
    """Compiles Expr trees into row-callables.

    ``udfs`` maps lowercase function names to Python callables invoked
    with evaluated arguments.  ``subquery_fn``, when given, is called as
    ``subquery_fn(select_ast, outer_row)`` to produce the scalar value
    of a (possibly correlated) subquery; ``in_subquery_fn`` is called
    once at compile time with an uncorrelated query AST and must return
    the membership set for IN.
    """

    #: Disjunctions at least this wide are treated as policy-style DNFs
    #: and metered into ``counters.policy_evals`` (one tick per disjunct
    #: actually evaluated, honouring short-circuiting) — the accounting
    #: behind the paper's "number of policies checked per tuple".
    METERED_OR_WIDTH = 3

    def __init__(
        self,
        binding: RowBinding,
        udfs: dict[str, Callable[..., Any]] | None = None,
        subquery_fn: Callable[[Any, tuple], Any] | None = None,
        in_subquery_fn: Callable[[Any], frozenset] | None = None,
        counters: Any = None,
    ):
        self.binding = binding
        self.udfs = udfs or {}
        self.subquery_fn = subquery_fn
        self.in_subquery_fn = in_subquery_fn
        self.counters = counters

    def compile(self, expr: Expr) -> RowFn:
        if isinstance(expr, Literal):
            value = expr.value
            return lambda row: value
        if isinstance(expr, ColumnRef):
            pos = self.binding.resolve(expr)
            return lambda row: row[pos]
        if isinstance(expr, Comparison):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            fn = _cmp(expr.op)
            return lambda row: fn(left(row), right(row))
        if isinstance(expr, Between):
            inner = self.compile(expr.expr)
            low = self.compile(expr.low)
            high = self.compile(expr.high)
            if expr.negated:
                return lambda row: (
                    (v := inner(row)) is not None and not (low(row) <= v <= high(row))
                )
            return lambda row: (
                (v := inner(row)) is not None and low(row) <= v <= high(row)
            )
        if isinstance(expr, InList):
            inner = self.compile(expr.expr)
            if all(isinstance(i, Literal) for i in expr.items):
                values = frozenset(i.value for i in expr.items)  # type: ignore[union-attr]
                if expr.negated:
                    return lambda row: (v := inner(row)) is not None and v not in values
                return lambda row: (v := inner(row)) is not None and v in values
            item_fns = [self.compile(i) for i in expr.items]
            if expr.negated:
                return lambda row: (
                    (v := inner(row)) is not None
                    and all(v != fn(row) for fn in item_fns)
                )
            return lambda row: (
                (v := inner(row)) is not None and any(v == fn(row) for fn in item_fns)
            )
        if isinstance(expr, And):
            fns = [self.compile(c) for c in expr.children]
            if len(fns) == 2:
                f0, f1 = fns
                return lambda row: bool(f0(row)) and bool(f1(row))
            return lambda row: all(fn(row) for fn in fns)
        if isinstance(expr, Or):
            fns = [self.compile(c) for c in expr.children]
            if self.counters is not None and len(fns) >= self.METERED_OR_WIDTH:
                counters = self.counters

                def metered_or(row, _fns=fns, _counters=counters):
                    checked = 0
                    hit = False
                    for fn in _fns:
                        checked += 1
                        if fn(row):
                            hit = True
                            break
                    _counters.policy_evals += checked
                    return hit

                return metered_or
            if len(fns) == 2:
                f0, f1 = fns
                return lambda row: bool(f0(row)) or bool(f1(row))
            return lambda row: any(fn(row) for fn in fns)
        if isinstance(expr, Not):
            fn = self.compile(expr.child)
            return lambda row: not fn(row)
        if isinstance(expr, Arith):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            op_fn = _ARITH_FNS.get(expr.op)
            if op_fn is None:
                raise ExecutionError(f"unknown arithmetic operator {expr.op!r}")
            return lambda row: (
                None
                if (a := left(row)) is None or (b := right(row)) is None
                else op_fn(a, b)
            )
        if isinstance(expr, FuncCall):
            return self._compile_call(expr)
        if isinstance(expr, ScalarSubquery):
            if self.subquery_fn is None:
                raise ExecutionError("scalar subqueries are not available in this context")
            select = expr.select
            sub_fn = self.subquery_fn
            return lambda row: sub_fn(select, row)
        if isinstance(expr, InSubquery):
            if self.in_subquery_fn is None:
                raise ExecutionError("IN subqueries are not available in this context")
            members = self.in_subquery_fn(expr.select)
            inner = self.compile(expr.expr)
            if expr.negated:
                return lambda row: (v := inner(row)) is not None and v not in members
            return lambda row: (v := inner(row)) is not None and v in members
        if isinstance(expr, IsNull):
            inner = self.compile(expr.child)
            return lambda row: inner(row) is None
        if isinstance(expr, Star):
            raise ExecutionError("'*' is only valid in a SELECT list")
        if isinstance(expr, Param):
            raise ExecutionError(
                f"unbound parameter {expr.name or expr.index!r}: "
                "bind values before execution (see repro.expr.params)"
            )
        raise ExecutionError(f"cannot compile expression node {type(expr).__name__}")

    def _compile_call(self, expr: FuncCall) -> RowFn:
        name = expr.name.lower()
        arg_fns = [self.compile(a) for a in expr.args]
        udf = self.udfs.get(name)
        if udf is not None:
            return lambda row: udf(*[fn(row) for fn in arg_fns])
        builtin = _BUILTIN_SCALARS.get(name)
        if builtin is not None:
            return lambda row: builtin(*[fn(row) for fn in arg_fns])
        raise ExecutionError(
            f"unknown function {expr.name!r} (aggregates are only valid in SELECT/HAVING)"
        )
