"""Query parameters: collection, binding, and auto-parameterization.

A *template* is a Query AST containing :class:`~repro.expr.nodes.Param`
placeholders.  Binding substitutes each Param with a
:class:`~repro.expr.nodes.Literal` carrying the supplied value,
producing exactly the AST the parser would have built had the values
been spelled inline — so everything downstream (strategy selection,
rewriting, planning, execution) is untouched by parameterization and
the prepared path stays row- and counter-identical to the unprepared
one.

:func:`parameterize_query` goes the other way: it extracts inline
literals out of a query's predicate positions (WHERE / HAVING / JOIN
ON, recursively through subqueries) into a canonical positional
template plus binding vector, so unmodified callers sending literal
SQL still converge on one template per query *shape*.  Extraction is
restricted to predicate positions: SELECT items, GROUP BY / ORDER BY
expressions and LIMIT stay inline because they define the query's
output shape, not its selection values.

Substitution is identity-preserving — Param-free subtrees come back as
the *same* objects — so bound queries share structure with their
template and the compiled-expression cache's id-alias fast path keeps
firing across executions.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.common.errors import ParseError
from repro.expr.nodes import (
    And,
    Arith,
    Between,
    Comparison,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
    ScalarSubquery,
)
from repro.sql.ast import (
    CTE,
    DerivedTable,
    FromItem,
    JoinClause,
    OrderItem,
    Query,
    Select,
    SelectCore,
    SelectItem,
    SetOp,
)


def _walk_exprs(query: Query):
    """Yield every expression tree in the statement, including those
    inside CTEs, derived tables and expression subqueries."""
    for cte in query.ctes:
        yield from _walk_exprs(cte.query)
    yield from _walk_core_exprs(query.body)


def _walk_core_exprs(core: SelectCore):
    if isinstance(core, SetOp):
        yield from _walk_core_exprs(core.left)
        yield from _walk_core_exprs(core.right)
        return
    for item in core.items:
        yield item.expr
    for from_item in core.from_items:
        if isinstance(from_item, DerivedTable):
            yield from _walk_exprs(from_item.query)
    for join in core.joins:
        if isinstance(join.item, DerivedTable):
            yield from _walk_exprs(join.item.query)
        if join.condition is not None:
            yield join.condition
    if core.where is not None:
        yield core.where
    yield from core.group_by
    if core.having is not None:
        yield core.having
    for order in core.order_by:
        yield order.expr


def _walk_expr(expr: Expr):
    """Pre-order traversal descending into subquery bodies (unlike
    :func:`repro.expr.analysis.walk`, params hide anywhere)."""
    yield expr
    if isinstance(expr, (And, Or)):
        for child in expr.children:
            yield from _walk_expr(child)
    elif isinstance(expr, Not):
        yield from _walk_expr(expr.child)
    elif isinstance(expr, Comparison):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, Between):
        yield from _walk_expr(expr.expr)
        yield from _walk_expr(expr.low)
        yield from _walk_expr(expr.high)
    elif isinstance(expr, InList):
        yield from _walk_expr(expr.expr)
        for item in expr.items:
            yield from _walk_expr(item)
    elif isinstance(expr, Arith):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from _walk_expr(arg)
    elif isinstance(expr, IsNull):
        yield from _walk_expr(expr.child)
    elif isinstance(expr, ScalarSubquery):
        for sub in _walk_exprs(expr.select):
            yield from _walk_expr(sub)
    elif isinstance(expr, InSubquery):
        yield from _walk_expr(expr.expr)
        for sub in _walk_exprs(expr.select):
            yield from _walk_expr(sub)


def collect_params(query: Query) -> tuple[Param, ...]:
    """All distinct Params in slot order; validates slots are dense.

    The parser assigns dense ordinals, but templates can also be built
    programmatically — a gap would make a binding vector ambiguous, so
    it raises rather than bind silently wrong.
    """
    by_slot: dict[int, Param] = {}
    for tree in _walk_exprs(query):
        for node in _walk_expr(tree):
            if isinstance(node, Param):
                seen = by_slot.get(node.index)
                if seen is not None and seen.name != node.name:
                    raise ParseError(
                        f"parameter slot {node.index} bound to conflicting "
                        f"names {seen.name!r} and {node.name!r}"
                    )
                by_slot.setdefault(node.index, node)
    params = tuple(by_slot[i] for i in sorted(by_slot))
    for expected, param in enumerate(params):
        if param.index != expected:
            raise ParseError(
                f"parameter slots are not dense: missing slot {expected}"
            )
    return params


def normalize_bindings(
    params: Sequence[Param], values: Sequence[Any] | Mapping[str, Any] | None
) -> tuple[Any, ...]:
    """Turn user-supplied bindings into a slot-ordered value tuple.

    A mapping binds by name (every param must be named); a sequence
    binds by slot.  Arity and name mismatches raise ``ParseError`` —
    they are template-misuse errors, not execution failures.
    """
    if values is None:
        values = ()
    if isinstance(values, Mapping):
        unnamed = [p.index for p in params if p.name is None]
        if unnamed:
            raise ParseError(
                f"named bindings given but slots {unnamed} are positional"
            )
        missing = sorted({p.name for p in params} - set(values))
        if missing:
            raise ParseError(f"missing bindings for parameters {missing}")
        extra = sorted(set(values) - {p.name for p in params})
        if extra:
            raise ParseError(f"unknown parameter names {extra}")
        return tuple(values[p.name] for p in params)
    vals = tuple(values)
    if len(vals) != len(params):
        raise ParseError(
            f"expected {len(params)} parameter value(s), got {len(vals)}"
        )
    return vals


def bind_expr(expr: Expr, values: Sequence[Any]) -> Expr:
    """Substitute Params with Literal(values[slot]), sharing Param-free
    subtrees with the input."""
    if isinstance(expr, Param):
        return Literal(values[expr.index])
    if isinstance(expr, (And, Or)):
        children = tuple(bind_expr(c, values) for c in expr.children)
        if all(a is b for a, b in zip(children, expr.children)):
            return expr
        return type(expr)(children)
    if isinstance(expr, Not):
        child = bind_expr(expr.child, values)
        return expr if child is expr.child else Not(child)
    if isinstance(expr, Comparison):
        left = bind_expr(expr.left, values)
        right = bind_expr(expr.right, values)
        if left is expr.left and right is expr.right:
            return expr
        return Comparison(expr.op, left, right)
    if isinstance(expr, Between):
        inner = bind_expr(expr.expr, values)
        low = bind_expr(expr.low, values)
        high = bind_expr(expr.high, values)
        if inner is expr.expr and low is expr.low and high is expr.high:
            return expr
        return Between(inner, low, high, negated=expr.negated)
    if isinstance(expr, InList):
        inner = bind_expr(expr.expr, values)
        items = tuple(bind_expr(i, values) for i in expr.items)
        if inner is expr.expr and all(a is b for a, b in zip(items, expr.items)):
            return expr
        return InList(inner, items, negated=expr.negated)
    if isinstance(expr, Arith):
        left = bind_expr(expr.left, values)
        right = bind_expr(expr.right, values)
        if left is expr.left and right is expr.right:
            return expr
        return Arith(expr.op, left, right)
    if isinstance(expr, FuncCall):
        args = tuple(bind_expr(a, values) for a in expr.args)
        if all(a is b for a, b in zip(args, expr.args)):
            return expr
        return FuncCall(expr.name, args, distinct=expr.distinct)
    if isinstance(expr, IsNull):
        child = bind_expr(expr.child, values)
        return expr if child is expr.child else IsNull(child)
    if isinstance(expr, ScalarSubquery):
        sub = bind_query(expr.select, values)
        return expr if sub is expr.select else ScalarSubquery(sub)
    if isinstance(expr, InSubquery):
        inner = bind_expr(expr.expr, values)
        sub = bind_query(expr.select, values)
        if inner is expr.expr and sub is expr.select:
            return expr
        return InSubquery(inner, sub, negated=expr.negated)
    # Literal, ColumnRef, Star: leaves, never contain Params.
    return expr


def bind_query(query: Query, values: Sequence[Any] | Mapping[str, Any] | None = None) -> Query:
    """Bind a template into a plain Query, sharing untouched structure.

    ``values`` may be a slot-ordered sequence or a name mapping (see
    :func:`normalize_bindings`).  A Param-free query comes back as the
    same object.
    """
    vals = normalize_bindings(collect_params(query), values)
    return _bind_query_tuple(query, vals)


def _bind_query_tuple(query: Query, values: tuple[Any, ...]) -> Query:
    ctes = [CTE(c.name, _bind_query_tuple(c.query, values)) for c in query.ctes]
    body = _bind_core(query.body, values)
    if body is query.body and all(
        a.query is b.query for a, b in zip(ctes, query.ctes)
    ):
        return query
    return Query(body=body, ctes=ctes)


def _bind_core(core: SelectCore, values: tuple[Any, ...]) -> SelectCore:
    if isinstance(core, SetOp):
        left = _bind_core(core.left, values)
        right = _bind_core(core.right, values)
        if left is core.left and right is core.right:
            return core
        return SetOp(core.op, left, right, all=core.all)
    changed = False

    def b(expr: Expr) -> Expr:
        nonlocal changed
        out = bind_expr(expr, values)
        if out is not expr:
            changed = True
        return out

    items = [SelectItem(b(i.expr), i.alias) for i in core.items]
    from_items: list[FromItem] = []
    for item in core.from_items:
        if isinstance(item, DerivedTable):
            sub = _bind_query_tuple(item.query, values)
            if sub is not item.query:
                changed = True
                item = DerivedTable(sub, item.alias)
        from_items.append(item)
    joins: list[JoinClause] = []
    for join in core.joins:
        join_item = join.item
        if isinstance(join_item, DerivedTable):
            sub = _bind_query_tuple(join_item.query, values)
            if sub is not join_item.query:
                changed = True
                join_item = DerivedTable(sub, join_item.alias)
        condition = None if join.condition is None else b(join.condition)
        joins.append(JoinClause(join_item, condition))
    where = None if core.where is None else b(core.where)
    group_by = [b(e) for e in core.group_by]
    having = None if core.having is None else b(core.having)
    order_by = [OrderItem(b(o.expr), o.ascending) for o in core.order_by]
    if not changed:
        return core
    return Select(
        items=items,
        from_items=from_items,
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=core.limit,
        distinct=core.distinct,
    )


# ------------------------------------------------------- auto-parameterizer


class _Extractor:
    """Replaces predicate-position Literals with positional Params,
    assigning slots in textual order and recording the values."""

    def __init__(self) -> None:
        self.values: list[Any] = []

    def _slot(self, value: Any) -> Param:
        self.values.append(value)
        return Param(len(self.values) - 1)

    def predicate(self, expr: Expr) -> Expr:
        """Extract from a boolean predicate tree (WHERE / HAVING / ON)."""
        if isinstance(expr, (And, Or)):
            return type(expr)(tuple(self.predicate(c) for c in expr.children))
        if isinstance(expr, Not):
            return Not(self.predicate(expr.child))
        if isinstance(expr, Comparison):
            return Comparison(
                expr.op, self.value(expr.left), self.value(expr.right)
            )
        if isinstance(expr, Between):
            return Between(
                self.value(expr.expr),
                self.value(expr.low),
                self.value(expr.high),
                negated=expr.negated,
            )
        if isinstance(expr, InList):
            return InList(
                self.value(expr.expr),
                tuple(self.value(i) for i in expr.items),
                negated=expr.negated,
            )
        if isinstance(expr, InSubquery):
            return InSubquery(
                self.value(expr.expr),
                self.query(expr.select),
                negated=expr.negated,
            )
        if isinstance(expr, IsNull):
            # IS NULL tests structure, not a comparable value: the
            # child stays inline so `x IS NULL` keeps its own template.
            return expr
        return expr

    def value(self, expr: Expr) -> Expr:
        """Extract from a value position inside a predicate."""
        if isinstance(expr, Literal):
            return self._slot(expr.value)
        if isinstance(expr, Arith):
            return Arith(
                expr.op, self.value(expr.left), self.value(expr.right)
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(self.value(a) for a in expr.args),
                distinct=expr.distinct,
            )
        if isinstance(expr, ScalarSubquery):
            return ScalarSubquery(self.query(expr.select))
        # ColumnRef, Param (already a template), nested predicates used
        # as values: left inline.
        return expr

    def query(self, query: Query) -> Query:
        ctes = [CTE(c.name, self.query(c.query)) for c in query.ctes]
        return Query(body=self.core(query.body), ctes=ctes)

    def core(self, core: SelectCore) -> SelectCore:
        if isinstance(core, SetOp):
            return SetOp(
                core.op, self.core(core.left), self.core(core.right), all=core.all
            )
        from_items: list[FromItem] = []
        for item in core.from_items:
            if isinstance(item, DerivedTable):
                item = DerivedTable(self.query(item.query), item.alias)
            from_items.append(item)
        joins: list[JoinClause] = []
        for join in core.joins:
            join_item = join.item
            if isinstance(join_item, DerivedTable):
                join_item = DerivedTable(self.query(join_item.query), join_item.alias)
            condition = (
                None if join.condition is None else self.predicate(join.condition)
            )
            joins.append(JoinClause(join_item, condition))
        return Select(
            # Output shape (select list, grouping, ordering, limit) stays
            # inline — extracting there would fold genuinely different
            # queries onto one template.
            items=list(core.items),
            from_items=from_items,
            joins=joins,
            where=None if core.where is None else self.predicate(core.where),
            group_by=list(core.group_by),
            having=None if core.having is None else self.predicate(core.having),
            order_by=list(core.order_by),
            limit=core.limit,
            distinct=core.distinct,
        )


def parameterize_query(query: Query) -> tuple[Query, tuple[Any, ...]]:
    """Extract predicate literals into (positional template, values).

    ``bind_query(template, values)`` reconstructs an AST structurally
    equal to the input — the round-trip the property tests assert.
    Queries that already contain Params pass through unchanged (their
    author chose the template boundary).
    """
    if collect_params(query):
        return query, ()
    extractor = _Extractor()
    template = extractor.query(query)
    return template, tuple(extractor.values)
